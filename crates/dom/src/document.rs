//! The emulated document tree.
//!
//! This is the reproduction's stand-in for ZombieJS (§4 of the paper): a
//! minimal but real DOM model — elements with tags, attributes, ids, text,
//! and a tree structure — that the interpreters surface to JavaScript code
//! through native functions.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within a [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An element node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Tag name, lowercase (`"div"`, `"body"`, ...).
    pub tag: String,
    /// Attributes, including `id` when present.
    pub attrs: HashMap<String, String>,
    /// Child elements in order.
    pub children: Vec<NodeId>,
    /// Parent element (`None` for the root).
    pub parent: Option<NodeId>,
    /// Concatenated text content directly under this node.
    pub text: String,
}

/// An emulated HTML document.
///
/// # Examples
///
/// ```
/// use mujs_dom::document::Document;
/// let mut doc = Document::new();
/// let div = doc.create_element("div");
/// doc.set_attribute(div, "id", "main");
/// doc.append_child(doc.body(), div);
/// assert_eq!(doc.get_element_by_id("main"), Some(div));
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    body: NodeId,
    head: NodeId,
    by_id: HashMap<String, NodeId>,
    /// The document title (`document.title`).
    pub title: String,
}

impl Document {
    /// Creates a document with `<html><head/><body/></html>`.
    pub fn new() -> Self {
        let mut doc = Document {
            nodes: Vec::new(),
            root: NodeId(0),
            body: NodeId(0),
            head: NodeId(0),
            by_id: HashMap::new(),
            title: String::new(),
        };
        let root = doc.create_element("html");
        let head = doc.create_element("head");
        let body = doc.create_element("body");
        doc.root = root;
        doc.append_child(root, head);
        doc.append_child(root, body);
        doc.head = head;
        doc.body = body;
        doc
    }

    /// The `<html>` element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The `<body>` element.
    pub fn body(&self) -> NodeId {
        self.body
    }

    /// The `<head>` element.
    pub fn head(&self) -> NodeId {
        self.head
    }

    /// Creates a detached element.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            tag: tag.to_ascii_lowercase(),
            attrs: HashMap::new(),
            children: Vec::new(),
            parent: None,
            text: String::new(),
        });
        id
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Whether `id` is a valid node of this document.
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len()
    }

    /// Number of nodes (including detached ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends `child` to `parent`'s children, detaching it from its
    /// previous parent if necessary.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        if let Some(old) = self.nodes[child.0 as usize].parent {
            let siblings = &mut self.nodes[old.0 as usize].children;
            siblings.retain(|c| *c != child);
        }
        self.nodes[child.0 as usize].parent = Some(parent);
        self.nodes[parent.0 as usize].children.push(child);
    }

    /// Removes `child` from its parent, leaving it detached.
    pub fn remove_child(&mut self, parent: NodeId, child: NodeId) {
        let siblings = &mut self.nodes[parent.0 as usize].children;
        siblings.retain(|c| *c != child);
        self.nodes[child.0 as usize].parent = None;
    }

    /// Sets an attribute; maintains the id index for `id`.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: &str) {
        if name == "id" {
            if let Some(old) = self.nodes[node.0 as usize].attrs.get("id") {
                self.by_id.remove(old);
            }
            self.by_id.insert(value.to_owned(), node);
        }
        self.nodes[node.0 as usize]
            .attrs
            .insert(name.to_owned(), value.to_owned());
    }

    /// Reads an attribute.
    pub fn get_attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.nodes[node.0 as usize].attrs.get(name).map(|s| &**s)
    }

    /// `document.getElementById`.
    pub fn get_element_by_id(&self, id: &str) -> Option<NodeId> {
        self.by_id.get(id).copied()
    }

    /// `document.getElementsByTagName` — document order (pre-order walk
    /// from the root; detached subtrees are not included).
    pub fn get_elements_by_tag_name(&self, tag: &str) -> Vec<NodeId> {
        let tag = tag.to_ascii_lowercase();
        let mut out = Vec::new();
        self.walk(self.root, &mut |id, node| {
            if tag == "*" || node.tag == tag {
                out.push(id);
            }
        });
        out
    }

    fn walk(&self, id: NodeId, visit: &mut impl FnMut(NodeId, &Node)) {
        let node = &self.nodes[id.0 as usize];
        visit(id, node);
        for c in node.children.clone() {
            self.walk(c, visit);
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

/// One element spec of a [`DocumentBuilder`]: tag, optional id,
/// attributes.
type ElementSpec = (String, Option<String>, Vec<(String, String)>);

/// Convenience builder for test documents.
///
/// # Examples
///
/// ```
/// use mujs_dom::document::DocumentBuilder;
/// let doc = DocumentBuilder::new()
///     .element("div", Some("banner"), &[("class", "top")])
///     .element("span", Some("msg"), &[])
///     .title("Test page")
///     .build();
/// assert!(doc.get_element_by_id("banner").is_some());
/// assert_eq!(doc.title, "Test page");
/// ```
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    elements: Vec<ElementSpec>,
    title: String,
}

impl DocumentBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        DocumentBuilder::default()
    }

    /// Adds an element under `<body>` with an optional id and attributes.
    pub fn element(mut self, tag: &str, id: Option<&str>, attrs: &[(&str, &str)]) -> Self {
        self.elements.push((
            tag.to_owned(),
            id.map(str::to_owned),
            attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        ));
        self
    }

    /// Sets the document title.
    pub fn title(mut self, t: &str) -> Self {
        self.title = t.to_owned();
        self
    }

    /// Builds the document.
    pub fn build(self) -> Document {
        let mut doc = Document::new();
        doc.title = self.title;
        for (tag, id, attrs) in self.elements {
            let el = doc.create_element(&tag);
            if let Some(id) = id {
                doc.set_attribute(el, "id", &id);
            }
            for (k, v) in attrs {
                doc.set_attribute(el, &k, &v);
            }
            doc.append_child(doc.body(), el);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_document_has_html_head_body() {
        let doc = Document::new();
        assert_eq!(doc.node(doc.root()).tag, "html");
        assert_eq!(doc.node(doc.head()).tag, "head");
        assert_eq!(doc.node(doc.body()).tag, "body");
        assert_eq!(doc.node(doc.body()).parent, Some(doc.root()));
    }

    #[test]
    fn append_reparents() {
        let mut doc = Document::new();
        let a = doc.create_element("div");
        let b = doc.create_element("div");
        doc.append_child(doc.body(), a);
        doc.append_child(doc.body(), b);
        doc.append_child(a, b);
        assert_eq!(doc.node(b).parent, Some(a));
        assert_eq!(doc.node(doc.body()).children, vec![a]);
    }

    #[test]
    fn id_index_follows_attribute_changes() {
        let mut doc = Document::new();
        let a = doc.create_element("div");
        doc.set_attribute(a, "id", "x");
        assert_eq!(doc.get_element_by_id("x"), Some(a));
        doc.set_attribute(a, "id", "y");
        assert_eq!(doc.get_element_by_id("x"), None);
        assert_eq!(doc.get_element_by_id("y"), Some(a));
    }

    #[test]
    fn tag_name_query_is_document_order_and_skips_detached() {
        let mut doc = Document::new();
        let a = doc.create_element("p");
        let b = doc.create_element("p");
        let detached = doc.create_element("p");
        doc.append_child(doc.body(), a);
        doc.append_child(a, b);
        let _ = detached;
        assert_eq!(doc.get_elements_by_tag_name("p"), vec![a, b]);
        assert_eq!(doc.get_elements_by_tag_name("*").len(), 5);
    }

    #[test]
    fn remove_child_detaches() {
        let mut doc = Document::new();
        let a = doc.create_element("div");
        doc.append_child(doc.body(), a);
        doc.remove_child(doc.body(), a);
        assert_eq!(doc.node(a).parent, None);
        assert!(doc.node(doc.body()).children.is_empty());
    }
}
