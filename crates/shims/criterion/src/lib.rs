//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use — groups,
//! `bench_with_input`, throughput annotations, `criterion_group!` /
//! `criterion_main!` — over a deliberately simple timing loop: each
//! benchmark runs a fixed warm-up then a small number of timed samples and
//! prints the mean per-iteration time. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Mirrors criterion's builder; applies to later standalone benches.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for CLI compatibility; this shim ignores filters.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Mirrors criterion's final summary hook; nothing to emit here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates benchmarks with an input size for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        eprintln!();
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Input-size annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark name, optionally parameterised.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate the iteration count so one sample lasts roughly 5 ms,
    // bounded to keep total wall-clock small for slow benchmarks.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / mean_ns * 1e3)
        }
        None => String::new(),
    };
    eprintln!("{label:<48} {:>12}{rate}", fmt_time(mean_ns));
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
