//! The executable Theorem 1 demo: generate random programs, run the
//! instrumented analysis once, and verify that its determinate
//! observations predict many re-randomized concrete executions.
//!
//! Run with `cargo run --example soundness_check [n_programs]`.

use determinacy::modeling::check_soundness;
use determinacy::{AnalysisConfig, DetHarness};
use mujs_gen::{generate, GenConfig};
use mujs_interp::{Harness, Interp, InterpOptions};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let cfg = GenConfig {
        top_stmts: 14,
        indet_pct: 35,
        ..Default::default()
    };
    println!("Soundness check over {n} random programs × 5 concrete runs each");
    println!("================================================================");
    let mut total_checked = 0usize;
    let mut total_indet = 0usize;
    for seed in 0..n {
        let src = generate(seed, &cfg);
        let mut dh = DetHarness::from_src(&src).expect("generated program parses");
        let out = dh.analyze(AnalysisConfig {
            seed: seed ^ 0xA5A5,
            record_observations: true,
            flush_cap: None,
            ..Default::default()
        });
        for run in 0..5u64 {
            let mut ch = Harness::from_src(&src).expect("parses");
            let mut interp = Interp::new(
                &mut ch.program,
                InterpOptions {
                    seed: seed ^ 0xA5A5 ^ (run * 0x9E3779B9),
                    record_observations: true,
                    ..Default::default()
                },
            );
            let _ = interp.run();
            let report = check_soundness(
                &out.observations,
                &out.ctxs,
                &interp.observations,
                &interp.ctxs,
            );
            assert!(
                report.is_sound(),
                "VIOLATION in program seed {seed}, run {run}:\n{:?}\n{src}",
                report.violations
            );
            total_checked += report.checked;
            total_indet += report.skipped_indet;
        }
    }
    println!(
        "all sound: {total_checked} determinate predictions verified, {total_indet} positions legitimately indeterminate"
    );
}
