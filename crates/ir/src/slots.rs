//! Lowering-time variable slot resolution.
//!
//! After a chunk is lowered, this pass rewrites statically resolvable
//! [`Place::Named`] references into [`Place::Slot`] coordinates: `hops`
//! enclosing *function* activations up the scope chain, then a direct
//! index into that activation's local slots. The interpreters then access
//! those variables with two array indexes instead of hashing a name at
//! every scope level.
//!
//! Resolution is deliberately conservative — a reference keeps its name
//! (and the dynamic scope-chain lookup) whenever JavaScript's dynamic
//! scoping features could rebind it:
//!
//! * **Scripts** have no activation: script-level `var`s are global-object
//!   properties, so references binding there stay named.
//! * **Eval chunks** execute in their caller's scope. A chunk's own body
//!   is never resolved, and any resolution path that would climb *through*
//!   a chunk stays named. A function nested inside a chunk still gets slot
//!   access to its own locals (hops 0 never leaves its activation).
//! * **Direct `eval`** can declare new bindings in any scope between the
//!   reference and the definer, shadowing the static binding. A path is
//!   abandoned if any function *below* the definer contains a direct
//!   `eval`. (The definer itself is safe: `eval("var x")` re-declares into
//!   the existing slot.)
//! * **Catch bindings** live in dynamically pushed scopes. Inside a
//!   `catch (c)` block, references to `c` stay named; and every closure
//!   created inside the block inherits `c` as *poisoned* — references to
//!   a poisoned name stay named in that closure and all of its nested
//!   functions, because their captured scope chain threads through the
//!   catch scope.
//!
//! `typeof name` keeps its by-name semantics (the name may be unbound).

use crate::intern::Sym;
use crate::ir::{Block, FuncId, FuncKind, Function, Place, Program, PropKey, StmtKind};
use std::collections::HashSet;
use std::rc::Rc;

/// The slot order of a function's activation: parameters, `arguments`,
/// the self-binding of a named function expression, hoisted function
/// declarations, then `var`s — deduplicated keeping the first occurrence
/// (so `function f(x) { var x; }` has one `x` slot).
pub fn layout_locals(f: &Function) -> Vec<Sym> {
    let mut locals: Vec<Sym> = Vec::with_capacity(f.params.len() + f.decls.vars.len() + 2);
    let push = |locals: &mut Vec<Sym>, s: Sym| {
        if !locals.contains(&s) {
            locals.push(s);
        }
    };
    for &p in &f.params {
        push(&mut locals, p);
    }
    push(&mut locals, Sym::ARGUMENTS);
    if f.bind_self {
        if let Some(n) = f.name {
            push(&mut locals, n);
        }
    }
    for &(n, _) in &f.decls.funcs {
        push(&mut locals, n);
    }
    for &v in &f.decls.vars {
        push(&mut locals, v);
    }
    locals
}

/// Per-function facts the resolver needs, snapshotted so bodies can be
/// rewritten while ancestors are consulted.
struct Meta {
    kind: FuncKind,
    parent: Option<FuncId>,
    has_eval: bool,
    locals: Vec<Sym>,
}

/// Resolves slot coordinates for every function with index `>= from`
/// (the functions added by the chunk just lowered), filling in
/// [`Function::locals`] and [`Function::has_direct_eval`] along the way.
pub fn resolve_slots(prog: &mut Program, from: usize) {
    let n = prog.funcs.len();
    // Phase 1: locals layout + direct-eval flag for the new functions.
    for idx in from..n {
        let f = prog.func(FuncId(idx as u32));
        let mut has_eval = false;
        Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Eval { .. }) {
                has_eval = true;
            }
        });
        let locals = if f.kind == FuncKind::Function {
            layout_locals(f)
        } else {
            Vec::new()
        };
        let fm = prog.func_mut(FuncId(idx as u32));
        fm.locals = locals;
        fm.has_direct_eval = has_eval;
    }
    // Phase 2: snapshot resolution metadata for *all* functions — chunks
    // lowered at runtime resolve against ancestors from earlier passes.
    let meta: Vec<Meta> = prog
        .funcs
        .iter()
        .map(|f| Meta {
            kind: f.kind,
            parent: f.parent,
            has_eval: f.has_direct_eval,
            locals: f.locals.clone(),
        })
        .collect();
    // Phase 3: rewrite bodies in id order (creators precede their nested
    // functions), threading catch-poison sets through closure sites.
    let empty: Rc<HashSet<Sym>> = Rc::new(HashSet::new());
    let mut poisoned: Vec<Option<Rc<HashSet<Sym>>>> = vec![None; n];
    for idx in from..n {
        let poison = poisoned[idx].clone().unwrap_or_else(|| empty.clone());
        // Hoisted function declarations are bound at activation entry, so
        // they capture the activation scope directly: they inherit the
        // poison set as-is.
        for &(_, fid) in &prog.func(FuncId(idx as u32)).decls.funcs {
            inherit_poison(&mut poisoned, fid, &poison, &[]);
        }
        let rewrite = meta[idx].kind == FuncKind::Function;
        let mut body = std::mem::take(&mut prog.func_mut(FuncId(idx as u32)).body);
        {
            let mut st = Walk {
                meta: &meta,
                func: idx,
                rewrite,
                poison: &poison,
                active: Vec::new(),
                poisoned: &mut poisoned,
            };
            st.block(&mut body);
        }
        prog.func_mut(FuncId(idx as u32)).body = body;
    }
}

/// Records the poison set a nested function starts from: the creator's
/// set plus the catch names active at the creation site.
fn inherit_poison(
    poisoned: &mut [Option<Rc<HashSet<Sym>>>],
    fid: FuncId,
    base: &Rc<HashSet<Sym>>,
    active: &[Sym],
) {
    let idx = fid.0 as usize;
    if idx >= poisoned.len() {
        return;
    }
    let set = if active.iter().all(|s| base.contains(s)) {
        base.clone()
    } else {
        let mut s = (**base).clone();
        s.extend(active.iter().copied());
        Rc::new(s)
    };
    poisoned[idx] = Some(set);
}

struct Walk<'a> {
    meta: &'a [Meta],
    func: usize,
    rewrite: bool,
    poison: &'a Rc<HashSet<Sym>>,
    active: Vec<Sym>,
    poisoned: &'a mut [Option<Rc<HashSet<Sym>>>],
}

impl Walk<'_> {
    fn place(&mut self, p: &mut Place) {
        if !self.rewrite {
            return;
        }
        let Place::Named(sym) = *p else { return };
        if self.active.contains(&sym) || self.poison.contains(&sym) {
            return;
        }
        if let Some((hops, slot)) = resolve(self.meta, self.func, sym) {
            *p = Place::Slot { hops, slot, sym };
        }
    }

    fn key(&mut self, k: &mut PropKey) {
        if let PropKey::Dynamic(p) = k {
            self.place(p);
        }
    }

    fn closure_site(&mut self, fid: FuncId) {
        inherit_poison(self.poisoned, fid, self.poison, &self.active);
    }

    fn block(&mut self, block: &mut Block) {
        for s in block {
            match &mut s.kind {
                StmtKind::Const { dst, .. } | StmtKind::NewObject { dst, .. } => self.place(dst),
                StmtKind::Copy { dst, src } => {
                    self.place(dst);
                    self.place(src);
                }
                StmtKind::Closure { dst, func } => {
                    self.place(dst);
                    let fid = *func;
                    self.closure_site(fid);
                }
                StmtKind::GetProp { dst, obj, key } => {
                    self.place(dst);
                    self.place(obj);
                    self.key(key);
                }
                StmtKind::SetProp { obj, key, val } => {
                    self.place(obj);
                    self.key(key);
                    self.place(val);
                }
                StmtKind::DeleteProp { dst, obj, key } => {
                    self.place(dst);
                    self.place(obj);
                    self.key(key);
                }
                StmtKind::BinOp { dst, lhs, rhs, .. } => {
                    self.place(dst);
                    self.place(lhs);
                    self.place(rhs);
                }
                StmtKind::UnOp { dst, src, .. } => {
                    self.place(dst);
                    self.place(src);
                }
                StmtKind::Call {
                    dst,
                    callee,
                    this_arg,
                    args,
                } => {
                    self.place(dst);
                    self.place(callee);
                    if let Some(t) = this_arg {
                        self.place(t);
                    }
                    for a in args {
                        self.place(a);
                    }
                }
                StmtKind::New { dst, callee, args } => {
                    self.place(dst);
                    self.place(callee);
                    for a in args {
                        self.place(a);
                    }
                }
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.place(cond);
                    self.block(then_blk);
                    self.block(else_blk);
                }
                StmtKind::Loop {
                    cond_blk,
                    cond,
                    body,
                    update,
                    ..
                } => {
                    self.block(cond_blk);
                    self.place(cond);
                    self.block(body);
                    self.block(update);
                }
                StmtKind::Breakable { body } => self.block(body),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    self.block(block);
                    if let Some((sym, b)) = catch {
                        self.active.push(*sym);
                        self.block(b);
                        self.active.pop();
                    }
                    if let Some(b) = finally {
                        self.block(b);
                    }
                }
                StmtKind::Return { arg } => {
                    if let Some(a) = arg {
                        self.place(a);
                    }
                }
                StmtKind::Break | StmtKind::Continue => {}
                StmtKind::Throw { arg } => self.place(arg),
                StmtKind::LoadThis { dst } => self.place(dst),
                // `typeof name` stays by-name: the name may be unbound.
                StmtKind::TypeofName { dst, .. } => self.place(dst),
                StmtKind::HasProp { dst, key, obj } => {
                    self.place(dst);
                    self.place(key);
                    self.place(obj);
                }
                StmtKind::InstanceOf { dst, val, ctor } => {
                    self.place(dst);
                    self.place(val);
                    self.place(ctor);
                }
                StmtKind::EnumProps { dst, obj } => {
                    self.place(dst);
                    self.place(obj);
                }
                StmtKind::Eval { dst, arg } => {
                    self.place(dst);
                    self.place(arg);
                }
            }
        }
    }
}

/// Finds the `(hops, slot)` coordinate of `sym` referenced from function
/// `g`, or `None` when the binding is global, crosses an eval chunk, or
/// could be shadowed by a direct `eval` below the definer.
fn resolve(meta: &[Meta], g: usize, sym: Sym) -> Option<(u32, u32)> {
    let mut hops = 0u32;
    let mut cur = g;
    loop {
        let m = &meta[cur];
        if m.kind != FuncKind::Function {
            // Script locals are global properties; chunk scopes are the
            // caller's and unknowable statically.
            return None;
        }
        if let Some(i) = m.locals.iter().position(|&l| l == sym) {
            return Some((hops, i as u32));
        }
        // A direct eval here can declare `sym` dynamically, shadowing any
        // outer binding for by-name readers.
        if m.has_eval {
            return None;
        }
        cur = m.parent?.0 as usize;
        hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    fn lower(src: &str) -> Program {
        lower_program(&parse(src).unwrap())
    }

    fn func_named<'a>(p: &'a Program, name: &str) -> &'a Function {
        p.funcs
            .iter()
            .find(|f| f.name.is_some_and(|s| p.interner.resolve(s) == name))
            .unwrap()
    }

    /// Collects the (hops, name) pairs of all Slot places in a body.
    fn slots_of(p: &Program, f: &Function) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        Program::walk_block(&f.body, &mut |s| {
            s.kind.for_each_place(&mut |pl| {
                if let Place::Slot { hops, sym, .. } = pl {
                    out.push((*hops, p.interner.resolve(*sym).to_string()));
                }
            });
        });
        out
    }

    fn named_of(p: &Program, f: &Function) -> Vec<String> {
        let mut out = Vec::new();
        Program::walk_block(&f.body, &mut |s| {
            s.kind.for_each_place(&mut |pl| {
                if let Place::Named(sym) = pl {
                    out.push(p.interner.resolve(*sym).to_string());
                }
            });
        });
        out
    }

    #[test]
    fn script_level_vars_stay_named() {
        let p = lower("var x = 1; x = x + 1;");
        let entry = p.func(p.entry().unwrap());
        assert!(slots_of(&p, entry).is_empty());
        assert!(named_of(&p, entry).contains(&"x".to_string()));
    }

    #[test]
    fn function_locals_resolve_to_hop_zero() {
        let p = lower("function f(a) { var b = a + 1; return b; }");
        let f = func_named(&p, "f");
        let slots = slots_of(&p, f);
        assert!(slots.contains(&(0, "a".into())));
        assert!(slots.contains(&(0, "b".into())));
        assert!(named_of(&p, f).is_empty());
    }

    #[test]
    fn captured_locals_resolve_with_hops() {
        let p = lower("function f() { var x = 1; return function g() { return x; }; }");
        let g = func_named(&p, "g");
        assert!(slots_of(&p, g).contains(&(1, "x".into())));
    }

    #[test]
    fn globals_referenced_from_functions_stay_named() {
        let p = lower("var g0 = 1; function f() { return g0; }");
        let f = func_named(&p, "f");
        assert!(slots_of(&p, f).is_empty());
        assert!(named_of(&p, f).contains(&"g0".to_string()));
    }

    #[test]
    fn locals_layout_dedups_param_and_var() {
        let p = lower("function f(x) { var x; var y; }");
        let f = func_named(&p, "f");
        let names: Vec<&str> = f.locals.iter().map(|&s| p.interner.resolve(s)).collect();
        // params, arguments, the self-binding, hoisted funcs, then vars.
        assert_eq!(names, vec!["x", "arguments", "f", "y"]);
    }

    #[test]
    fn direct_eval_below_definer_blocks_resolution() {
        let p = lower(
            "function f() { var x = 1; \
             function g() { eval(\"x\"); return x; } }",
        );
        let g = func_named(&p, "g");
        assert!(g.has_direct_eval);
        // `x` binds in f, but g (below the definer) has a direct eval.
        assert!(slots_of(&p, g).iter().all(|(_, n)| n != "x"));
    }

    #[test]
    fn definers_own_eval_does_not_block_its_locals() {
        let p = lower("function f() { var x = 1; eval(\"x\"); return x; }");
        let f = func_named(&p, "f");
        assert!(f.has_direct_eval);
        assert!(slots_of(&p, f).contains(&(0, "x".into())));
    }

    #[test]
    fn catch_bound_names_stay_named_in_the_block() {
        let p = lower("function f() { var e = 1; try { g(); } catch (e) { h(e); } return e; }");
        let f = func_named(&p, "f");
        // The `return e` outside resolves; the `h(e)` argument inside the
        // catch block must not.
        assert!(slots_of(&p, f).iter().any(|(_, n)| n == "e"));
        assert!(named_of(&p, f).contains(&"e".to_string()));
    }

    #[test]
    fn closures_created_in_catch_blocks_inherit_poison() {
        let p = lower(
            "function f() { var c = 1; try { g(); } catch (c) { \
             var k = function q() { return c; }; } }",
        );
        let q = func_named(&p, "q");
        // q captures the catch scope: its `c` must stay named.
        assert!(slots_of(&p, q).iter().all(|(_, n)| n != "c"));
        assert!(named_of(&p, q).contains(&"c".to_string()));
    }

    #[test]
    fn eval_chunk_bodies_are_not_resolved() {
        let mut p = lower("function host() { var x = 1; }");
        let host = func_named(&p, "host").id;
        let chunk_ast = parse("x = 2; var y = x;").unwrap();
        let cid = crate::lower::lower_chunk(&mut p, &chunk_ast, FuncKind::EvalChunk, Some(host));
        let chunk = p.func(cid);
        assert!(slots_of(&p, chunk).is_empty());
    }

    #[test]
    fn functions_inside_eval_chunks_resolve_own_locals_only() {
        let mut p = lower("function host() { var x = 1; }");
        let host = func_named(&p, "host").id;
        let chunk_ast = parse("var mk = function inner(a) { return a + x; };").unwrap();
        crate::lower::lower_chunk(&mut p, &chunk_ast, FuncKind::EvalChunk, Some(host));
        let inner = func_named(&p, "inner");
        let slots = slots_of(&p, inner);
        assert!(slots.contains(&(0, "a".into())));
        // `x` would resolve through the chunk — must stay named.
        assert!(slots.iter().all(|(_, n)| n != "x"));
        assert!(named_of(&p, inner).contains(&"x".to_string()));
    }
}
