//! `detserved` — the persistent analysis daemon.
//!
//! ```text
//! detserved --listen 127.0.0.1:0 [--cache-capacity N] [--cache-dir DIR]
//!           [--mem-budget CELLS] [--watchdog-grace MS] [--pta-threads N]
//!           [--shards N] [--spec-depth N] [--shortcuts]
//! detserved --stdin [same options]
//! ```
//!
//! `--listen` serves the line-JSON protocol over TCP (port `0` picks a
//! free port; the bound address is printed to stdout as
//! `detserved: listening on HOST:PORT` before the first accept, so
//! scripts can parse it). `--stdin` serves exactly one session over the
//! process's stdin/stdout pipe — handy for tests and for editors that
//! prefer to own the transport.
//!
//! Exit codes: 0 after a clean shutdown request (or stdin EOF), 2 on
//! usage errors, 1 on fatal I/O errors.

use mujs_serve::{CacheConfig, ServeOptions, Server};
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: detserved (--listen ADDR | --stdin) [options]\n\
         \n\
         transport:\n\
         \x20 --listen ADDR        serve TCP on ADDR (port 0 = pick a free port;\n\
         \x20                      the bound address is printed to stdout)\n\
         \x20 --stdin              serve one session over stdin/stdout\n\
         \n\
         options:\n\
         \x20 --cache-capacity N   in-memory stage-cache entries (default 256)\n\
         \x20 --cache-dir DIR      persist stage artifacts to DIR (survives restarts)\n\
         \x20 --mem-budget CELLS   server-wide declared-memory budget (admission\n\
         \x20                      control; oversized requests run degraded)\n\
         \x20 --watchdog-grace MS  wedge requests at deadline_ms + MS\n\
         \x20 --pta-threads N      solver threads for PTA stages (default: the\n\
         \x20                      host's available parallelism, clamped by\n\
         \x20                      --mem-budget; 1 = sequential). Results and\n\
         \x20                      cache keys are identical for every N — the\n\
         \x20                      knob only changes wall time\n\
         \x20 --shards N           solver shards for PTA stages (default: the\n\
         \x20                      solver's own). Like --pta-threads, results\n\
         \x20                      and cache keys are identical for every N\n\
         \x20 --spec-depth N       default specializer context-depth bound for\n\
         \x20                      PTA stages: solves run over the program\n\
         \x20                      specialized against the determinacy facts.\n\
         \x20                      Unlike --pta-threads this changes results and\n\
         \x20                      is part of the stage keys; a request's own\n\
         \x20                      spec_depth overrides it, and inject requests\n\
         \x20                      ignore it\n\
         \x20 --shortcuts          default PTA stages to shortcut mode: a\n\
         \x20                      summary stage replays the determinate\n\
         \x20                      regions concretely and the solver consumes\n\
         \x20                      the distilled summaries. Changes results and\n\
         \x20                      stage keys; spec_depth requests ignore it\n\
         \n\
         exit codes: 0 clean shutdown or EOF; 1 fatal I/O error; 2 usage error"
    );
    ExitCode::from(2)
}

enum Transport {
    Listen(String),
    Stdin,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut transport = None;
    let mut cache = CacheConfig::default();
    let mut mem_budget = None;
    let mut watchdog_grace = None;
    let mut pta_threads = None;
    let mut pta_shards = 0usize;
    let mut spec_depth = None;
    let mut shortcuts = false;

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--listen" => transport = Some(Transport::Listen(value("--listen")?)),
                "--stdin" => transport = Some(Transport::Stdin),
                "--cache-capacity" => {
                    cache.capacity = value("--cache-capacity")?
                        .parse()
                        .map_err(|e| format!("--cache-capacity: {e}"))?;
                }
                "--cache-dir" => cache.disk_dir = Some(value("--cache-dir")?.into()),
                "--mem-budget" => {
                    mem_budget = Some(
                        value("--mem-budget")?
                            .parse()
                            .map_err(|e| format!("--mem-budget: {e}"))?,
                    );
                }
                "--watchdog-grace" => {
                    watchdog_grace = Some(
                        value("--watchdog-grace")?
                            .parse()
                            .map_err(|e| format!("--watchdog-grace: {e}"))?,
                    );
                }
                "--pta-threads" => {
                    pta_threads = Some(
                        value("--pta-threads")?
                            .parse::<usize>()
                            .map_err(|e| format!("--pta-threads: {e}"))?,
                    );
                }
                "--shards" => {
                    pta_shards = value("--shards")?
                        .parse::<usize>()
                        .map_err(|e| format!("--shards: {e}"))?;
                    if pta_shards == 0 {
                        return Err("--shards: must be at least 1".to_owned());
                    }
                }
                "--spec-depth" => {
                    spec_depth = Some(
                        value("--spec-depth")?
                            .parse::<usize>()
                            .map_err(|e| format!("--spec-depth: {e}"))?,
                    );
                }
                "--shortcuts" => shortcuts = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("detserved: {e}");
            return usage();
        }
    }

    let Some(transport) = transport else {
        eprintln!("detserved: pick a transport (--listen or --stdin)");
        return usage();
    };

    // Deterministic results mean the default can be aggressive: all the
    // host's cores, scaled back only where the admission memory budget
    // says the machine is being kept small.
    let pta_threads = pta_threads.unwrap_or_else(|| mujs_jobs::default_pta_threads(mem_budget));
    let server = Server::new(ServeOptions {
        cache,
        mem_budget_cells: mem_budget,
        watchdog_grace_ms: watchdog_grace,
        pta_threads,
        spec_depth,
        shortcuts,
        pta_shards,
    });

    let outcome = match transport {
        Transport::Stdin => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server
                .handle_stream(stdin.lock(), stdout.lock())
                .map(|_| ())
        }
        Transport::Listen(addr) => TcpListener::bind(&addr).and_then(|listener| {
            let bound = listener.local_addr()?;
            use std::io::Write;
            println!("detserved: listening on {bound}");
            std::io::stdout().flush()?;
            server.serve(listener)
        }),
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("detserved: {e}");
            ExitCode::FAILURE
        }
    }
}
