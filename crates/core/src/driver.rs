//! High-level analysis drivers: parse + lower + instrumented run,
//! optionally with a DOM and post-load event plan.

use crate::config::{AnalysisConfig, AnalysisStats, AnalysisStatus};
use crate::facts::FactDb;
use crate::machine::{DMachine, DObservation};
use crate::supervisor::RunHooks;
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use mujs_interp::context::ContextTable;
use mujs_ir::Program;
use mujs_syntax::span::SourceFile;
use mujs_syntax::SyntaxError;

/// Everything one instrumented run produces.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// How the run ended.
    pub status: AnalysisStatus,
    /// The determinacy facts.
    pub facts: FactDb,
    /// Run statistics (heap flushes, counterfactuals, ...).
    pub stats: AnalysisStats,
    /// Captured output.
    pub output: Vec<String>,
    /// Interned contexts (needed to interpret the facts).
    pub ctxs: ContextTable,
    /// Observations for the soundness harness, when enabled.
    pub observations: Vec<DObservation>,
}

/// A parsed + lowered program ready for (repeated) analysis.
#[derive(Debug)]
pub struct DetHarness {
    /// The lowered program.
    pub program: Program,
    /// The source, for fact rendering.
    pub source: SourceFile,
}

impl DetHarness {
    /// Parses and lowers `src`.
    ///
    /// # Errors
    ///
    /// Syntax errors.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
    /// use determinacy::driver::DetHarness;
    /// let mut h = DetHarness::from_src("var x = { f: 23 };")?;
    /// let out = h.analyze(Default::default());
    /// assert!(out.facts.det_count() > 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_src(src: &str) -> Result<Self, SyntaxError> {
        // Parse *and* lower on a dedicated big-stack thread: both walk the
        // AST recursively, and `MAX_NESTING` is sized for
        // `PARSER_STACK_BYTES`, not for the caller's (possibly 2 MiB)
        // stack.
        let program = mujs_syntax::with_parser_stack(|| -> Result<Program, SyntaxError> {
            let ast = mujs_syntax::parse(src)?;
            Ok(mujs_ir::lower_program(&ast))
        })?;
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(&program);
        Ok(DetHarness {
            program,
            source: SourceFile::new("main.js", src),
        })
    }

    /// Runs the instrumented machine without a DOM.
    pub fn analyze(&mut self, cfg: AnalysisConfig) -> AnalysisOutcome {
        self.analyze_with(cfg, &RunHooks::default())
    }

    /// [`DetHarness::analyze`] with supervision hooks (cancellation,
    /// progress reporting, fault injection) installed on the machine.
    pub fn analyze_with(&mut self, cfg: AnalysisConfig, hooks: &RunHooks) -> AnalysisOutcome {
        let mut m = DMachine::new(&mut self.program, cfg);
        m.install_hooks(hooks);
        let status = m.run();
        finish(m, status)
    }

    /// Runs with a DOM installed, then fires the event plan.
    pub fn analyze_dom(
        &mut self,
        cfg: AnalysisConfig,
        doc: Document,
        plan: &EventPlan,
    ) -> AnalysisOutcome {
        self.analyze_dom_with(cfg, doc, plan, &RunHooks::default())
    }

    /// [`DetHarness::analyze_dom`] with supervision hooks installed.
    pub fn analyze_dom_with(
        &mut self,
        cfg: AnalysisConfig,
        doc: Document,
        plan: &EventPlan,
        hooks: &RunHooks,
    ) -> AnalysisOutcome {
        let mut m = DMachine::new(&mut self.program, cfg);
        m.install_hooks(hooks);
        m.install_dom(doc);
        let mut status = m.run();
        if status == AnalysisStatus::Completed {
            status = match m.fire_events(plan) {
                Ok(()) => AnalysisStatus::Completed,
                Err(e) => DMachine::status_of(e),
            };
        }
        finish(m, status)
    }
}

fn finish(mut m: DMachine<'_>, status: AnalysisStatus) -> AnalysisOutcome {
    m.stats.steps = m.steps();
    AnalysisOutcome {
        status,
        stats: m.stats.clone(),
        output: std::mem::take(&mut m.output),
        observations: std::mem::take(&mut m.observations),
        facts: std::mem::replace(&mut m.facts, FactDb::new(0)),
        ctxs: std::mem::take(&mut m.ctxs),
    }
}

/// One-shot: analyze `src` with the default configuration.
///
/// # Errors
///
/// Syntax errors.
pub fn analyze_src(src: &str) -> Result<AnalysisOutcome, SyntaxError> {
    let mut h = DetHarness::from_src(src)?;
    Ok(h.analyze(AnalysisConfig::default()))
}
