//! Run supervision: panic isolation, cooperative cancellation, and fault
//! injection for the instrumented machine.
//!
//! The analysis is a research artifact wrapped around untrusted inputs —
//! generated programs, scraped pages, native models — so the driver layer
//! must assume any single run can fail and keep the rest of the batch
//! alive. This module provides:
//!
//! * [`CancelToken`] — a shared flag the step loop polls every
//!   [`crate::AnalysisConfig::poll_interval`] statements; cancelled runs
//!   stop with [`AnalysisStatus::Cancelled`][crate::AnalysisStatus],
//!   keeping the sound fact prefix exactly like the flush cap does.
//! * [`RunHooks`] — the supervision context handed to a run: cancellation,
//!   a live progress counter, and (behind the `fault-inject` feature) a
//!   [`FaultPlan`].
//! * [`supervised_analyze`] / [`supervised_analyze_dom`] — wrappers that
//!   catch engine panics and convert them into structured [`RunFailure`]
//!   values instead of unwinding into the caller.
//!
//! Wall-clock deadlines and heap-cell budgets are configured on
//! [`crate::AnalysisConfig`] (`deadline_ms`, `mem_cell_budget`) and are
//! enforced by the machine itself at the same polling points, so they work
//! with or without a supervisor.

use crate::config::AnalysisConfig;
use crate::driver::{AnalysisOutcome, DetHarness};
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same flag; any clone may cancel. The machine polls
/// it cooperatively at statement boundaries, so cancellation stops the run
/// at a clean point with every sound fact collected so far intact.
///
/// Tokens form a tree: a [`CancelToken::child`] observes its own flag
/// *and* every ancestor's, so a batch scheduler can hand each job a
/// private token (cancellable by a watchdog without touching siblings)
/// that still honors whole-batch cancellation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<CancelInner>);

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    parent: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child token: cancelled when either its own flag or any
    /// ancestor's flag is set. Cancelling the child does not affect the
    /// parent or siblings.
    pub fn child(&self) -> Self {
        CancelToken(Arc::new(CancelInner {
            flag: AtomicBool::new(false),
            parent: Some(self.0.clone()),
        }))
    }

    /// Requests cancellation; all clones (and children) observe it at
    /// their next poll.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested on this token or any
    /// ancestor.
    pub fn is_cancelled(&self) -> bool {
        let mut inner: &CancelInner = &self.0;
        loop {
            if inner.flag.load(Ordering::Relaxed) {
                return true;
            }
            match &inner.parent {
                Some(p) => inner = p,
                None => return false,
            }
        }
    }
}

/// Supervision context for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct RunHooks {
    /// Cooperative cancellation; `None` means the run is uncancellable.
    pub cancel: Option<CancelToken>,
    /// Live statement counter, updated at every poll. Survives a panic of
    /// the machine, so the supervisor can report how far a failed run got.
    pub progress: Option<Arc<AtomicU64>>,
    /// Deterministic fault injection (testing only).
    #[cfg(feature = "fault-inject")]
    pub faults: Option<FaultPlan>,
}

impl RunHooks {
    /// Hooks with a cancel token and a progress counter installed.
    pub fn supervised() -> Self {
        RunHooks {
            cancel: Some(CancelToken::new()),
            progress: Some(Arc::new(AtomicU64::new(0))),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Hooks sharing an existing cancel token (e.g. a batch-wide token
    /// held by a job pool), with a fresh progress counter.
    pub fn with_cancel(token: CancelToken) -> Self {
        RunHooks {
            cancel: Some(token),
            progress: Some(Arc::new(AtomicU64::new(0))),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// The last progress-counter reading (0 when no counter is installed).
    pub fn steps(&self) -> u64 {
        self.progress
            .as_ref()
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Replaces the fault plan (testing only).
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// A deterministic fault schedule, for crash-safety tests.
///
/// Counters are indexed from 1: `native_panic_at: Some(3)` fires on the
/// third native call of the run. Faults are injected at well-defined
/// machine points, so a given (program, seed, plan) triple always fails
/// the same way.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Make the nth native call return a thrown `Error` instead of
    /// running the native model.
    pub native_error_at: Option<u64>,
    /// Make the nth native call panic (simulates a native-model bug).
    pub native_panic_at: Option<u64>,
    /// Force every counterfactual execution to abort (ĈNTRABORT storm):
    /// the undo log must restore machine state each time.
    pub cf_abort_storm: bool,
    /// Make the nth object allocation report heap exhaustion, stopping
    /// the run with [`crate::AnalysisStatus::MemLimit`].
    pub alloc_fail_at: Option<u64>,
    /// Suppress the cooperative wall-clock deadline check (simulates a
    /// deadline-accounting bug): the run keeps polling cancellation but
    /// never stops on `deadline_ms`, so only an external watchdog can
    /// stop it. Exercises the scheduler's wedged-job path.
    pub ignore_deadline: bool,
}

/// Mutable injection state carried by a machine under test.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    /// The schedule.
    pub plan: FaultPlan,
    /// Native calls observed so far.
    pub native_calls: u64,
    /// Allocations observed so far.
    pub allocs: u64,
}

#[cfg(feature = "fault-inject")]
impl FaultState {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ..Default::default()
        }
    }
}

/// Why a supervised run produced no outcome.
#[derive(Debug, Clone)]
pub enum RunFailure {
    /// The engine panicked; the supervisor caught it at the run boundary.
    EnginePanic {
        /// The panic payload, when it was a string (the common case).
        payload: String,
        /// Statements executed before the panic, as last reported by the
        /// progress counter (0 when no progress hook was installed).
        steps: u64,
        /// The seed of the failed run, for reproduction.
        seed: u64,
    },
    /// The run was cancelled *before it started* (batch shutdown): it
    /// contributes no facts at all. Runs cancelled mid-flight are not
    /// failures — they end normally with
    /// [`AnalysisStatus::Cancelled`][crate::AnalysisStatus] and keep their
    /// sound fact prefix.
    Cancelled {
        /// The seed the skipped run would have used.
        seed: u64,
    },
}

impl RunFailure {
    /// The variant name, for structured failure reports.
    pub fn kind(&self) -> &'static str {
        match self {
            RunFailure::EnginePanic { .. } => "EnginePanic",
            RunFailure::Cancelled { .. } => "Cancelled",
        }
    }

    /// The seed of the affected run.
    pub fn seed(&self) -> u64 {
        match self {
            RunFailure::EnginePanic { seed, .. } | RunFailure::Cancelled { seed } => *seed,
        }
    }

    /// Whether retrying the run could plausibly succeed. Engine panics
    /// (and injected allocation faults, which surface as panics outside a
    /// supervised run) are treated as transient; cancellation is a
    /// deliberate external decision and is never retried. Deterministic
    /// stops — deadline, memory budget, parse errors — end runs with a
    /// *status*, not a `RunFailure`, and retrying them would only repeat
    /// the same outcome.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunFailure::EnginePanic { .. })
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::EnginePanic {
                payload,
                steps,
                seed,
            } => write!(
                f,
                "engine panic after {steps} steps (seed {seed}): {payload}"
            ),
            RunFailure::Cancelled { seed } => {
                write!(f, "cancelled before start (seed {seed})")
            }
        }
    }
}

impl std::error::Error for RunFailure {}

fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn supervise<F>(
    cfg: &AnalysisConfig,
    hooks: &RunHooks,
    run: F,
) -> Result<AnalysisOutcome, RunFailure>
where
    F: FnOnce() -> AnalysisOutcome,
{
    if let Some(p) = &hooks.progress {
        p.store(0, Ordering::Relaxed);
    }
    catch_unwind(AssertUnwindSafe(run)).map_err(|p| RunFailure::EnginePanic {
        payload: panic_payload(p),
        steps: hooks
            .progress
            .as_ref()
            .map_or(0, |c| c.load(Ordering::Relaxed)),
        seed: cfg.seed,
    })
}

/// Runs [`DetHarness::analyze_with`] under panic isolation.
///
/// # Errors
///
/// [`RunFailure::EnginePanic`] when the engine panics; the panic does not
/// propagate to the caller.
pub fn supervised_analyze(
    h: &mut DetHarness,
    cfg: AnalysisConfig,
    hooks: &RunHooks,
) -> Result<AnalysisOutcome, RunFailure> {
    let c = cfg.clone();
    supervise(&cfg, hooks, move || h.analyze_with(c, hooks))
}

/// Runs [`DetHarness::analyze_dom_with`] under panic isolation.
///
/// # Errors
///
/// [`RunFailure::EnginePanic`] when the engine panics; the panic does not
/// propagate to the caller.
pub fn supervised_analyze_dom(
    h: &mut DetHarness,
    cfg: AnalysisConfig,
    doc: Document,
    plan: &EventPlan,
    hooks: &RunHooks,
) -> Result<AnalysisOutcome, RunFailure> {
    let c = cfg.clone();
    supervise(&cfg, hooks, move || h.analyze_dom_with(c, doc, plan, hooks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
    }

    #[test]
    fn supervisor_passes_healthy_runs_through() {
        let mut h = DetHarness::from_src("var x = 1 + 2;").unwrap();
        let out =
            supervised_analyze(&mut h, AnalysisConfig::default(), &RunHooks::supervised()).unwrap();
        assert_eq!(out.status, crate::AnalysisStatus::Completed);
        assert!(out.facts.det_count() > 0);
    }

    #[test]
    fn supervisor_reports_failure_display() {
        let f = RunFailure::EnginePanic {
            payload: "boom".into(),
            steps: 7,
            seed: 3,
        };
        let s = f.to_string();
        assert!(
            s.contains("boom") && s.contains("7") && s.contains("3"),
            "{s}"
        );
    }
}
