//! Which variables can be written by closures other than their declaring
//! function.
//!
//! A heap flush in the instrumented semantics models "an unknown function
//! was called, it may have written anything it can reach". A captured
//! local can only be written by such a call if *some* closure in the
//! program assigns it (µJS makes this vacuous — callees can never write
//! caller locals, the paper's footnote 4). This analysis computes the set
//! of `(declaring function, name)` pairs assigned from a lexically nested
//! function, so the flush policy can leave all other locals determinate —
//! which is exactly what Figure 2 relies on (`checkf` stays callable with
//! a determinate target after the line 21 flush).
//!
//! Functions containing a *direct* `eval` conservatively write every name
//! visible to them.

use crate::intern::Sym;
use crate::ir::{FuncId, FuncKind, Program};
use crate::resolve::{Binding, Resolver};
use crate::vd::write_domain;
use std::collections::HashSet;

/// The set of closure-written variables of a program.
#[derive(Debug, Default)]
pub struct ClosureWrites {
    written: HashSet<(FuncId, Sym)>,
}

impl ClosureWrites {
    /// Computes the set for every function currently in `prog`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
    /// use mujs_ir::closure_writes::ClosureWrites;
    /// let ast = mujs_syntax::parse(
    ///     "function f() { var a = 1, b = 2; return function() { b = 3; }; }",
    /// )?;
    /// let prog = mujs_ir::lower::lower_program(&ast);
    /// let cw = ClosureWrites::compute(&prog);
    /// let f = prog
    ///     .funcs
    ///     .iter()
    ///     .find(|x| x.name.is_some_and(|s| prog.interner.resolve(s) == "f"))
    ///     .unwrap()
    ///     .id;
    /// let a = prog.interner.get("a").unwrap();
    /// let b = prog.interner.get("b").unwrap();
    /// assert!(!cw.is_written(f, a));
    /// assert!(cw.is_written(f, b));
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(prog: &Program) -> Self {
        let resolver = Resolver::new(prog);
        let mut written = HashSet::new();
        for g in &prog.funcs {
            let wd = write_domain(&g.body);
            // The writing scope: eval chunks write through their parent.
            let writer = effective_scope(prog, g.id);
            for place in &wd.places {
                if let Some(name) = place.as_var_sym() {
                    if let Binding::Local(f) = resolver.resolve(prog, g.id, name) {
                        if f != writer {
                            written.insert((f, name));
                        }
                    }
                }
            }
            if wd.contains_eval {
                // Direct eval can assign any visible name.
                let mut cur = Some(g.id);
                while let Some(id) = cur {
                    let func = prog.func(id);
                    if func.kind == FuncKind::Function {
                        if let Some(names) = resolver.declared(id) {
                            for n in names {
                                written.insert((id, *n));
                            }
                        }
                        // `arguments` is implicitly declared.
                        written.insert((id, Sym::ARGUMENTS));
                    }
                    cur = func.parent;
                }
            }
        }
        ClosureWrites { written }
    }

    /// Whether some nested closure may assign `name` declared in `func`.
    pub fn is_written(&self, func: FuncId, name: Sym) -> bool {
        self.written.contains(&(func, name))
    }

    /// Number of closure-written pairs.
    pub fn len(&self) -> usize {
        self.written.len()
    }

    /// Whether no variable is closure-written.
    pub fn is_empty(&self) -> bool {
        self.written.is_empty()
    }
}

/// The function whose activation actually owns writes made by `id`:
/// eval chunks delegate to their nearest enclosing real function.
fn effective_scope(prog: &Program, id: FuncId) -> FuncId {
    let mut cur = id;
    loop {
        let f = prog.func(cur);
        if f.kind != FuncKind::EvalChunk {
            return cur;
        }
        match f.parent {
            Some(p) => cur = p,
            None => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    fn setup(src: &str) -> (Program, ClosureWrites) {
        let prog = lower_program(&parse(src).unwrap());
        let cw = ClosureWrites::compute(&prog);
        (prog, cw)
    }

    fn fid(prog: &Program, name: &str) -> FuncId {
        prog.funcs
            .iter()
            .find(|f| f.name.is_some_and(|s| prog.interner.resolve(s) == name))
            .unwrap()
            .id
    }

    fn written(prog: &Program, cw: &ClosureWrites, func: &str, name: &str) -> bool {
        prog.interner
            .get(name)
            .is_some_and(|s| cw.is_written(fid(prog, func), s))
    }

    #[test]
    fn own_writes_do_not_count() {
        let (p, cw) = setup("function f() { var a = 1; a = 2; }");
        assert!(!written(&p, &cw, "f", "a"));
    }

    #[test]
    fn nested_writes_count() {
        let (p, cw) = setup("function f() { var a; function g() { a = 1; } return g; }");
        assert!(written(&p, &cw, "f", "a"));
    }

    #[test]
    fn deeply_nested_writes_count() {
        let (p, cw) =
            setup("function f() { var a; return function() { return function() { a = 1; }; }; }");
        assert!(written(&p, &cw, "f", "a"));
    }

    #[test]
    fn reads_do_not_count() {
        let (p, cw) = setup("function f() { var a = 1; return function() { return a; }; }");
        assert!(!written(&p, &cw, "f", "a"));
    }

    #[test]
    fn function_declarations_are_not_closure_written() {
        // The Figure 2 situation: checkf/setg are only called, never
        // reassigned, so a heap flush must not invalidate them.
        let (p, cw) = setup(
            "function outer() { function checkf() { setg(); } function setg() {} checkf(); }",
        );
        assert!(!written(&p, &cw, "outer", "checkf"));
        assert!(!written(&p, &cw, "outer", "setg"));
    }

    #[test]
    fn eval_poisons_visible_names() {
        let (p, cw) = setup("function f(p) { var a; return function g() { eval(\"x\"); }; }");
        assert!(written(&p, &cw, "f", "a"));
        assert!(written(&p, &cw, "f", "p"));
        assert!(written(&p, &cw, "f", "arguments"));
    }
}
