//! Batch-analysis front door: run a manifest (or a directory of `.js`
//! files, or a built-in corpus suite) through the job pool, streaming
//! progress lines to stderr and writing a deterministic JSON report.
//!
//! ```console
//! $ detjobs --manifest batch.json --workers 8 --report out.json
//! $ detjobs --dir examples/js --workers 4
//! $ detjobs --suite all --workers 8 --no-facts --report corpus.json
//! $ detjobs --manifest batch.json --checkpoint ck.json --retries 3
//! $ detjobs --manifest batch.json --resume ck.json --report out.json
//! ```
//!
//! The report bytes depend only on the manifest and the analysis
//! semantics — `--workers 1` and `--workers 8` produce identical output,
//! as do a retried run, a degraded run, and an interrupted run resumed
//! with `--resume`.
//!
//! Exit status: `0` when every job completed cleanly, `1` when any job
//! failed or wedged (or on I/O errors), `2` for usage errors.

use mujs_jobs::{
    run_manifest_with, BatchOptions, Checkpoint, JobEvent, JobPool, Manifest, RetryPolicy,
};
use std::sync::mpsc::channel;

struct Options {
    manifest: Option<String>,
    dir: Option<String>,
    suite: Option<String>,
    workers: usize,
    report: Option<String>,
    include_facts: bool,
    quiet: bool,
    lint: bool,
    retries: u32,
    backoff_ms: u64,
    fail_fast: bool,
    watchdog_grace_ms: Option<u64>,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    checkpoint_every_set: bool,
    resume: Option<String>,
    mem_budget: Option<u64>,
    stats: Option<String>,
    pta_budget: Option<u64>,
    pta_threads: Option<usize>,
    pta_shards: Option<usize>,
    spec_depth: Option<usize>,
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detjobs (--manifest FILE | --dir DIR | --suite jquery|evalbench|all)\n\
         \x20              [--workers N] [--report FILE] [--no-facts] [--quiet]\n\
         \x20              [--retries N] [--backoff-ms MS] [--fail-fast]\n\
         \x20              [--watchdog-grace MS] [--mem-budget CELLS]\n\
         \x20              [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n\
         \x20              [--stats FILE] [--pta-budget N] [--pta-threads N]\n\
         \x20              [--shards N] [--spec-depth N]\n\
         \n\
         \x20 --manifest FILE    JSON job manifest (see DESIGN.md §5c for the format)\n\
         \x20 --dir DIR          one default job per *.js file, sorted by name\n\
         \x20 --suite NAME       built-in corpus suite manifest\n\
         \x20 --workers N        worker threads (default: available parallelism)\n\
         \x20 --report FILE      write the JSON report there (default: stdout)\n\
         \x20 --no-facts         omit per-job fact rows from the report\n\
         \x20 --quiet            suppress progress lines on stderr\n\
         \x20 --lint             validate each job's lowered IR before running\n\
         \x20 --retries N        attempts per job for transient failures (default 1)\n\
         \x20 --backoff-ms MS    deterministic retry backoff base (default 0)\n\
         \x20 --fail-fast        cancel the batch on the first permanent failure\n\
         \x20 --watchdog-grace MS  wedge jobs exceeding deadline_ms + MS\n\
         \x20 --mem-budget CELLS batch-wide declared-memory admission budget\n\
         \x20 --checkpoint FILE  stream settled rows to an atomic checkpoint\n\
         \x20 --checkpoint-every N  flush the checkpoint every N rows (default 1)\n\
         \x20 --resume FILE      splice completed rows from a checkpoint and\n\
         \x20                    run only the remainder (report stays byte-identical)\n\
         \x20 --stats FILE       write retry/wedged/degraded counters as JSON\n\
         \x20 --pta-budget N     additionally run a budgeted pointer-analysis\n\
         \x20                    solve per job; each report row gains a `pta`\n\
         \x20                    object (off by default; report bytes are\n\
         \x20                    unchanged when off)\n\
         \x20 --pta-threads N    solver threads for the PTA stage (default: the\n\
         \x20                    host's available parallelism, clamped by\n\
         \x20                    --mem-budget; 1 = sequential). The solver is\n\
         \x20                    deterministic: report bytes and checkpoint keys\n\
         \x20                    are identical for every N\n\
         \x20 --shards N         shard count for the PTA stage's epoch-sharded\n\
         \x20                    solver (default: the solver's built-in count).\n\
         \x20                    Like --pta-threads it never changes report\n\
         \x20                    bytes or checkpoint keys\n\
         \x20 --spec-depth N     specialize each job's program (against its own\n\
         \x20                    dynamic facts, context depth bound N) before the\n\
         \x20                    PTA stage. Unlike --pta-threads this changes\n\
         \x20                    results, so it is folded into checkpoint keys;\n\
         \x20                    requires --pta-budget\n\
         \n\
         exit status:\n\
         \x20 0  every job completed cleanly\n\
         \x20 1  any job failed, panicked, or wedged; lint violations; I/O errors\n\
         \x20 2  usage errors (bad flags or flag combinations)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Options {
        manifest: None,
        dir: None,
        suite: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        report: None,
        include_facts: true,
        quiet: false,
        lint: false,
        retries: 1,
        backoff_ms: 0,
        fail_fast: false,
        watchdog_grace_ms: None,
        checkpoint: None,
        checkpoint_every: 1,
        checkpoint_every_set: false,
        resume: None,
        mem_budget: None,
        stats: None,
        pta_budget: None,
        pta_threads: None,
        pta_shards: None,
        spec_depth: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => usage(&format!("{flag} needs a value")),
        }
    };
    fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> T {
        match v.parse() {
            Ok(n) => n,
            Err(_) => usage(&format!("{flag} wants a non-negative integer, got `{v}`")),
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--manifest" => o.manifest = Some(value(&args, &mut i, "--manifest")),
            "--dir" => o.dir = Some(value(&args, &mut i, "--dir")),
            "--suite" => o.suite = Some(value(&args, &mut i, "--suite")),
            "--workers" => {
                let v = value(&args, &mut i, "--workers");
                o.workers = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => usage(&format!("--workers wants a positive integer, got `{v}`")),
                };
            }
            "--report" => o.report = Some(value(&args, &mut i, "--report")),
            "--no-facts" => o.include_facts = false,
            "--quiet" => o.quiet = true,
            "--lint" => o.lint = true,
            "--retries" => {
                let v = value(&args, &mut i, "--retries");
                o.retries = parse_num(&v, "--retries");
            }
            "--backoff-ms" => {
                let v = value(&args, &mut i, "--backoff-ms");
                o.backoff_ms = parse_num(&v, "--backoff-ms");
            }
            "--fail-fast" => o.fail_fast = true,
            "--watchdog-grace" => {
                let v = value(&args, &mut i, "--watchdog-grace");
                o.watchdog_grace_ms = Some(parse_num(&v, "--watchdog-grace"));
            }
            "--mem-budget" => {
                let v = value(&args, &mut i, "--mem-budget");
                o.mem_budget = Some(parse_num(&v, "--mem-budget"));
            }
            "--checkpoint" => o.checkpoint = Some(value(&args, &mut i, "--checkpoint")),
            "--checkpoint-every" => {
                let v = value(&args, &mut i, "--checkpoint-every");
                o.checkpoint_every = parse_num(&v, "--checkpoint-every");
                o.checkpoint_every_set = true;
            }
            "--resume" => o.resume = Some(value(&args, &mut i, "--resume")),
            "--stats" => o.stats = Some(value(&args, &mut i, "--stats")),
            "--pta-budget" => {
                let v = value(&args, &mut i, "--pta-budget");
                o.pta_budget = Some(parse_num(&v, "--pta-budget"));
            }
            "--pta-threads" => {
                let v = value(&args, &mut i, "--pta-threads");
                o.pta_threads = Some(parse_num(&v, "--pta-threads"));
            }
            "--shards" => {
                let v = value(&args, &mut i, "--shards");
                o.pta_shards = match v.parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => usage(&format!("--shards wants a positive integer, got `{v}`")),
                };
            }
            "--spec-depth" => {
                let v = value(&args, &mut i, "--spec-depth");
                o.spec_depth = Some(parse_num(&v, "--spec-depth"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if [&o.manifest, &o.dir, &o.suite]
        .iter()
        .filter(|s| s.is_some())
        .count()
        != 1
    {
        usage("exactly one of --manifest, --dir, --suite is required");
    }
    if o.spec_depth.is_some() && o.pta_budget.is_none() {
        usage("--spec-depth only affects the PTA stage; it requires --pta-budget");
    }
    if o.checkpoint.is_none() {
        if o.checkpoint_every_set {
            eprintln!("detjobs: warning: --checkpoint-every has no effect without --checkpoint");
        }
        if o.resume.is_some() {
            eprintln!(
                "detjobs: warning: --resume without --checkpoint: rows settled in this \
                 run will not be checkpointed, so a second interruption reruns them"
            );
        }
    }
    o
}

fn load_manifest(o: &Options) -> Manifest {
    let loaded = if let Some(path) = &o.manifest {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|s| Manifest::from_json(&s))
    } else if let Some(dir) = &o.dir {
        Manifest::from_dir(std::path::Path::new(dir))
    } else {
        let suite = o.suite.as_deref().unwrap_or_default();
        Manifest::suite(suite)
            .ok_or_else(|| format!("unknown suite `{suite}` (jquery, evalbench, all)"))
    };
    match loaded {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Pre-flight IR validation of every job source; exits 1 on any
/// violation so a bad batch fails before burning worker time.
fn lint_manifest(manifest: &Manifest) {
    let mut bad = 0usize;
    for job in &manifest.jobs {
        let lowered = mujs_syntax::with_parser_stack(|| {
            mujs_syntax::parse(&job.src).map(|ast| mujs_ir::lower_program(&ast))
        });
        match lowered {
            Err(e) => {
                eprintln!("lint {}: parse error: {e}", job.name);
                bad += 1;
            }
            Ok(prog) => {
                let violations = mujs_analysis::validate_program(&prog);
                if !violations.is_empty() {
                    eprintln!("lint {}: {} violation(s)", job.name, violations.len());
                    for v in &violations {
                        eprintln!("  {}", v.describe(&prog));
                    }
                    bad += 1;
                }
            }
        }
    }
    if bad > 0 {
        eprintln!("detjobs: lint failed for {bad} job(s)");
        std::process::exit(1);
    }
    eprintln!("detjobs: lint ok ({} jobs)", manifest.jobs.len());
}

fn main() {
    let o = parse_args();
    let manifest = load_manifest(&o);
    let total = manifest.jobs.len();
    if o.lint {
        lint_manifest(&manifest);
    }
    eprintln!("detjobs: {total} jobs on {} workers", o.workers);

    let resume = o
        .resume
        .as_ref()
        .map(|path| match Checkpoint::load(std::path::Path::new(path)) {
            Ok(ck) => {
                eprintln!("detjobs: resuming from {path} ({} settled rows)", ck.len());
                ck
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        });

    let (tx, rx) = channel();
    let pool = JobPool::new(o.workers).with_events(tx);
    let quiet = o.quiet;
    // Stream progress lines until the pool drops its sender at batch end.
    let printer = std::thread::spawn(move || {
        for e in rx {
            if quiet {
                continue;
            }
            match e {
                JobEvent::Started {
                    job,
                    label,
                    worker,
                    attempt,
                } => {
                    let nth = if attempt > 1 {
                        format!(" (attempt {attempt})")
                    } else {
                        String::new()
                    };
                    eprintln!(
                        "[{:>3}/{total}] started   {label} (worker {worker}){nth}",
                        job + 1
                    );
                }
                JobEvent::Progress { job, detail } => {
                    eprintln!("[{:>3}/{total}] progress  {detail}", job + 1);
                }
                JobEvent::Finished { job, label } => {
                    eprintln!("[{:>3}/{total}] finished  {label}", job + 1);
                }
                JobEvent::Retrying {
                    job,
                    label,
                    attempt,
                    error,
                } => {
                    eprintln!(
                        "[{:>3}/{total}] retrying  {label} (attempt {attempt} failed: {error})",
                        job + 1
                    );
                }
                JobEvent::Failed { job, label, error } => {
                    eprintln!("[{:>3}/{total}] FAILED    {label}: {error}", job + 1);
                }
                JobEvent::Wedged {
                    job,
                    label,
                    budget_ms,
                } => {
                    eprintln!(
                        "[{:>3}/{total}] WEDGED    {label} (exceeded {budget_ms}ms watchdog budget)",
                        job + 1
                    );
                }
                JobEvent::Degraded {
                    job,
                    label,
                    granted_cells,
                } => {
                    eprintln!(
                        "[{:>3}/{total}] degraded  {label} (granted {granted_cells} cells)",
                        job + 1
                    );
                }
                JobEvent::Cancelled { job, label } => {
                    eprintln!("[{:>3}/{total}] cancelled {label}", job + 1);
                }
            }
        }
    });

    let opts = BatchOptions {
        retry: RetryPolicy {
            max_attempts: o.retries.max(1),
            backoff_base_ms: o.backoff_ms,
            fail_fast: o.fail_fast,
            ..RetryPolicy::default()
        },
        watchdog_grace_ms: o.watchdog_grace_ms,
        checkpoint_path: o.checkpoint.as_ref().map(std::path::PathBuf::from),
        checkpoint_every: o.checkpoint_every,
        resume,
        mem_budget_cells: o.mem_budget,
        pta_budget: o.pta_budget,
        pta_threads: o
            .pta_threads
            .unwrap_or_else(|| mujs_jobs::default_pta_threads(o.mem_budget)),
        pta_shards: o.pta_shards.unwrap_or(0),
        spec_depth: o.spec_depth,
        #[cfg(feature = "fault-inject")]
        chaos: None,
    };
    let batch = run_manifest_with(&manifest, &pool, &opts);
    drop(pool); // closes the event channel so the printer drains and exits
    let _ = printer.join();

    eprintln!(
        "detjobs: {}/{} jobs completed{}",
        batch.completed(),
        total,
        if batch.has_failures() {
            " (with failures)"
        } else {
            ""
        }
    );

    if let Some(path) = &o.stats {
        if let Err(e) = std::fs::write(path, batch.stats_json()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("detjobs: stats written to {path}");
    }

    let report = batch.report_json(o.include_facts);
    match &o.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("detjobs: report written to {path}");
        }
        None => println!("{report}"),
    }
    if batch.has_failures() {
        std::process::exit(1);
    }
}
