//! The Andersen-style inclusion-constraint solver with on-the-fly call
//! graph construction — the reproduction's stand-in for WALA's JavaScript
//! points-to analysis \[30\].
//!
//! Dynamic property accesses whose names the analysis cannot resolve smear
//! through per-object ⋆-nodes: a dynamic store reaches every read of the
//! object, and a dynamic load sees every store. This is the imprecision
//! engine behind Table 1's baseline blow-ups; the specializer removes it
//! by turning dynamic keys static.
//!
//! The solver propagates *differences*: each node's points-to set is split
//! into `old` (already pushed along every outgoing edge and applied to
//! every pending constraint) and `delta` (newly arrived), the worklist
//! holds dirty nodes rather than `(node, object)` pairs, and sets are the
//! hybrid sparse/dense bitsets of [`crate::pts`]. Periodically the solver
//! Tarjan-collapses copy-edge cycles ([`crate::scc`]) into union-find
//! representatives; every node lookup canonicalizes through `find`, so
//! injected determinacy facts and precision metrics see merged nodes
//! transparently. See `reference` for the naive baseline algorithm the
//! equivalence tests compare against.
//!
//! The solver counts propagation work and stops when a configured budget
//! is exceeded — the deterministic equivalent of the paper's 10-minute
//! timeout.

use crate::blame::{BlameCause, BlameData, Provenance, INHERIT};
use crate::hash::{FastMap, FastSet};
use crate::nodes::{AbsObj, Node};
use crate::pts::{self, Pts};
use crate::scc;
use mujs_ir::ir::{Place, PropKey, StmtKind};
use mujs_ir::resolve::{Binding, Resolver};
use mujs_ir::{FuncId, FuncKind, Program, Stmt, StmtId, Sym};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Determinacy facts injected into the solver: per-site resolutions of
/// dynamic property keys and call targets, keyed by statement id.
///
/// The paper's pipeline removes ⋆-smearing by *rewriting the source*
/// (specialization) and re-running the analysis; fact injection achieves
/// the same precision without touching the program — when a site carries
/// a fact, the solver treats the dynamic key as static (resp. resolves
/// the call directly) instead of routing through the per-object ⋆ nodes.
#[derive(Debug, Clone, Default)]
pub struct InjectedFacts {
    /// Dynamic property accesses (`GetProp`/`SetProp` with
    /// [`PropKey::Dynamic`]) whose key is determinate: site → interned key.
    pub prop_keys: HashMap<StmtId, Sym>,
    /// Call/new sites whose callee is determinate: site → target function.
    pub callees: HashMap<StmtId, FuncId>,
}

impl InjectedFacts {
    /// Total number of injectable facts.
    pub fn len(&self) -> usize {
        self.prop_keys.len() + self.callees.len()
    }

    /// Whether there is anything to inject.
    pub fn is_empty(&self) -> bool {
        self.prop_keys.is_empty() && self.callees.is_empty()
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct PtaConfig {
    /// Propagation-work budget (points-to insertions); exceeding it stops
    /// the analysis with [`PtaStatus::BudgetExceeded`].
    pub budget: u64,
    /// Determinacy facts to consult at dynamic property accesses and
    /// call sites (`None` = plain baseline analysis).
    pub facts: Option<InjectedFacts>,
    /// Copy edges added between online cycle-collapse passes. Small
    /// programs never reach it and run collapse-free; `u64::MAX`
    /// disables collapsing entirely.
    pub scc_interval: u64,
    /// Solver threads. `0` or `1` runs the classic sequential worklist;
    /// `≥ 2` runs the epoch-sharded parallel solver (`crate::parallel`),
    /// whose results — fixpoint sets, exports, call graph, truncation
    /// point — are schedule-independent: identical for every thread
    /// count, so the knob never belongs in a cache key.
    pub threads: usize,
    /// Shard count of the epoch-sharded parallel solver: nodes partition
    /// into this many contiguous blocks, each a unit of work and of
    /// message routing. Shards — not threads — are the unit of
    /// determinism: results are identical for every thread count at a
    /// fixed shard count, so like `threads` the knob stays out of cache
    /// keys (results across *different* shard counts agree at fixpoint
    /// but may truncate differently mid-budget).
    pub shards: usize,
    /// Record imprecision provenance: every points-to tuple carries a
    /// blame tag naming the first cause that introduced it (see
    /// [`crate::blame`]). Provenance forces the epoch-sharded driver even
    /// at `threads: 1` so blame assignment follows the epoch schedule —
    /// byte-identical [`PtaResult::export_blame_json`] for every thread
    /// count. Off by default; the default solve's exports, propagation
    /// counts, and budget semantics are bit-for-bit unaffected.
    pub provenance: bool,
    /// Concrete-execution region summaries (see [`crate::shortcut`]).
    /// When the on-the-fly call graph first reaches a summarized
    /// function, its summary is applied as budget-accounted insertions
    /// (blamed [`BlameCause::Shortcut`]) instead of generating the
    /// region's constraints. `None` leaves every solve bit-for-bit
    /// unaffected.
    pub shortcuts: Option<std::sync::Arc<crate::shortcut::ShortcutSummaries>>,
}

impl Default for PtaConfig {
    fn default() -> Self {
        PtaConfig {
            budget: 25_000_000,
            facts: None,
            scc_interval: 2_048,
            threads: 1,
            shards: 16,
            provenance: false,
            shortcuts: None,
        }
    }
}

/// How a solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtaStatus {
    /// Fixpoint reached within budget.
    Completed,
    /// Budget exhausted (the paper's ✗ / timeout).
    BudgetExceeded,
}

/// Work statistics.
#[derive(Debug, Clone, Default)]
pub struct PtaStats {
    /// Points-to facts inserted (the budgeted quantity).
    pub propagations: u64,
    /// Distinct pointer nodes materialized.
    pub nodes: usize,
    /// Subset edges added.
    pub edges: u64,
    /// Call edges discovered.
    pub call_edges: usize,
    /// Dynamic property accesses resolved by an injected fact.
    pub injected_keys: usize,
    /// Call sites resolved by an injected fact.
    pub injected_calls: usize,
    /// Online cycle-collapse passes run.
    pub scc_passes: u64,
    /// Nodes union-find-merged into a cycle representative.
    pub nodes_merged: u64,
    /// Functions whose constraints were replaced by a region summary.
    pub shortcut_regions: usize,
    /// Points-to tuples applied from region summaries.
    pub shortcut_tuples: u64,
}

/// Precision metrics of a finished solve, comparable across baseline,
/// fact-injected, and specialized runs of the same source program.
#[derive(Debug, Clone, Default)]
pub struct PtaPrecision {
    /// Call sites with at least one resolved target.
    pub call_sites: usize,
    /// Call sites with more than one (canonical) target.
    pub poly_sites: usize,
    /// Mean number of canonical targets per resolved call site.
    pub avg_targets: f64,
    /// Mean points-to set size over variable nodes with non-empty sets.
    pub avg_points_to: f64,
    /// Largest points-to set over variable nodes.
    pub max_points_to: usize,
    /// Distinct (canonical) functions appearing as call targets.
    pub reachable_funcs: usize,
}

/// Result of a solve.
///
/// Points-to sets are stored once per union-find representative; lookups
/// resolve any node through the (fully compressed) `parent` table. At
/// fixpoint every member of a collapsed cycle provably holds the same
/// set, so reporting the representative's set per member is identical to
/// never having merged — which is what keeps exports byte-identical to
/// the reference solver.
#[derive(Debug)]
pub struct PtaResult {
    /// Completion status.
    pub status: PtaStatus,
    /// Statistics.
    pub stats: PtaStats,
    pub(crate) pts: Vec<Pts>,
    pub(crate) parent: Vec<u32>,
    pub(crate) node_ids: HashMap<Node, u32>,
    pub(crate) objs: Vec<AbsObj>,
    pub(crate) call_graph: BTreeMap<StmtId, BTreeSet<FuncId>>,
    pub(crate) blame: Option<BlameData>,
}

impl PtaResult {
    /// The points-to set of a node (empty if the node never materialized).
    pub fn points_to(&self, node: &Node) -> Vec<AbsObj> {
        let Some(id) = self.node_ids.get(node) else {
            return Vec::new();
        };
        self.points_to_id(*id)
    }

    /// Functions a call/new site may invoke.
    pub fn callees(&self, site: StmtId) -> Vec<FuncId> {
        let mut v: Vec<FuncId> = self
            .call_graph
            .get(&site)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// All resolved call edges, in deterministic (site, target) order.
    pub fn call_graph(&self) -> &BTreeMap<StmtId, BTreeSet<FuncId>> {
        &self.call_graph
    }

    /// Number of call sites with more than `k` targets (a precision
    /// metric).
    pub fn polymorphic_sites(&self, k: usize) -> usize {
        self.call_graph.values().filter(|s| s.len() > k).count()
    }

    /// Every materialized node with its (sorted) points-to set, in
    /// deterministic node order — byte-identical across runs.
    pub fn all_points_to(&self) -> Vec<(Node, Vec<AbsObj>)> {
        let mut v: Vec<(Node, Vec<AbsObj>)> = self
            .node_ids
            .iter()
            .map(|(n, id)| (n.clone(), self.points_to_id(*id)))
            .collect();
        v.sort();
        v
    }

    fn set_of(&self, id: u32) -> &Pts {
        &self.pts[self.parent[id as usize] as usize]
    }

    fn points_to_id(&self, id: u32) -> Vec<AbsObj> {
        let mut v: Vec<AbsObj> = self
            .set_of(id)
            .iter()
            .map(|o| self.objs[o as usize].clone())
            .collect();
        v.sort();
        v
    }

    /// Deterministic JSON rendering of the call graph and every node's
    /// points-to set — the byte-comparison surface of the delta-solver /
    /// reference-solver equivalence tests.
    pub fn export_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{\"call_graph\":{");
        for (i, (site, targets)) in self.call_graph.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let t: Vec<String> = targets.iter().map(|f| format!("{f:?}")).collect();
            let _ = write!(s, "\"{site:?}\":[{}]", t.join(","));
        }
        s.push_str("},\"points_to\":{");
        for (i, (node, objs)) in self.all_points_to().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let o: Vec<String> = objs.iter().map(|o| format!("\"{o:?}\"")).collect();
            let _ = write!(s, "\"{node:?}\":[{}]", o.join(","));
        }
        s.push_str("}}");
        s
    }

    /// Whether this result carries imprecision provenance (solved with
    /// [`PtaConfig::provenance`] on).
    pub fn has_blame(&self) -> bool {
        self.blame.is_some()
    }

    /// The blame causes of a node's points-to tuples, sorted by object —
    /// empty without provenance or when the node never materialized.
    /// Merged SCC members report their representative's canonical blame
    /// set, mirroring [`PtaResult::points_to`].
    pub fn blame_of(&self, node: &Node) -> Vec<(AbsObj, BlameCause)> {
        let (Some(b), Some(&id)) = (&self.blame, self.node_ids.get(node)) else {
            return Vec::new();
        };
        let id = self.parent[id as usize];
        let mut v: Vec<(AbsObj, BlameCause)> = self.pts[id as usize]
            .iter()
            .filter_map(|o| {
                b.cause_of(id, o)
                    .map(|c| (self.objs[o as usize].clone(), c.clone()))
            })
            .collect();
        v.sort();
        v
    }

    /// Tuple counts per blame cause over the *canonical* points-to
    /// relation (each collapsed SCC counted once), most-frequent first
    /// with ties broken by cause order. Empty without provenance.
    pub fn blame_histogram(&self) -> Vec<(BlameCause, u64)> {
        let Some(b) = &self.blame else {
            return Vec::new();
        };
        let mut counts: BTreeMap<BlameCause, u64> = BTreeMap::new();
        for id in 0..self.pts.len() as u32 {
            if self.parent[id as usize] != id {
                continue;
            }
            for o in self.pts[id as usize].iter() {
                if let Some(c) = b.cause_of(id, o) {
                    *counts.entry(c.clone()).or_default() += 1;
                }
            }
        }
        let mut v: Vec<(BlameCause, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Deterministic JSON rendering of the blame relation: every
    /// materialized node in sorted order, each of its points-to tuples
    /// labeled with its cause. The byte-comparison surface of the blame
    /// determinism tests (identical for every thread count). `None`
    /// without provenance. Merged SCC members render their
    /// representative's shared blame set, mirroring
    /// [`PtaResult::export_json`]'s per-member sets.
    pub fn export_blame_json(&self) -> Option<String> {
        use std::fmt::Write;
        let b = self.blame.as_ref()?;
        let mut nodes: Vec<(&Node, u32)> = self.node_ids.iter().map(|(n, &id)| (n, id)).collect();
        nodes.sort();
        let mut s = String::from("{\"blame\":{");
        for (i, (node, id)) in nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let id = self.parent[*id as usize];
            let mut entries: Vec<(AbsObj, String)> = self.pts[id as usize]
                .iter()
                .filter_map(|o| {
                    b.cause_of(id, o)
                        .map(|c| (self.objs[o as usize].clone(), c.label()))
                })
                .collect();
            entries.sort();
            let e: Vec<String> = entries
                .iter()
                .map(|(o, l)| format!("\"{o:?}\":\"{l}\""))
                .collect();
            let _ = write!(s, "\"{node:?}\":{{{}}}", e.join(","));
        }
        s.push_str("}}");
        Some(s)
    }

    /// Precision metrics comparable across baseline / fact-injected /
    /// specialized runs. Call targets are canonicalized through
    /// `specialized_from` so that a specialized program's clones count as
    /// their originals.
    pub fn precision(&self, prog: &Program) -> PtaPrecision {
        let canon = |mut f: FuncId| {
            let mut fuel = 64;
            while let Some(orig) = prog.func(f).specialized_from {
                f = orig;
                fuel -= 1;
                if fuel == 0 {
                    break;
                }
            }
            f
        };
        let call_sites = self.call_graph.len();
        let mut poly_sites = 0;
        let mut total_targets = 0usize;
        let mut reachable: BTreeSet<FuncId> = BTreeSet::new();
        for targets in self.call_graph.values() {
            let canonical: BTreeSet<FuncId> = targets.iter().map(|&f| canon(f)).collect();
            if canonical.len() > 1 {
                poly_sites += 1;
            }
            total_targets += canonical.len();
            reachable.extend(canonical);
        }
        let mut var_nodes = 0usize;
        let mut sum = 0usize;
        let mut max_points_to = 0usize;
        for (node, &id) in &self.node_ids {
            if matches!(node, Node::Temp(..) | Node::Local(..)) {
                let sz = self.set_of(id).len();
                if sz > 0 {
                    var_nodes += 1;
                    sum += sz;
                    max_points_to = max_points_to.max(sz);
                }
            }
        }
        PtaPrecision {
            call_sites,
            poly_sites,
            avg_targets: if call_sites > 0 {
                total_targets as f64 / call_sites as f64
            } else {
                0.0
            },
            avg_points_to: if var_nodes > 0 {
                sum as f64 / var_nodes as f64
            } else {
                0.0
            },
            max_points_to,
            reachable_funcs: reachable.len(),
        }
    }
}

/// Runs the analysis over every function of `prog`. With
/// [`PtaConfig::threads`] ≥ 2 — or [`PtaConfig::provenance`] on, whose
/// blame assignment must follow the thread-count-invariant epoch
/// schedule — the epoch-sharded parallel solver runs instead of the
/// sequential worklist; both reach the same unique least fixpoint and
/// export identical bytes.
pub fn solve(prog: &Program, cfg: &PtaConfig) -> PtaResult {
    let solver = Solver::new(prog, cfg.clone());
    if cfg.threads >= 2 || cfg.provenance {
        crate::parallel::solve_epochs(solver)
    } else {
        solver.run()
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Pending {
    /// `dst ⊇ base.key` (`None` = dynamic key).
    Load { key: Option<Sym>, dst: u32 },
    /// `base.key ⊇ src` (`None` = dynamic key).
    Store { key: Option<Sym>, src: u32 },
    /// A call through the node: wire params/ret when closures arrive.
    Call {
        site: StmtId,
        this: Option<u32>,
        args: Vec<u32>,
        dst: u32,
        is_new: bool,
    },
}

pub(crate) struct Solver<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) cfg: PtaConfig,
    resolver: Resolver,
    node_ids: FastMap<Node, u32>,
    pub(crate) nodes: Vec<Node>,
    obj_ids: FastMap<AbsObj, u32>,
    pub(crate) objs: Vec<AbsObj>,
    /// Union-find over node ids (path-halving `find`).
    pub(crate) parent: Vec<u32>,
    /// Facts already pushed along every out-edge / applied to every
    /// pending constraint of the node.
    pub(crate) old: Vec<Pts>,
    /// Facts that arrived since the node was last processed.
    pub(crate) delta: Vec<Pts>,
    /// Outgoing copy edges, stored on representatives. Targets may go
    /// stale after a merge; every use canonicalizes through `find`, and
    /// each collapse pass rebuilds them canonical.
    pub(crate) edges: Vec<Vec<u32>>,
    /// Dedupe of canonical `(from, to)` pairs; rebuilt on collapse.
    edge_set: FastSet<u64>,
    pub(crate) pending: Vec<Vec<Pending>>,
    /// Dirty-node worklist: representatives with a non-empty delta.
    pub(crate) dirty: VecDeque<u32>,
    pub(crate) on_dirty: Vec<bool>,
    call_graph: BTreeMap<StmtId, BTreeSet<FuncId>>,
    processed_funcs: FastSet<FuncId>,
    pub(crate) func_queue: VecDeque<FuncId>,
    pub(crate) stats: PtaStats,
    pub(crate) exhausted: bool,
    pub(crate) edges_since_scc: u64,
    /// Imprecision provenance side state (`Some` iff `cfg.provenance`).
    pub(crate) prov: Option<Provenance>,
    /// Reusable insertion-log buffer for provenance-tracked flows.
    scratch_log: Vec<pts::FlowLogEntry>,
}

fn edge_key(from: u32, to: u32) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

impl<'p> Solver<'p> {
    pub(crate) fn new(prog: &'p Program, cfg: PtaConfig) -> Self {
        let prov = cfg.provenance.then(Provenance::new);
        Solver {
            prog,
            cfg,
            resolver: Resolver::new(prog),
            node_ids: FastMap::default(),
            nodes: Vec::new(),
            obj_ids: FastMap::default(),
            objs: Vec::new(),
            parent: Vec::new(),
            old: Vec::new(),
            delta: Vec::new(),
            edges: Vec::new(),
            edge_set: FastSet::default(),
            pending: Vec::new(),
            dirty: VecDeque::new(),
            on_dirty: Vec::new(),
            call_graph: BTreeMap::new(),
            processed_funcs: FastSet::default(),
            func_queue: VecDeque::new(),
            stats: PtaStats::default(),
            exhausted: false,
            edges_since_scc: 0,
            prov,
            scratch_log: Vec::new(),
        }
    }

    fn node(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.node_ids.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.node_ids.insert(n.clone(), id);
        self.nodes.push(n.clone());
        self.parent.push(id);
        self.old.push(Pts::new());
        self.delta.push(Pts::new());
        self.edges.push(Vec::new());
        self.pending.push(Vec::new());
        self.on_dirty.push(false);
        if let Some(p) = self.prov.as_mut() {
            // Havoc nodes stamp their own cause onto every outflowing
            // tuple; interning here keeps flow phases intern-free.
            let stamp = match &n {
                Node::StarProps(o) => p.intern(BlameCause::StarSmear(o.clone())),
                Node::UnknownProps(o) => p.intern(BlameCause::UnknownSmear(o.clone())),
                Node::ExcPool => p.intern(BlameCause::ExcFlow),
                _ => INHERIT,
            };
            p.push_node(stamp);
        }
        // Materializing a named property wires it into the ⋆ join.
        if let Node::Prop(o, _) = &n {
            let star = self.node(Node::StarProps(o.clone()));
            self.add_edge(id, star);
        }
        id
    }

    fn obj(&mut self, o: AbsObj) -> u32 {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = self.objs.len() as u32;
        self.obj_ids.insert(o.clone(), id);
        self.objs.push(o);
        id
    }

    /// Union-find lookup with path halving.
    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn mark_dirty(&mut self, n: u32) {
        if !self.on_dirty[n as usize] {
            self.on_dirty[n as usize] = true;
            self.dirty.push_back(n);
        }
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        let f = self.find(from);
        let t = self.find(to);
        if f == t || !self.edge_set.insert(edge_key(f, t)) {
            return;
        }
        self.edges[f as usize].push(t);
        self.stats.edges += 1;
        self.edges_since_scc += 1;
        // A new edge flows the source's full current set (old ∪ delta):
        // `old` facts were pushed along the *previous* edge set only.
        if self.exhausted {
            return;
        }
        let src = self.old[f as usize].take();
        self.flow_from(f, &src, t);
        self.old[f as usize] = src;
        if self.exhausted {
            return;
        }
        let src = self.delta[f as usize].take();
        self.flow_from(f, &src, t);
        self.delta[f as usize] = src;
    }

    /// Budget-exact bulk union of `src` (node `f`'s set, moved out by the
    /// caller) into node `t`'s delta. Exhaustion triggers only when the
    /// budget is hit *and* a further new element exists, matching the
    /// reference solver's check-before-insert. Under provenance, each
    /// inserted tuple inherits `f`'s blame (or `f`'s havoc stamp).
    fn flow_from(&mut self, f: u32, src: &Pts, t: u32) {
        if src.is_empty() || self.exhausted {
            return;
        }
        let remaining = self.cfg.budget - self.stats.propagations;
        let (added, truncated) = if self.prov.is_some() {
            let mut log = std::mem::take(&mut self.scratch_log);
            log.clear();
            let r = pts::flow_into_limited_logged(
                src,
                &self.old[t as usize],
                &mut self.delta[t as usize],
                remaining,
                t,
                &mut log,
            );
            self.assign_blame(f, &log);
            self.scratch_log = log;
            r
        } else {
            pts::flow_into(
                src,
                &self.old[t as usize],
                &mut self.delta[t as usize],
                remaining,
            )
        };
        self.stats.propagations += added;
        if added > 0 {
            self.mark_dirty(t);
        }
        if truncated {
            self.exhausted = true;
        }
    }

    /// Assigns blame for the tuples `log` records as newly inserted by a
    /// flow out of node `f`: havoc stamps override, ordinary nodes pass
    /// their tuples' blame through. Log targets are never `f` itself
    /// (self-edges don't flow), so the row reads and writes are disjoint.
    fn assign_blame(&mut self, f: u32, log: &[pts::FlowLogEntry]) {
        let Some(p) = self.prov.as_mut() else {
            return;
        };
        let stamp = p.stamp[f as usize];
        for e in log {
            let mut bits = e.bits;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                let v = e.word * 64 + b;
                let tag = crate::blame::outflow(&p.blame[f as usize], stamp, v);
                p.record(e.node, v, tag);
            }
        }
    }

    fn insert(&mut self, node: u32, obj: u32, cause: BlameCause) {
        if self.exhausted {
            return;
        }
        let n = self.find(node);
        if self.old[n as usize].contains(obj) || self.delta[n as usize].contains(obj) {
            return;
        }
        // Check *before* inserting: a solve that needs exactly `budget`
        // insertions completes, and the recorded propagation count always
        // equals the number of facts actually inserted.
        if self.stats.propagations == self.cfg.budget {
            self.exhausted = true;
            return;
        }
        self.delta[n as usize].insert(obj);
        self.stats.propagations += 1;
        if let Some(p) = self.prov.as_mut() {
            let tag = p.intern(cause);
            p.record(n, obj, tag);
        }
        self.mark_dirty(n);
    }

    fn seed(&mut self, node: u32, o: AbsObj, cause: BlameCause) {
        let oid = self.obj(o);
        self.insert(node, oid, cause);
    }

    // ------------------------------------------------------------ naming

    fn place_node(&mut self, func: FuncId, place: &Place) -> u32 {
        match place {
            Place::Temp(t) => self.node(Node::Temp(func, t.0)),
            // Named and slot-resolved places both resolve by name; the
            // resolver agrees with the lowering's slot coordinates.
            p => {
                let name = p.as_var_sym().expect("non-temp place");
                self.named_node(func, name)
            }
        }
    }

    fn named_node(&mut self, func: FuncId, name: Sym) -> u32 {
        match self.resolver.resolve(self.prog, func, name) {
            // Specializer clones share their original's variable space:
            // nested closures keep referring to the original's locals, so
            // a clone's writes must reach them (sound, slightly merging
            // local-variable contexts while the heap stays per-clone).
            Binding::Local(f) => {
                let f = self.canon(f);
                self.node(Node::Local(f, name))
            }
            Binding::Global => self.node(Node::Prop(AbsObj::Global, name)),
        }
    }

    /// Follows `specialized_from` links to the original function.
    fn canon(&self, mut f: FuncId) -> FuncId {
        let mut fuel = 64;
        while let Some(orig) = self.prog.func(f).specialized_from {
            f = orig;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        f
    }

    // -------------------------------------------------------- propagation

    /// Seeds the entry function: its constraints queue for generation and
    /// its `this` is the global object. Shared by both solver drivers.
    pub(crate) fn seed_entry(&mut self) {
        if let Some(entry) = self.prog.entry() {
            self.enqueue_func(entry);
            let this_entry = self.node(Node::This(entry));
            self.seed(this_entry, AbsObj::Global, BlameCause::Base);
        }
    }

    pub(crate) fn run(mut self) -> PtaResult {
        self.seed_entry();
        // The analysis is flow-insensitive: generate constraints for all
        // reachable functions, then propagate to fixpoint, interleaved
        // because the call graph is discovered on the fly.
        while !self.exhausted {
            if let Some(f) = self.func_queue.pop_front() {
                self.gen_function(f);
                continue;
            }
            let Some(n) = self.dirty.pop_front() else {
                break;
            };
            self.on_dirty[n as usize] = false;
            // The queued id may have been merged away since it was pushed.
            let n = self.find(n);
            if self.delta[n as usize].is_empty() {
                continue;
            }
            self.process(n);
            if self.edges_since_scc >= self.cfg.scc_interval {
                self.edges_since_scc = 0;
                self.collapse_cycles();
            }
        }
        self.finish()
    }

    /// Drains node `n`'s delta: pushes it along every outgoing edge and
    /// applies every pending constraint to each newly arrived object.
    fn process(&mut self, n: u32) {
        // Commit delta → old *first*: constraint application below may
        // attach new pendings or edges to `n` itself, and those flow the
        // node's full current set on attachment — the committed delta must
        // be visible to them, and must not be re-flowed here afterwards.
        let d = self.delta[n as usize].take();
        self.old[n as usize].union_with(&d);
        // Index loops, not clones: `edges[n]` cannot change during the
        // flow loop (flows only touch sets), and pendings appended to
        // `pending[n]` during application were already applied to the
        // node's full set (old now includes `d`) by `attach`.
        let n_edges = self.edges[n as usize].len();
        for i in 0..n_edges {
            if self.exhausted {
                return;
            }
            let t0 = self.edges[n as usize][i];
            let t = self.find(t0);
            if t != n {
                self.flow_from(n, &d, t);
            }
        }
        let n_pending = self.pending[n as usize].len();
        for i in 0..n_pending {
            let p = self.pending[n as usize][i].clone();
            for oid in d.iter() {
                if self.exhausted {
                    return;
                }
                let o = self.objs[oid as usize].clone();
                self.apply_pending(&p, &o);
            }
        }
    }

    /// Tarjan pass over the canonical copy-edge graph; merges every
    /// multi-member component into its smallest-id node.
    pub(crate) fn collapse_cycles(&mut self) {
        self.stats.scc_passes += 1;
        let n = self.nodes.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n as u32 {
            let ci = self.find(i);
            if ci != i {
                continue;
            }
            let outs = self.edges[i as usize].clone();
            let a = &mut adj[i as usize];
            for t0 in outs {
                let t = self.find(t0);
                if t != i {
                    a.push(t);
                }
            }
        }
        let comps = scc::multi_member_sccs(&adj);
        if comps.is_empty() {
            return;
        }
        for comp in &comps {
            self.merge_component(comp);
        }
        // Rebuild edges canonical and re-dedupe: merging aliases pairs.
        self.edge_set.clear();
        for i in 0..n as u32 {
            if self.find(i) != i {
                continue;
            }
            let outs = std::mem::take(&mut self.edges[i as usize]);
            let mut canonical = Vec::with_capacity(outs.len());
            for t0 in outs {
                let t = self.find(t0);
                if t != i && self.edge_set.insert(edge_key(i, t)) {
                    canonical.push(t);
                }
            }
            self.edges[i as usize] = canonical;
        }
    }

    /// Union-find-merges a component into its smallest member. The merged
    /// `old` is the *intersection* of member `old`s — a fact is only
    /// "fully processed" for the representative if every member already
    /// pushed it along its edges and pendings; everything else lands in
    /// the representative's delta for (re)processing. No budget is
    /// refunded for deduplicated facts: `propagations` stays a monotone
    /// insertion counter.
    fn merge_component(&mut self, comp: &[u32]) {
        let rep = comp[0];
        let mut merged_old = self.old[rep as usize].take();
        let mut all = merged_old.clone();
        all.union_with(&self.delta[rep as usize]);
        for &m in &comp[1..] {
            merged_old.intersect_with(&self.old[m as usize]);
            all.union_with(&self.old[m as usize]);
            all.union_with(&self.delta[m as usize]);
        }
        let mut merged_delta = all;
        merged_delta.subtract(&merged_old);
        for &m in &comp[1..] {
            self.parent[m as usize] = rep;
            self.old[m as usize] = Pts::new();
            self.delta[m as usize] = Pts::new();
            let outs = std::mem::take(&mut self.edges[m as usize]);
            self.edges[rep as usize].extend(outs);
            let pend = std::mem::take(&mut self.pending[m as usize]);
            for p in pend {
                if !self.pending[rep as usize].contains(&p) {
                    self.pending[rep as usize].push(p);
                }
            }
            self.stats.nodes_merged += 1;
        }
        // Merged members share one canonical blame set: member rows drain
        // into the representative, conflicts keep the Ord-least cause, and
        // havoc stamps merge the same way — all order-independent, so the
        // merged blame doesn't depend on which member a tuple arrived at.
        if let Some(p) = self.prov.as_mut() {
            use std::collections::hash_map::Entry;
            for &m in &comp[1..] {
                let row = std::mem::take(&mut p.blame[m as usize]);
                for (v, t) in row {
                    match p.blame[rep as usize].entry(v) {
                        Entry::Occupied(mut e) => {
                            if p.tags[t as usize] < p.tags[*e.get() as usize] {
                                e.insert(t);
                            }
                        }
                        Entry::Vacant(e) => {
                            e.insert(t);
                        }
                    }
                }
                let ms = p.stamp[m as usize];
                let rs = p.stamp[rep as usize];
                if ms != INHERIT && (rs == INHERIT || p.tags[ms as usize] < p.tags[rs as usize]) {
                    p.stamp[rep as usize] = ms;
                }
            }
        }
        self.old[rep as usize] = merged_old;
        self.delta[rep as usize] = merged_delta;
        if !self.delta[rep as usize].is_empty() {
            self.mark_dirty(rep);
        }
    }

    pub(crate) fn finish(mut self) -> PtaResult {
        self.stats.nodes = self.nodes.len();
        self.stats.call_edges = self.call_graph.values().map(|s| s.len()).sum();
        // Fold unprocessed deltas into the reported sets and fully
        // compress the union-find so lookups are a single indirection.
        for i in 0..self.nodes.len() {
            let d = self.delta[i].take();
            self.old[i].union_with(&d);
        }
        for i in 0..self.nodes.len() as u32 {
            let r = self.find(i);
            self.parent[i as usize] = r;
        }
        let blame = self.prov.take().map(|p| BlameData {
            tags: p.tags,
            map: p.blame,
        });
        PtaResult {
            status: if self.exhausted {
                PtaStatus::BudgetExceeded
            } else {
                PtaStatus::Completed
            },
            stats: self.stats,
            pts: self.old,
            parent: self.parent,
            node_ids: self.node_ids.into_iter().collect(),
            objs: self.objs,
            call_graph: self.call_graph,
            blame,
        }
    }

    // -------------------------------------------------------- constraints

    fn attach(&mut self, node: u32, p: Pending) {
        let n = self.find(node);
        // Snapshot (old ∪ delta) up front: applying `p` may insert into
        // `n` itself, and those arrivals are handled by the dirty-queue
        // pass, not here.
        let existing: Vec<u32> = self.old[n as usize]
            .iter()
            .chain(self.delta[n as usize].iter())
            .collect();
        self.pending[n as usize].push(p.clone());
        for oid in existing {
            if self.exhausted {
                return;
            }
            let o = self.objs[oid as usize].clone();
            self.apply_pending(&p, &o);
        }
    }

    pub(crate) fn apply_pending(&mut self, p: &Pending, o: &AbsObj) {
        match p {
            Pending::Load { key, dst } => self.apply_load(o, *key, *dst),
            Pending::Store { key, src } => self.apply_store(o, *key, *src),
            Pending::Call {
                site,
                this,
                args,
                dst,
                is_new,
            } => self.apply_call(o, *site, *this, args, *dst, *is_new, false),
        }
    }

    fn apply_load(&mut self, o: &AbsObj, key: Option<Sym>, dst: u32) {
        let unknown = self.node(Node::UnknownProps(o.clone()));
        self.add_edge(unknown, dst);
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(f, dst);
            }
            None => {
                let star = self.node(Node::StarProps(o.clone()));
                self.add_edge(star, dst);
            }
        }
        // Loads fall through the prototype chain.
        let pv = self.proto_var(o);
        self.attach(pv, Pending::Load { key, dst });
    }

    fn apply_store(&mut self, o: &AbsObj, key: Option<Sym>, src: u32) {
        match key {
            Some(k) => {
                let f = self.node(Node::Prop(o.clone(), k));
                self.add_edge(src, f);
            }
            None => {
                let unknown = self.node(Node::UnknownProps(o.clone()));
                self.add_edge(src, unknown);
            }
        }
    }

    fn proto_var(&mut self, o: &AbsObj) -> u32 {
        // `ProtoOf(F)` objects chain to Object.prototype, which we fold
        // into Opaque; the chain itself comes from `new` wiring.
        self.node(Node::ProtoVar(o.clone()))
    }

    /// `injected` marks a call wired directly by an injected determinate-
    /// callee fact (rather than by closures flowing in): the tuples it
    /// introduces carry [`BlameCause::Injected`] so provenance reports
    /// can separate fact-driven facts from baseline ones.
    #[allow(clippy::too_many_arguments)]
    fn apply_call(
        &mut self,
        o: &AbsObj,
        site: StmtId,
        this: Option<u32>,
        args: &[u32],
        dst: u32,
        is_new: bool,
        injected: bool,
    ) {
        match o {
            AbsObj::Closure(f) => {
                let f = *f;
                self.call_graph.entry(site).or_default().insert(f);
                self.enqueue_func(f);
                // Borrow through the `'p` program reference — cloning the
                // callee (whole statement tree) per closure arrival was a
                // dominant cost of the naive solver.
                let prog = self.prog;
                let pf = self.canon(f);
                for (i, &p) in prog.func(f).params.iter().enumerate() {
                    if let Some(&a) = args.get(i) {
                        let pn = self.node(Node::Local(pf, p));
                        self.add_edge(a, pn);
                    }
                }
                let ret = self.node(Node::Ret(f));
                self.add_edge(ret, dst);
                if is_new {
                    // The freshly constructed object.
                    let cause = if injected {
                        BlameCause::Injected(site)
                    } else {
                        BlameCause::Base
                    };
                    let alloc = AbsObj::Alloc(site);
                    self.seed(dst, alloc.clone(), cause.clone());
                    let this_n = self.node(Node::This(f));
                    let alloc_id = self.obj(alloc.clone());
                    self.insert(this_n, alloc_id, cause);
                    // Its prototype chain parent is F.prototype's value.
                    let fproto = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
                    let pv = self.node(Node::ProtoVar(alloc));
                    self.add_edge(fproto, pv);
                } else if let Some(t) = this {
                    let this_n = self.node(Node::This(f));
                    self.add_edge(t, this_n);
                }
            }
            AbsObj::Opaque => {
                // Calling the unknown: arguments escape, the result is
                // unknown.
                let sink = self.node(Node::UnknownProps(AbsObj::Opaque));
                for &a in args {
                    self.add_edge(a, sink);
                }
                self.seed(dst, AbsObj::Opaque, BlameCause::Native(site));
            }
            _ => {
                // Calling a non-function abstract object: no effect (the
                // concrete execution would throw).
            }
        }
    }

    fn enqueue_func(&mut self, f: FuncId) {
        if self.processed_funcs.insert(f) {
            self.func_queue.push_back(f);
        }
    }

    // ----------------------------------------------------- per-statement

    /// The effective key of a property access: static keys pass through;
    /// dynamic keys resolve through an injected determinacy fact when one
    /// exists for the site.
    fn site_key(&mut self, site: StmtId, key: &PropKey) -> Option<Sym> {
        match key {
            PropKey::Static(k) => Some(*k),
            PropKey::Dynamic(_) => {
                let injected = self
                    .cfg
                    .facts
                    .as_ref()
                    .and_then(|f| f.prop_keys.get(&site))
                    .copied();
                if injected.is_some() {
                    self.stats.injected_keys += 1;
                }
                injected
            }
        }
    }

    /// The injected determinate callee of a call/new site, if any.
    fn site_callee(&self, site: StmtId) -> Option<FuncId> {
        self.cfg
            .facts
            .as_ref()
            .and_then(|f| f.callees.get(&site))
            .copied()
    }

    pub(crate) fn gen_function(&mut self, fid: FuncId) {
        if let Some(sums) = self.cfg.shortcuts.clone() {
            if let Some(region) = sums.regions.get(&fid) {
                self.apply_summary(fid, region);
                return;
            }
        }
        let prog = self.prog;
        let f = prog.func(fid);
        // Hoisted function declarations.
        for &(name, nested) in &f.decls.funcs {
            let n = self.named_node(fid, name);
            self.seed(n, AbsObj::Closure(nested), BlameCause::Base);
            self.init_closure(nested);
        }
        // `arguments`: coarse—an opaque array.
        if f.kind == FuncKind::Function {
            let cf = self.canon(fid);
            let n = self.node(Node::Local(cf, Sym::ARGUMENTS));
            self.seed(n, AbsObj::Opaque, BlameCause::Arguments(cf));
        }
        self.gen_block(fid, &f.body);
    }

    /// Applies a region summary in place of `fid`'s constraints: the
    /// hoisted-declaration prologue is kept (nested declarations are
    /// closure values other code may call), then the call-graph fragment
    /// and the summary tuples are applied in their deterministic sorted
    /// order. Every tuple goes through the ordinary budgeted [`Self::insert`],
    /// so exact-budget truncation and rollback behave exactly as they do
    /// mid-`gen_block`.
    fn apply_summary(&mut self, fid: FuncId, region: &crate::shortcut::RegionSummary) {
        let prog = self.prog;
        let f = prog.func(fid);
        for &(name, nested) in &f.decls.funcs {
            if self.exhausted {
                return;
            }
            let n = self.named_node(fid, name);
            self.seed(n, AbsObj::Closure(nested), BlameCause::Base);
            self.init_closure(nested);
        }
        // Keep the coarse `arguments` seeding: a nested (unsummarized)
        // closure may read the region's `arguments` through the resolver.
        if f.kind == FuncKind::Function {
            let cf = self.canon(fid);
            let n = self.node(Node::Local(cf, Sym::ARGUMENTS));
            self.seed(n, AbsObj::Opaque, BlameCause::Arguments(cf));
        }
        self.stats.shortcut_regions += 1;
        for &(site, callee) in &region.calls {
            if self.exhausted {
                return;
            }
            self.call_graph.entry(site).or_default().insert(callee);
            // The callee's closure record may only have been created
            // inside a summarized body; seeding it here is idempotent
            // and keeps the prototype chain wired.
            self.init_closure(callee);
            self.enqueue_func(callee);
        }
        for (node, obj) in &region.tuples {
            if self.exhausted {
                return;
            }
            let n = self.node(node.clone());
            if let AbsObj::Closure(g) = obj {
                self.init_closure(*g);
            }
            let oid = self.obj(obj.clone());
            self.insert(n, oid, BlameCause::Shortcut(fid));
            self.stats.shortcut_tuples += 1;
        }
    }

    fn init_closure(&mut self, f: FuncId) {
        let protos = self.node(Node::Prop(AbsObj::Closure(f), Sym::PROTOTYPE));
        self.seed(protos, AbsObj::ProtoOf(f), BlameCause::Base);
        let ctor = self.node(Node::Prop(AbsObj::ProtoOf(f), Sym::CONSTRUCTOR));
        self.seed(ctor, AbsObj::Closure(f), BlameCause::Base);
    }

    fn gen_block(&mut self, fid: FuncId, block: &[Stmt]) {
        // Temps index into `fid`'s own frame; named places resolve through
        // the resolver (which already skips eval-chunk pseudo-scopes).
        let wf = fid;
        for s in block {
            if self.exhausted {
                return;
            }
            match &s.kind {
                StmtKind::Const { .. } => {}
                StmtKind::Copy { dst, src } => {
                    let d = self.place_node(wf, dst);
                    let sn = self.place_node(wf, src);
                    self.add_edge(sn, d);
                }
                StmtKind::Closure { dst, func } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Closure(*func), BlameCause::Base);
                    self.init_closure(*func);
                    // On-the-fly call graph: the body is analyzed only
                    // once a call edge reaches the closure.
                }
                StmtKind::NewObject { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id), BlameCause::Base);
                }
                StmtKind::GetProp { dst, obj, key } => {
                    let d = self.place_node(wf, dst);
                    let o = self.place_node(wf, obj);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Load { key, dst: d });
                }
                StmtKind::SetProp { obj, key, val } => {
                    let o = self.place_node(wf, obj);
                    let v = self.place_node(wf, val);
                    let key = self.site_key(s.id, key);
                    self.attach(o, Pending::Store { key, src: v });
                }
                StmtKind::DeleteProp { .. } => {}
                StmtKind::BinOp { .. } | StmtKind::UnOp { .. } => {}
                StmtKind::Call {
                    dst,
                    callee,
                    this_arg,
                    args,
                } => {
                    let d = self.place_node(wf, dst);
                    let t = this_arg.as_ref().map(|p| self.place_node(wf, p));
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        // Determinate callee: wire the one target directly
                        // instead of waiting for closures to flow in.
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, t, &a, d, false, true);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: t,
                                args: a,
                                dst: d,
                                is_new: false,
                            },
                        );
                    }
                }
                StmtKind::New { dst, callee, args } => {
                    let d = self.place_node(wf, dst);
                    let a: Vec<u32> = args.iter().map(|p| self.place_node(wf, p)).collect();
                    if let Some(target) = self.site_callee(s.id) {
                        self.stats.injected_calls += 1;
                        self.init_closure(target);
                        self.apply_call(&AbsObj::Closure(target), s.id, None, &a, d, true, true);
                    } else {
                        let c = self.place_node(wf, callee);
                        self.attach(
                            c,
                            Pending::Call {
                                site: s.id,
                                this: None,
                                args: a,
                                dst: d,
                                is_new: true,
                            },
                        );
                    }
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    self.gen_block(fid, then_blk);
                    self.gen_block(fid, else_blk);
                }
                StmtKind::Loop {
                    cond_blk,
                    body,
                    update,
                    ..
                } => {
                    self.gen_block(fid, cond_blk);
                    self.gen_block(fid, body);
                    self.gen_block(fid, update);
                }
                StmtKind::Breakable { body } => self.gen_block(fid, body),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    self.gen_block(fid, block);
                    if let Some((name, b)) = catch {
                        let exc = self.node(Node::ExcPool);
                        let v = self.named_node(wf, *name);
                        self.add_edge(exc, v);
                        self.gen_block(fid, b);
                    }
                    if let Some(b) = finally {
                        self.gen_block(fid, b);
                    }
                }
                StmtKind::Return { arg } => {
                    if let Some(p) = arg {
                        let r = self.node(Node::Ret(wf_ret(self.prog, fid)));
                        let v = self.place_node(wf, p);
                        self.add_edge(v, r);
                    }
                }
                StmtKind::Break | StmtKind::Continue => {}
                StmtKind::Throw { arg } => {
                    let exc = self.node(Node::ExcPool);
                    let v = self.place_node(wf, arg);
                    self.add_edge(v, exc);
                }
                StmtKind::LoadThis { dst } => {
                    let d = self.place_node(wf, dst);
                    let t = self.node(Node::This(wf_ret(self.prog, fid)));
                    self.add_edge(t, d);
                }
                StmtKind::TypeofName { .. } => {}
                StmtKind::HasProp { .. } | StmtKind::InstanceOf { .. } => {}
                StmtKind::EnumProps { dst, .. } => {
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Alloc(s.id), BlameCause::Base);
                }
                StmtKind::Eval { dst, .. } => {
                    // Statically unanalyzable; the specializer's job is to
                    // remove these (§2.3).
                    let d = self.place_node(wf, dst);
                    self.seed(d, AbsObj::Opaque, BlameCause::Eval(s.id));
                }
            }
        }
    }
}

/// The function owning writes for name resolution (eval chunks resolve
/// through their parent).
pub(crate) fn effective_func(prog: &Program, f: FuncId) -> FuncId {
    let mut cur = f;
    loop {
        let func = prog.func(cur);
        if func.kind != FuncKind::EvalChunk {
            return cur;
        }
        match func.parent {
            Some(p) => cur = p,
            None => return cur,
        }
    }
}

/// `this`/`return` of an eval chunk belong to the enclosing function.
pub(crate) fn wf_ret(prog: &Program, f: FuncId) -> FuncId {
    effective_func(prog, f)
}
