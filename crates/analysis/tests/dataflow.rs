//! Behavior of the intraprocedural constant propagation: which facts it
//! derives, and — more importantly — which it must refuse to derive.

use mujs_analysis::{analyze_program, reaching_definitions, Def, StaticFacts, Var};
use mujs_ir::ir::{FuncId, Place, Program, StmtKind};
use mujs_ir::lower::lower_program;
use mujs_syntax::parse;

fn facts(src: &str) -> (Program, StaticFacts) {
    let prog = lower_program(&parse(src).unwrap());
    let f = analyze_program(&prog);
    (prog, f)
}

fn key_strings(prog: &Program, f: &StaticFacts) -> Vec<String> {
    let _ = prog;
    f.prop_keys.values().map(|k| k.to_string()).collect()
}

#[test]
fn derives_static_keys_from_literals_and_concat() {
    let (p, f) = facts("var o = {}; o[\"a\" + \"b\"] = 1; var x = o[\"ab\"];");
    let keys = key_strings(&p, &f);
    assert_eq!(keys.iter().filter(|k| *k == "ab").count(), 2, "{keys:?}");
}

#[test]
fn derives_keys_through_local_variables() {
    let (p, f) = facts("function g() { var k = \"len\"; var o = {}; o[k] = 1; return o; } g();");
    assert!(key_strings(&p, &f).contains(&"len".to_string()));
}

#[test]
fn refuses_keys_that_merge_differently() {
    let (p, f) = facts(
        "function g(c) { var k; if (c) { k = \"a\"; } else { k = \"b\"; } \
         var o = {}; o[k] = 1; } g(1);",
    );
    assert!(
        !key_strings(&p, &f).contains(&"a".to_string())
            && !key_strings(&p, &f).contains(&"b".to_string()),
        "diverging join must not produce a key fact"
    );
}

#[test]
fn agreement_across_branches_is_still_constant() {
    let (p, f) = facts(
        "function g(c) { var k; if (c) { k = \"same\"; } else { k = \"same\"; } \
         var o = {}; o[k] = 1; } g(1);",
    );
    assert!(key_strings(&p, &f).contains(&"same".to_string()));
}

#[test]
fn derives_callee_facts_for_hoisted_functions() {
    // The callee must be function-local: script-level declarations are
    // global-object properties, which the analysis rightly won't track.
    let (p, f) = facts("function m() { function t() { return 1; } return t(); } m();");
    let t = p
        .funcs
        .iter()
        .find(|x| x.name.is_some_and(|s| p.interner.resolve(s) == "t"))
        .unwrap()
        .id;
    assert!(f.callees.values().any(|&g| g == t), "{:?}", f.callees);
}

#[test]
fn script_level_callees_stay_unknown() {
    let (_, f) = facts("function t() { return 1; } t();");
    assert!(f.callees.is_empty(), "{:?}", f.callees);
}

#[test]
fn call_kills_closure_written_locals_only() {
    // `a` is written by the nested closure, `b` is not: after the call,
    // a key built from `b` survives, one from `a` does not.
    let (p, f) = facts(
        "function g(u) { var a = \"ka\"; var b = \"kb\"; \
         var w = function () { a = \"other\"; }; \
         u(); \
         var o = {}; o[a] = 1; o[b] = 2; } g(function(){});",
    );
    let keys = key_strings(&p, &f);
    assert!(keys.contains(&"kb".to_string()), "{keys:?}");
    assert!(!keys.contains(&"ka".to_string()), "{keys:?}");
}

#[test]
fn direct_eval_kills_all_locals() {
    let (p, f) =
        facts("function g() { var k = \"kk\"; eval(\"k = 'zz'\"); var o = {}; o[k] = 1; } g();");
    assert!(!key_strings(&p, &f).contains(&"kk".to_string()));
}

#[test]
fn catch_entry_havocs_protected_writes() {
    let (p, f) = facts(
        "function g(u) { var k = \"init\"; \
         try { k = \"body\"; u(); k = \"late\"; } \
         catch (e) { var o = {}; o[k] = 1; } } g(function(){});",
    );
    // Inside the catch, k may be any of init/body/late: no fact.
    let keys = key_strings(&p, &f);
    assert!(
        !keys.contains(&"init".to_string())
            && !keys.contains(&"body".to_string())
            && !keys.contains(&"late".to_string()),
        "{keys:?}"
    );
}

#[test]
fn break_through_finally_havocs_its_writes() {
    let (p, f) = facts(
        "function g(n) { var k = \"before\"; \
         while (n) { try { break; } finally { k = \"fin\"; } } \
         var o = {}; o[k] = 1; } g(1);",
    );
    // On the break path k was rewritten by the finally; joined with the
    // no-iteration path it is unknown.
    let keys = key_strings(&p, &f);
    assert!(
        !keys.contains(&"before".to_string()) && !keys.contains(&"fin".to_string()),
        "{keys:?}"
    );
}

#[test]
fn if_conditions_fold() {
    let (_, f) = facts("var x; if (1 < 2) { x = 1; } else { x = 2; }");
    assert_eq!(f.conds.values().copied().collect::<Vec<_>>(), vec![true]);
}

#[test]
fn loops_reach_a_sound_fixpoint() {
    let (p, f) = facts(
        "function g(n) { var k = \"k0\"; var o = {}; \
         for (var i = 0; i < n; i = i + 1) { o[k] = i; k = \"k1\"; } } g(3);",
    );
    // First iteration sees k0, later ones k1: no fact at the store.
    let keys = key_strings(&p, &f);
    assert!(!keys.contains(&"k0".to_string()) && !keys.contains(&"k1".to_string()));
    // And the loop-invariant parts still fold: `typeof` of a constant.
    let (_, f2) = facts(
        "function g(n) { var t; for (var i = 0; i < n; i = i + 1) { t = typeof \"s\"; } } g(2);",
    );
    let _ = f2;
}

#[test]
fn do_while_skips_first_test() {
    // do-while bodies execute at least once; the analysis must still
    // terminate and derive body facts.
    let (p, f) = facts("function g() { var o = {}; var i = 0; do { o[\"k\"] = i; i = i + 1; } while (i < 3); } g();");
    assert!(key_strings(&p, &f).contains(&"k".to_string()));
}

// ---------------------------------------------------------------------
// Reaching definitions.
// ---------------------------------------------------------------------

#[test]
fn reaching_defs_straight_line() {
    let prog = lower_program(&parse("function g() { var a = 1; a = 2; return a; }").unwrap());
    let g = prog
        .funcs
        .iter()
        .find(|x| x.name.is_some_and(|s| prog.interner.resolve(s) == "g"))
        .unwrap();
    let rd = reaching_definitions(g);
    // Find the slot of `a` and the statements writing/reading it.
    let a = prog.interner.get("a").unwrap();
    let slot = g.local_slot(a).unwrap();
    let mut writes = Vec::new();
    let mut ret = None;
    Program::walk_block(&g.body, &mut |s| match &s.kind {
        StmtKind::Const {
            dst: Place::Slot { slot: sl, .. },
            ..
        }
        | StmtKind::Copy {
            dst: Place::Slot { slot: sl, .. },
            ..
        } if *sl == slot => writes.push(s.id),
        StmtKind::Return { .. } => ret = Some(s.id),
        _ => {}
    });
    assert_eq!(writes.len(), 2);
    let at_ret = rd.unique(ret.unwrap(), Var::Local(slot)).unwrap();
    assert_eq!(
        at_ret,
        Def::Stmt(writes[1]),
        "only the second write reaches the return"
    );
}

#[test]
fn reaching_defs_merge_at_joins() {
    let prog =
        lower_program(&parse("function g(c) { var a = 1; if (c) { a = 2; } return a; }").unwrap());
    let g = prog
        .funcs
        .iter()
        .find(|x| x.name.is_some_and(|s| prog.interner.resolve(s) == "g"))
        .unwrap();
    let rd = reaching_definitions(g);
    let a = prog.interner.get("a").unwrap();
    let slot = g.local_slot(a).unwrap();
    let mut ret = None;
    Program::walk_block(&g.body, &mut |s| {
        if matches!(s.kind, StmtKind::Return { .. }) {
            ret = Some(s.id);
        }
    });
    let defs = rd.reaching(ret.unwrap(), Var::Local(slot)).unwrap();
    assert_eq!(
        defs.len(),
        2,
        "both the init and the branch write reach the return: {defs:?}"
    );
    assert!(rd.unique(ret.unwrap(), Var::Local(slot)).is_none());
}

#[test]
fn entry_def_reaches_unwritten_reads() {
    let prog = lower_program(&parse("function g(p) { return p; }").unwrap());
    let g = prog
        .funcs
        .iter()
        .find(|x| x.name.is_some_and(|s| prog.interner.resolve(s) == "g"))
        .unwrap();
    let rd = reaching_definitions(g);
    let p = prog.interner.get("p").unwrap();
    let slot = g.local_slot(p).unwrap();
    let mut ret = None;
    Program::walk_block(&g.body, &mut |s| {
        if matches!(s.kind, StmtKind::Return { .. }) {
            ret = Some(s.id);
        }
    });
    assert_eq!(rd.unique(ret.unwrap(), Var::Local(slot)), Some(Def::Entry));
}

#[test]
fn unused_funcid_param_is_exercised() {
    // Guard: FuncId ordering used by fact maps.
    assert!(FuncId(1) > FuncId(0));
}
