//! Determinism and semantics tests for the imprecision-provenance layer
//! (`PtaConfig::provenance`).
//!
//! The provenance contract: (1) blame is invisible unless asked for —
//! with provenance off nothing about a solve changes, and with it on the
//! *sets* still match the provenance-free solve; (2) blame exports are
//! byte-identical for every thread count, at fixpoint and at every
//! budget-truncation point (blame rides the epoch schedule, which is
//! thread-count-invariant at a fixed shard count); (3) every surviving
//! points-to tuple carries a cause, and the causes name the right
//! imprecision sources (⋆ smears, eval chunks, opaque natives, havoc).
//!
//! Like `tests/pta_equivalence.rs`, thread matrices honor
//! `PTA_EQ_THREADS` (comma-separated; default `{1, 2, 8}`) so CI can pin
//! the suite per thread count.

use mujs_pta::{solve, PtaConfig, PtaResult, PtaStatus};

fn thread_matrix() -> Vec<usize> {
    match std::env::var("PTA_EQ_THREADS") {
        Ok(s) => {
            let m: Vec<usize> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!m.is_empty(), "PTA_EQ_THREADS set but empty: {s:?}");
            m
        }
        Err(_) => vec![1, 2, 8],
    }
}

/// Wide + deep program (cross-shard traffic over many epochs) with a
/// ⋆-smearing dynamic access; same shape as the parallel solver tests.
fn big_src() -> String {
    let mut s = String::new();
    s.push_str("function id(x) { return x; }\n");
    for i in 0..60 {
        s.push_str(&format!(
            "function mk{i}() {{ return {{ tag: mk{i}, lift: id }}; }}\n"
        ));
        s.push_str(&format!("var v{i} = mk{i}();\n"));
    }
    for i in 0..60 {
        let j = (i + 23) % 60;
        s.push_str(&format!("v{i} = id(v{j});\n"));
        s.push_str(&format!("var f{i} = v{i}.tag;\n"));
        s.push_str(&format!("var w{i} = f{i}();\n"));
    }
    s.push_str("var key = somethingUnknown;\n");
    s.push_str("var smeared = v0[key];\n");
    s
}

fn lower(src: &str) -> mujs_ir::Program {
    let ast = mujs_syntax::parse(src).expect("source parses");
    mujs_ir::lower_program(&ast)
}

fn prov(cfg: PtaConfig) -> PtaConfig {
    PtaConfig {
        provenance: true,
        ..cfg
    }
}

fn unlimited() -> PtaConfig {
    PtaConfig {
        budget: u64::MAX,
        ..Default::default()
    }
}

/// Every tuple of every node's (canonical) points-to set must carry a
/// blame cause — provenance never loses a tuple.
fn assert_blame_covers_sets(r: &PtaResult, ctx: &str) {
    for (node, objs) in r.all_points_to() {
        let blamed: Vec<mujs_pta::AbsObj> = r.blame_of(&node).into_iter().map(|(o, _)| o).collect();
        assert_eq!(
            blamed, objs,
            "{ctx}: node {node:?} has tuples without blame (or vice versa)"
        );
    }
}

/// Provenance is a pure side channel: with it on, status, exports, and
/// call graph are identical to the provenance-free solve for every
/// thread count; with it off, no blame surface exists.
#[test]
fn provenance_does_not_change_results() {
    let prog = lower(&big_src());
    let plain = solve(&prog, &unlimited());
    assert_eq!(plain.status, PtaStatus::Completed);
    assert!(!plain.has_blame());
    assert!(plain.export_blame_json().is_none());
    assert!(plain.blame_histogram().is_empty());
    for threads in thread_matrix() {
        let r = solve(
            &prog,
            &prov(PtaConfig {
                threads,
                ..unlimited()
            }),
        );
        assert_eq!(r.status, PtaStatus::Completed, "threads={threads}");
        assert!(r.has_blame());
        assert_eq!(
            r.export_json(),
            plain.export_json(),
            "threads={threads}: provenance changed the points-to sets"
        );
    }
}

/// Blame exports are byte-identical for every thread count, under the
/// default, aggressive-collapse, and collapse-free configs — including
/// thread counts above the shard count.
#[test]
fn blame_exports_identical_for_every_thread_count() {
    let prog = lower(&big_src());
    let configs = [
        ("default", unlimited()),
        (
            "scc=1",
            PtaConfig {
                budget: u64::MAX,
                scc_interval: 1,
                ..Default::default()
            },
        ),
        (
            "collapse-free",
            PtaConfig {
                budget: u64::MAX,
                scc_interval: u64::MAX,
                ..Default::default()
            },
        ),
    ];
    let mut threads = thread_matrix();
    threads.extend([3, 32]);
    for (cname, cfg) in configs {
        let mut want: Option<String> = None;
        for &t in &threads {
            let r = solve(
                &prog,
                &prov(PtaConfig {
                    threads: t,
                    ..cfg.clone()
                }),
            );
            assert_eq!(r.status, PtaStatus::Completed, "{cname} threads={t}");
            assert_blame_covers_sets(&r, &format!("{cname} threads={t}"));
            let got = r.export_blame_json().expect("provenance was on");
            match &want {
                None => {
                    assert!(
                        got.contains("star-smear"),
                        "{cname}: the dynamic access never surfaced a ⋆ smear"
                    );
                    want = Some(got);
                }
                Some(w) => assert_eq!(
                    &got, w,
                    "{cname} threads={t}: blame export depends on the thread count"
                ),
            }
        }
    }
}

/// Budget-truncated provenance runs stay budget-exact and agree on both
/// the kept facts *and* their blame for every thread count — the
/// rollback drops blame entries exactly where it drops tuples.
#[test]
fn truncated_blame_is_budget_exact_and_deterministic() {
    let prog = lower(&big_src());
    let collapse_free = PtaConfig {
        budget: u64::MAX,
        scc_interval: u64::MAX,
        ..Default::default()
    };
    let full = solve(&prog, &prov(collapse_free.clone()));
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    assert!(needed > 1_000, "program too small: {needed}");
    for budget in [needed / 7, needed / 3, needed / 2 + 1, needed - 1] {
        let mut want: Option<(String, String)> = None;
        for threads in thread_matrix() {
            let r = solve(
                &prog,
                &prov(PtaConfig {
                    budget,
                    threads,
                    ..collapse_free.clone()
                }),
            );
            assert_eq!(
                r.status,
                PtaStatus::BudgetExceeded,
                "threads={threads} budget={budget}"
            );
            assert_eq!(
                r.stats.propagations, budget,
                "threads={threads} budget={budget}: truncation must be budget-exact"
            );
            assert_blame_covers_sets(&r, &format!("threads={threads} budget={budget}"));
            let got = (
                r.export_json(),
                r.export_blame_json().expect("provenance was on"),
            );
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(
                    &got, w,
                    "threads={threads} budget={budget}: truncated blame diverged"
                ),
            }
        }
    }
}

/// The shard count changes the partitioning, not the fixpoint: exports
/// (sets and call graph) are identical across shard counts, and blame
/// stays complete and deterministic per shard count.
#[test]
fn fixpoint_sets_invariant_across_shard_counts() {
    let prog = lower(&big_src());
    let want = solve(&prog, &unlimited()).export_json();
    for shards in [1, 4, 16, 64] {
        for &threads in &[2, 8] {
            let r = solve(
                &prog,
                &prov(PtaConfig {
                    threads,
                    shards,
                    ..unlimited()
                }),
            );
            assert_eq!(r.status, PtaStatus::Completed, "shards={shards}");
            assert_eq!(
                r.export_json(),
                want,
                "shards={shards} threads={threads}: fixpoint depends on shard count"
            );
            assert_blame_covers_sets(&r, &format!("shards={shards} threads={threads}"));
        }
        // Blame itself is pinned per shard count across thread counts.
        let a = solve(
            &prog,
            &prov(PtaConfig {
                threads: 2,
                shards,
                ..unlimited()
            }),
        )
        .export_blame_json();
        let b = solve(
            &prog,
            &prov(PtaConfig {
                threads: 8,
                shards,
                ..unlimited()
            }),
        )
        .export_blame_json();
        assert_eq!(a, b, "shards={shards}: blame depends on thread count");
    }
}

/// The cause taxonomy surfaces the right kinds on a program exercising
/// each imprecision source: precise seeds are `base`, the ⋆ join smears
/// a dynamic read, eval results blame the eval site, calling an opaque
/// value blames the native call site, and thrown values flowing into a
/// catch variable blame exception havoc.
#[test]
fn cause_kinds_name_the_imprecision_sources() {
    let src = r#"
        function f() { return 1; }
        var o = {};
        o.p = f;
        var key = somethingUnknown;
        var got = o[key];
        var e = eval("f");
        var r = e();
        try { throw f; } catch (caught) { var c = caught; }
    "#;
    let prog = lower(src);
    let r = solve(&prog, &prov(unlimited()));
    assert_eq!(r.status, PtaStatus::Completed);
    assert_blame_covers_sets(&r, "cause-kinds");
    let kinds: std::collections::BTreeSet<&'static str> =
        r.blame_histogram().iter().map(|(c, _)| c.kind()).collect();
    for want in ["base", "star-smear", "eval", "native", "exc-flow"] {
        assert!(kinds.contains(want), "missing cause kind {want}: {kinds:?}");
    }
    // The histogram counts the canonical relation and is deterministic.
    let again = solve(&prog, &prov(unlimited()));
    assert_eq!(r.blame_histogram(), again.blame_histogram());
    assert_eq!(r.export_blame_json(), again.export_blame_json());
}

/// SCC collapse preserves provenance: aggressive merging still yields a
/// complete, thread-count-invariant blame relation, and merged members
/// report one shared (canonical) blame set.
#[test]
fn collapsed_cycles_share_canonical_blame() {
    let src = r#"
        function mk() { return { tag: mk }; }
        var a = mk(); var b = mk(); var c = mk();
        for (var i = 0; i < 3; i = i + 1) { b = a; c = b; a = c; }
        var key = somethingUnknown;
        var sink = a[key];
    "#;
    let prog = lower(src);
    let cfg = PtaConfig {
        budget: u64::MAX,
        scc_interval: 1,
        ..Default::default()
    };
    let mut want: Option<String> = None;
    for threads in thread_matrix() {
        let r = solve(
            &prog,
            &prov(PtaConfig {
                threads,
                ..cfg.clone()
            }),
        );
        assert_eq!(r.status, PtaStatus::Completed, "threads={threads}");
        assert!(
            r.stats.nodes_merged > 0,
            "threads={threads}: the copy cycle never collapsed"
        );
        assert_blame_covers_sets(&r, &format!("collapse threads={threads}"));
        let got = r.export_blame_json().expect("provenance was on");
        match &want {
            None => want = Some(got),
            Some(w) => assert_eq!(&got, w, "threads={threads}: merged blame diverged"),
        }
    }
}
