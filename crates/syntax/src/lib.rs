//! # mujs-syntax
//!
//! Frontend for the muJS JavaScript subset used throughout the Dynamic
//! Determinacy Analysis reproduction: a lexer, a recursive-descent parser,
//! the AST, and a pretty-printer.
//!
//! The subset covers the features the paper's analysis targets —
//! first-class functions and closures, object/array literals, prototype
//! chains via `new`/`this`, dynamic property accesses, `typeof`, `for-in`,
//! `try`/`catch`/`throw`, and `eval` — while omitting features the paper's
//! own prototype also excluded (implicit `toString`/`valueOf` conversions,
//! getters/setters, labels, regular-expression literals).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), mujs_syntax::SyntaxError> {
//! let program = mujs_syntax::parse("var x = { f: 23 }; x.g = x.f + 19;")?;
//! let printed = mujs_syntax::pretty::print_program(&program);
//! assert!(printed.contains("x.g = x.f + 19;"));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use error::{SyntaxError, SyntaxErrorKind};
pub use parser::{
    parse, parse_expr, parse_spawned, with_parser_stack, MAX_NESTING, PARSER_STACK_BYTES,
};
pub use span::{SourceFile, Span};
