//! Cache-correctness contract of the stage pipeline: warm responses are
//! byte-identical to the cold runs that populated them, warm requests
//! recompute nothing, and any change to a stage's inputs — source,
//! config, seeds, budget, or an upstream artifact — misses.

use determinacy::{AnalysisConfig, CancelToken};
use mujs_serve::stage::{execute, Executed, StageRequest};
use mujs_serve::{CacheConfig, PipelineCounters, StageCache};
use serde_json::Value;

/// A program with a determinate dynamic property access, so fact
/// injection has something to inject.
const SRC: &str = "function get(o, k) { return o[k]; }\n\
                   var obj = { f: 23, g: 42 };\n\
                   var x = get(obj, 'f');\n\
                   var y = obj.g + x;";

fn req(src: &str) -> StageRequest {
    StageRequest {
        src: src.to_owned(),
        cfg: AnalysisConfig::default(),
        seeds: vec![AnalysisConfig::default().seed],
        pta_budget: Some(100_000),
        inject: true,
        spec_depth: None,
        shortcuts: false,
        pta_threads: 1,
        pta_shards: 0,
    }
}

fn run(r: &StageRequest, cache: &StageCache, counters: &PipelineCounters) -> Executed {
    execute(
        r,
        "completed",
        true,
        "job",
        cache,
        counters,
        &CancelToken::new(),
        &|_| {},
    )
}

fn bytes(report: &Value) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

#[test]
fn warm_response_is_byte_identical_and_recomputes_nothing() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    let r = req(SRC);

    let cold = run(&r, &cache, &counters);
    assert!(!cold.cached.parse && !cold.cached.facts);
    assert_eq!(cold.cached.pta, Some(false));
    let cold_snapshot = counters.to_value();
    let props = cold_snapshot
        .get("pta_propagations")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(props > 0.0, "cold run must actually solve");

    let warm = run(&r, &cache, &counters);
    assert!(warm.cached.parse && warm.cached.facts);
    assert_eq!(warm.cached.pta, Some(true));
    assert_eq!(
        bytes(&cold.report),
        bytes(&warm.report),
        "warm report must be byte-identical to the cold run"
    );
    assert_eq!(
        serde_json::to_string(&counters.to_value()).unwrap(),
        serde_json::to_string(&cold_snapshot).unwrap(),
        "a fully warm request must not move any pipeline counter"
    );
}

#[test]
fn thread_count_changes_keep_every_stage_warm() {
    // The parallel solver is deterministic, so `pta_threads` is excluded
    // from the stage keys: a service restarted with different
    // parallelism must serve the same artifacts without recomputing.
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    let cold = run(&req(SRC), &cache, &counters);
    assert_eq!(cold.cached.pta, Some(false));
    let cold_snapshot = serde_json::to_string(&counters.to_value()).unwrap();

    for threads in [2, 8, 0] {
        let mut r = req(SRC);
        r.pta_threads = threads;
        let warm = run(&r, &cache, &counters);
        assert_eq!(warm.keys, cold.keys, "threads={threads} must not move keys");
        assert!(warm.cached.parse && warm.cached.facts);
        assert_eq!(warm.cached.pta, Some(true), "threads={threads} must hit");
        assert_eq!(
            bytes(&cold.report),
            bytes(&warm.report),
            "threads={threads}: warm report must be byte-identical"
        );
    }
    assert_eq!(
        serde_json::to_string(&counters.to_value()).unwrap(),
        cold_snapshot,
        "no thread count may cause recomputation on a warm cache"
    );

    // And the reverse: a cache populated by a parallel solve serves a
    // sequential request warm with the same bytes.
    let cache2 = StageCache::new(CacheConfig::default());
    let counters2 = PipelineCounters::default();
    let mut par = req(SRC);
    par.pta_threads = 8;
    let cold_par = run(&par, &cache2, &counters2);
    let warm_seq = run(&req(SRC), &cache2, &counters2);
    assert_eq!(warm_seq.cached.pta, Some(true));
    assert_eq!(
        bytes(&cold_par.report),
        bytes(&warm_seq.report),
        "parallel and sequential solves must populate identical artifacts"
    );
}

#[test]
fn shortcut_requests_leave_shortcutless_bytes_untouched() {
    // Shortcut mode lives under its own summary key and pta-key fold:
    // interleaving shortcut requests on a shared cache must not move a
    // single byte of a shortcut-less request's warm response.
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    let plain = run(&req(SRC), &cache, &counters);
    assert!(
        plain.report.get("summary").is_none(),
        "no summary row without shortcut mode"
    );
    assert!(plain
        .report
        .get("stage_keys")
        .unwrap()
        .get("summary")
        .is_none());

    let mut sc = req(SRC);
    sc.shortcuts = true;
    let shortcut = run(&sc, &cache, &counters);
    assert!(shortcut.cached.parse && shortcut.cached.facts);
    assert_eq!(shortcut.cached.summary, Some(false));
    assert_eq!(
        shortcut.cached.pta,
        Some(false),
        "shortcut solves live under their own pta key"
    );

    let warm_plain = run(&req(SRC), &cache, &counters);
    assert_eq!(warm_plain.cached.pta, Some(true));
    assert_eq!(
        bytes(&plain.report),
        bytes(&warm_plain.report),
        "shortcut traffic must not perturb shortcut-less responses"
    );
    // And the shortcut request itself is warm-repeatable.
    let warm_shortcut = run(&sc, &cache, &counters);
    assert_eq!(warm_shortcut.cached.summary, Some(true));
    assert_eq!(warm_shortcut.cached.pta, Some(true));
    assert_eq!(bytes(&shortcut.report), bytes(&warm_shortcut.report));
}

#[test]
fn shard_count_changes_keep_every_stage_warm() {
    // `pta_shards`, like `pta_threads`, is an execution knob: fixpoints
    // are shard-invariant, so no shard count may miss a warm cache.
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    let cold = run(&req(SRC), &cache, &counters);
    let cold_snapshot = serde_json::to_string(&counters.to_value()).unwrap();
    for shards in [16usize, 32, 64] {
        let mut r = req(SRC);
        r.pta_shards = shards;
        let warm = run(&r, &cache, &counters);
        assert_eq!(warm.keys, cold.keys, "shards={shards} must not move keys");
        assert_eq!(warm.cached.pta, Some(true), "shards={shards} must hit");
        assert_eq!(
            bytes(&cold.report),
            bytes(&warm.report),
            "shards={shards}: warm report must be byte-identical"
        );
    }
    assert_eq!(
        serde_json::to_string(&counters.to_value()).unwrap(),
        cold_snapshot,
        "no shard count may cause recomputation on a warm cache"
    );
}

#[test]
fn source_changes_invalidate_every_stage() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    run(&req(SRC), &cache, &counters);

    let changed = req("var x = 1;");
    let e = run(&changed, &cache, &counters);
    assert!(!e.cached.parse && !e.cached.facts);
    assert_eq!(e.cached.pta, Some(false));
}

#[test]
fn config_changes_invalidate_facts_but_keep_the_parse_warm() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    run(&req(SRC), &cache, &counters);

    let mut r = req(SRC);
    r.cfg.max_facts = 77;
    let e = run(&r, &cache, &counters);
    assert!(e.cached.parse, "parse ignores the analysis config");
    assert!(!e.cached.facts, "facts key folds the effective config");
    assert_eq!(
        e.cached.pta,
        Some(false),
        "an injecting solve chains the facts key"
    );
}

#[test]
fn seed_changes_invalidate_the_facts_stage() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    run(&req(SRC), &cache, &counters);

    let mut r = req(SRC);
    r.seeds = vec![4242];
    let e = run(&r, &cache, &counters);
    assert!(e.cached.parse);
    assert!(!e.cached.facts);
}

#[test]
fn budget_changes_invalidate_only_the_pta_stage() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    run(&req(SRC), &cache, &counters);

    let mut r = req(SRC);
    r.pta_budget = Some(200_000);
    let e = run(&r, &cache, &counters);
    assert!(e.cached.parse && e.cached.facts);
    assert_eq!(e.cached.pta, Some(false));
}

#[test]
fn baseline_and_injected_solves_do_not_share_entries() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    run(&req(SRC), &cache, &counters); // injected solve

    let mut baseline = req(SRC);
    baseline.inject = false;
    let e = run(&baseline, &cache, &counters);
    assert_eq!(e.cached.pta, Some(false), "inject flag is part of the key");
    // And the baseline entry is itself cached now.
    let e2 = run(&baseline, &cache, &counters);
    assert_eq!(e2.cached.pta, Some(true));
}

#[test]
fn include_facts_only_gates_rendering_never_the_cache() {
    let cache = StageCache::new(CacheConfig::default());
    let counters = PipelineCounters::default();
    let r = req(SRC);
    let with_facts = run(&r, &cache, &counters);
    assert!(matches!(
        with_facts.report.get("fact_rows"),
        Some(Value::Array(_))
    ));

    // Same request, facts stripped: still fully warm.
    let without = execute(
        &r,
        "completed",
        false,
        "job",
        &cache,
        &counters,
        &CancelToken::new(),
        &|_| {},
    );
    assert!(without.cached.parse && without.cached.facts);
    assert_eq!(without.report.get("fact_rows"), Some(&Value::Null));
    // Everything except fact_rows matches the facts-bearing report.
    for field in ["name", "status", "seeds", "facts", "determinate", "pta"] {
        assert_eq!(
            with_facts.report.get(field),
            without.report.get(field),
            "field {field}"
        );
    }
}

#[test]
fn disk_persistence_serves_warm_across_daemon_restarts() {
    let dir = std::env::temp_dir().join("detserved-test-restart");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CacheConfig {
        capacity: 64,
        disk_dir: Some(dir.clone()),
    };
    let r = req(SRC);

    let counters1 = PipelineCounters::default();
    let cache1 = StageCache::new(cfg.clone());
    let cold = run(&r, &cache1, &counters1);
    drop(cache1);

    // "Restart": a fresh cache over the same directory.
    let counters2 = PipelineCounters::default();
    let cache2 = StageCache::new(cfg);
    let warm = run(&r, &cache2, &counters2);
    assert!(warm.cached.parse && warm.cached.facts);
    assert_eq!(warm.cached.pta, Some(true));
    assert_eq!(bytes(&cold.report), bytes(&warm.report));
    assert_eq!(
        counters2
            .to_value()
            .get("pta_propagations")
            .unwrap()
            .as_f64(),
        Some(0.0),
        "restored entries must skip the solver entirely"
    );
    std::fs::remove_dir_all(&dir).ok();
}
