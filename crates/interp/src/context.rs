//! Calling contexts: interned chains of `(call site, occurrence)` pairs.
//!
//! The paper qualifies every determinacy fact "with a complete call stack
//! reaching all the way back to the program's entrypoint" (§2.1), and its
//! `24₀` notation ("the first time execution reaches line 24", §2.2) adds a
//! per-activation occurrence index to each frame. A [`CtxId`] names one
//! such chain; chains are hash-consed in a [`ContextTable`] so they can be
//! compared and stored cheaply, shared between the concrete machine (which
//! records observations for soundness checking) and the instrumented
//! machine (which records facts).

use mujs_ir::{Program, StmtId};
use mujs_syntax::span::SourceFile;
use std::collections::HashMap;

/// An interned calling context. [`CtxId::ROOT`] is the program entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The entrypoint context (empty call string).
    pub const ROOT: CtxId = CtxId(0);
}

#[derive(Debug, Clone, Copy)]
struct CtxNode {
    parent: CtxId,
    site: StmtId,
    occurrence: u32,
}

/// Hash-consing table for calling contexts.
#[derive(Debug, Default)]
pub struct ContextTable {
    nodes: Vec<Option<CtxNode>>,
    intern: HashMap<(CtxId, StmtId, u32), CtxId>,
}

impl ContextTable {
    /// Creates a table containing only the root context.
    pub fn new() -> Self {
        ContextTable {
            nodes: vec![None],
            intern: HashMap::new(),
        }
    }

    /// Interns `parent → (site, occurrence)`.
    pub fn child(&mut self, parent: CtxId, site: StmtId, occurrence: u32) -> CtxId {
        if let Some(&id) = self.intern.get(&(parent, site, occurrence)) {
            return id;
        }
        let id = CtxId(self.nodes.len() as u32);
        self.nodes.push(Some(CtxNode {
            parent,
            site,
            occurrence,
        }));
        self.intern.insert((parent, site, occurrence), id);
        id
    }

    /// The parent context, or `None` for the root.
    pub fn parent(&self, ctx: CtxId) -> Option<CtxId> {
        self.nodes[ctx.0 as usize].map(|n| n.parent)
    }

    /// The frames of `ctx` from the entrypoint outward:
    /// `[(site, occurrence), ...]`.
    pub fn frames(&self, ctx: CtxId) -> Vec<(StmtId, u32)> {
        let mut out = Vec::new();
        let mut cur = ctx;
        while let Some(node) = self.nodes[cur.0 as usize] {
            out.push((node.site, node.occurrence));
            cur = node.parent;
        }
        out.reverse();
        out
    }

    /// Depth of the call string (root = 0).
    pub fn depth(&self, ctx: CtxId) -> usize {
        let mut d = 0;
        let mut cur = ctx;
        while let Some(node) = self.nodes[cur.0 as usize] {
            d += 1;
            cur = node.parent;
        }
        d
    }

    /// Renders `ctx` in the paper's `16→4`-ish notation using source line
    /// numbers; occurrence indices beyond the first are shown as
    /// subscript-style suffixes (`24₀` prints as `24_0` when the same site
    /// recurs).
    pub fn describe(&self, ctx: CtxId, prog: &Program, sf: &SourceFile) -> String {
        let frames = self.frames(ctx);
        if frames.is_empty() {
            return "⊤".to_owned();
        }
        let parts: Vec<String> = frames
            .iter()
            .map(|(site, occ)| {
                let line = sf.line_col(prog.span_of(*site)).line;
                if *occ == 0 {
                    format!("{line}")
                } else {
                    format!("{line}_{occ}")
                }
            })
            .collect();
        parts.join("→")
    }

    /// Number of interned contexts (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Truncates a context to its innermost `k` frames, re-interning the
    /// suffix. Used by the specializer's bounded context sensitivity
    /// ("up to four levels of calling context", §5.1).
    pub fn suffix(&mut self, ctx: CtxId, k: usize) -> CtxId {
        let frames = self.frames(ctx);
        let start = frames.len().saturating_sub(k);
        let mut cur = CtxId::ROOT;
        for (site, occ) in &frames[start..] {
            cur = self.child(cur, *site, *occ);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = ContextTable::new();
        let a = t.child(CtxId::ROOT, StmtId(5), 0);
        let b = t.child(CtxId::ROOT, StmtId(5), 0);
        let c = t.child(CtxId::ROOT, StmtId(5), 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn frames_are_outermost_first() {
        let mut t = ContextTable::new();
        let a = t.child(CtxId::ROOT, StmtId(1), 0);
        let b = t.child(a, StmtId(2), 3);
        assert_eq!(t.frames(b), vec![(StmtId(1), 0), (StmtId(2), 3)]);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.parent(CtxId::ROOT), None);
    }

    #[test]
    fn suffix_truncates_outer_frames() {
        let mut t = ContextTable::new();
        let a = t.child(CtxId::ROOT, StmtId(1), 0);
        let b = t.child(a, StmtId(2), 0);
        let c = t.child(b, StmtId(3), 0);
        let s = t.suffix(c, 2);
        assert_eq!(t.frames(s), vec![(StmtId(2), 0), (StmtId(3), 0)]);
        // Suffix longer than the chain is the chain itself.
        assert_eq!(t.suffix(c, 10), c);
    }
}
