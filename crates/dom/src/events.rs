//! Event listeners and the post-load dispatch plan.
//!
//! The paper's driver model (§4): the main script runs to completion, then
//! event handlers fire. Handlers are opaque tokens of type `H` supplied by
//! the embedding interpreter (a closure handle). Since "DOM events can fire
//! in any order", the instrumented interpreter performs a heap flush on
//! every handler entry; that policy lives in the interpreter — this module
//! only keeps the registry and ordering.

use crate::document::NodeId;

/// Where an event listener is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventTarget {
    /// The `window` object.
    Window,
    /// The `document` object.
    Document,
    /// A specific element.
    Element(NodeId),
}

/// A registered listener.
#[derive(Debug, Clone)]
pub struct Listener<H> {
    /// Where it listens.
    pub target: EventTarget,
    /// The event type (`"load"`, `"click"`, ...).
    pub event_type: String,
    /// The embedding's handler token (e.g. a closure handle).
    pub handler: H,
}

/// Registry of event listeners in registration order.
#[derive(Debug, Clone)]
pub struct EventRegistry<H> {
    listeners: Vec<Listener<H>>,
}

impl<H> Default for EventRegistry<H> {
    fn default() -> Self {
        EventRegistry {
            listeners: Vec::new(),
        }
    }
}

impl<H: Clone> EventRegistry<H> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a listener (`addEventListener`).
    pub fn add(&mut self, target: EventTarget, event_type: &str, handler: H) {
        self.listeners.push(Listener {
            target,
            event_type: event_type.to_owned(),
            handler,
        });
    }

    /// Removes all listeners for `(target, event_type)`.
    pub fn remove(&mut self, target: EventTarget, event_type: &str) {
        self.listeners
            .retain(|l| !(l.target == target && l.event_type == event_type));
    }

    /// Handlers that fire for an event on `target`, in registration order.
    /// Events on elements do not bubble in this model (the paper's
    /// treatment of handlers is coarse enough that bubbling adds nothing).
    pub fn handlers_for(&self, target: EventTarget, event_type: &str) -> Vec<H> {
        self.listeners
            .iter()
            .filter(|l| l.target == target && l.event_type == event_type)
            .map(|l| l.handler.clone())
            .collect()
    }

    /// All listeners, in registration order.
    pub fn all(&self) -> &[Listener<H>] {
        &self.listeners
    }

    /// Number of registered listeners.
    pub fn len(&self) -> usize {
        self.listeners.len()
    }

    /// Whether no listeners are registered.
    pub fn is_empty(&self) -> bool {
        self.listeners.is_empty()
    }
}

/// One step of a scripted post-load event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStep {
    /// The event target, named by element id or as window/document.
    pub target: EventTargetSel,
    /// The event type to dispatch.
    pub event_type: String,
}

/// Selects an [`EventTarget`] symbolically (resolved against the document
/// at dispatch time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventTargetSel {
    /// `window`.
    Window,
    /// `document`.
    Document,
    /// The element with the given id.
    ById(String),
}

/// A dispatch plan: `load` on `window` first (implicit), then the given
/// steps.
///
/// # Examples
///
/// ```
/// use mujs_dom::events::{EventPlan, EventStep, EventTargetSel};
/// let plan = EventPlan::new()
///     .click("button1")
///     .event(EventTargetSel::Document, "ready");
/// assert_eq!(plan.steps().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventPlan {
    steps: Vec<EventStep>,
}

impl EventPlan {
    /// An empty plan (only the implicit `load` fires).
    pub fn new() -> Self {
        EventPlan::default()
    }

    /// Appends an arbitrary event.
    pub fn event(mut self, target: EventTargetSel, event_type: &str) -> Self {
        self.steps.push(EventStep {
            target,
            event_type: event_type.to_owned(),
        });
        self
    }

    /// Appends a click on the element with the given id.
    pub fn click(self, element_id: &str) -> Self {
        self.event(EventTargetSel::ById(element_id.to_owned()), "click")
    }

    /// The scripted steps (excluding the implicit `load`).
    pub fn steps(&self) -> &[EventStep] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handlers_filter_by_target_and_type() {
        let mut reg: EventRegistry<u32> = EventRegistry::new();
        reg.add(EventTarget::Window, "load", 1);
        reg.add(EventTarget::Element(NodeId(3)), "click", 2);
        reg.add(EventTarget::Element(NodeId(3)), "click", 3);
        reg.add(EventTarget::Element(NodeId(4)), "click", 4);
        assert_eq!(
            reg.handlers_for(EventTarget::Element(NodeId(3)), "click"),
            vec![2, 3]
        );
        assert_eq!(reg.handlers_for(EventTarget::Window, "load"), vec![1]);
        assert!(reg.handlers_for(EventTarget::Document, "load").is_empty());
    }

    #[test]
    fn remove_clears_matching_listeners() {
        let mut reg: EventRegistry<u32> = EventRegistry::new();
        reg.add(EventTarget::Window, "load", 1);
        reg.add(EventTarget::Window, "load", 2);
        reg.add(EventTarget::Window, "resize", 3);
        reg.remove(EventTarget::Window, "load");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.handlers_for(EventTarget::Window, "resize"), vec![3]);
    }
}
