//! Statement execution of the instrumented semantics — the rules of
//! Figure 9 extended to the full muJS subset, including the merge-point
//! treatment of unstructured control flow (§4).

use crate::config::AnalysisStatus;
use crate::det::{DValue, Det};
use crate::facts::{FactKind, TripFact};
use crate::machine::{DErr, DFlow, DFrame, DMachine, DObservation};
use mujs_interp::coerce::{self, CoerceError};
use mujs_interp::context::CtxId;
use mujs_interp::machine::lit_value;
use mujs_interp::{ObjClass, ObjId, ScopeId, Value};
use mujs_ir::ir::{FuncKind, Place, PropKey, StmtKind};
use mujs_ir::{FuncId, Stmt, StmtId, Sym, TempId};
use std::rc::Rc;

impl DMachine<'_> {
    /// Runs the entry script; returns how the analysis ended.
    pub fn run(&mut self) -> AnalysisStatus {
        match self.run_script() {
            Ok(()) => AnalysisStatus::Completed,
            Err(e) => Self::status_of(e),
        }
    }

    pub(crate) fn status_of(e: DErr) -> AnalysisStatus {
        match e {
            DErr::Thrown(..) => AnalysisStatus::UncaughtException,
            DErr::Stop(s) => s,
            // A counterfactual abort can only escape if the machine has a
            // bug; surface it loudly in debug builds.
            DErr::CfAbort => {
                debug_assert!(false, "CfAbort escaped its counterfactual");
                AnalysisStatus::Completed
            }
        }
    }

    pub(crate) fn run_script(&mut self) -> Result<(), DErr> {
        let entry = self.prog.entry().expect("program has an entry");
        let f = self.prog.func_rc(entry);
        for &v in &f.decls.vars {
            if self.get_raw_s(self.global, v).is_none() {
                self.write_prop_s(self.global, v, DValue::undef());
            }
        }
        for &(name, fid) in &f.decls.funcs {
            let clos = self.make_closure(fid, None);
            self.write_prop_s(self.global, name, DValue::det(Value::Object(clos)));
        }
        let mut frame = self.fresh_frame(
            entry,
            None,
            None,
            DValue::det(Value::Object(self.global)),
            CtxId::ROOT,
            f.n_temps,
        );
        match self.exec_block(&mut frame, &f.body)? {
            DFlow::Normal => Ok(()),
            _ => Err(DErr::Stop(AnalysisStatus::UncaughtException)),
        }
    }

    pub(crate) fn fresh_frame(
        &mut self,
        func: FuncId,
        scope: Option<ScopeId>,
        activation: Option<ScopeId>,
        this_val: DValue,
        ctx: CtxId,
        n_temps: u32,
    ) -> DFrame {
        let serial = self.next_frame_serial;
        self.next_frame_serial += 1;
        DFrame {
            func,
            scope,
            activation,
            temps: vec![DValue::undef(); n_temps as usize],
            this_val,
            ctx,
            occurrences: vec![0; self.prog.stmt_count_of(func) as usize],
            serial,
        }
    }

    /// Creates a closure with its `.prototype`, all determinate.
    pub fn make_closure(&mut self, func: FuncId, env: Option<ScopeId>) -> ObjId {
        self.mark_captured(env);
        let clos = self.alloc(
            ObjClass::Function { func, env },
            Some(self.protos.function),
            Det::D,
        );
        let proto = self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D);
        self.write_prop_s(proto, Sym::CONSTRUCTOR, DValue::det(Value::Object(clos)));
        self.write_prop_s(clos, Sym::PROTOTYPE, DValue::det(Value::Object(proto)));
        let f = self.prog.func(func);
        let nparams = f.params.len() as f64;
        let name = f.name;
        self.write_prop_s(clos, Sym::LENGTH, DValue::det(Value::Num(nparams)));
        if let Some(n) = name {
            let text = self.prog.interner.name(n).clone();
            self.write_prop_s(clos, Sym::NAME, DValue::det(Value::Str(text)));
        }
        clos
    }

    // ------------------------------------------------------------- places

    fn ref_error(&mut self, name: Sym) -> DErr {
        let name = self.prog.interner.resolve(name).to_owned();
        self.throw_error(
            "ReferenceError",
            &format!("{name} is not defined"),
            // Other executions may have created the global (we only know
            // that if no flush has happened).
            self.is_open(self.global),
        )
    }

    pub(crate) fn read_place(&mut self, frame: &DFrame, place: &Place) -> Result<DValue, DErr> {
        match place {
            Place::Temp(TempId(i)) => Ok(frame.temps[*i as usize].clone()),
            Place::Named(name) => match self.lookup_var(frame.scope, *name) {
                Some(v) => Ok(v),
                None => Err(self.ref_error(*name)),
            },
            Place::Slot { hops, slot, sym } => match self.hop_scope(frame, *hops) {
                Some(sid) => Ok(self.read_slot(sid, *slot, *sym)),
                // Defensive: code running without an activation (shouldn't
                // happen for slot-resolved bodies) falls back to by-name.
                None => match self.lookup_var(frame.scope, *sym) {
                    Some(v) => Ok(v),
                    None => Err(self.ref_error(*sym)),
                },
            },
        }
    }

    pub(crate) fn write_place(&mut self, frame: &mut DFrame, place: &Place, dv: DValue) {
        match place {
            Place::Temp(TempId(i)) => self.write_temp(frame, *i, dv),
            Place::Named(name) => self.assign_var(frame.scope, *name, dv),
            Place::Slot { hops, slot, sym } => match self.hop_scope(frame, *hops) {
                Some(sid) => self.write_slot(sid, *slot, dv),
                None => self.assign_var(frame.scope, *sym, dv),
            },
        }
    }

    fn define(&mut self, frame: &mut DFrame, point: StmtId, dst: &Place, dv: DValue) {
        if self.cfg.collect_facts {
            let class = match &dv.v {
                Value::Object(id) => Some(self.obj(*id).class.clone()),
                _ => None,
            };
            self.facts
                .record_with_class(FactKind::Define, point, frame.ctx, &dv, class.as_ref());
        }
        if self.cfg.record_observations
            && self.cf_depth == 0
            && self.observations.len() < self.cfg.max_observations
        {
            self.observations.push(DObservation {
                point,
                ctx: frame.ctx,
                value: dv.clone(),
            });
        }
        self.write_place(frame, dst, dv);
    }

    fn coerce_err(&mut self, _e: CoerceError, indet: bool) -> DErr {
        self.throw_error("TypeError", "cannot convert object to primitive", indet)
    }

    fn key_of(&mut self, frame: &DFrame, key: &PropKey) -> Result<(Sym, Det), DErr> {
        match key {
            PropKey::Static(name) => Ok((*name, Det::D)),
            PropKey::Dynamic(p) => {
                let kv = self.read_place(frame, p)?;
                let s = coerce::to_string(&kv.v).map_err(|e| self.coerce_err(e, kv.d == Det::I))?;
                Ok((self.prog.interner.intern_rc(&s), kv.d))
            }
        }
    }

    /// Records an occurrence-qualified PropKey fact for dynamic property
    /// accesses (distinct facts per unrolled-loop iteration).
    fn record_key_fact(
        &mut self,
        frame: &mut DFrame,
        point: StmtId,
        key: &PropKey,
        k: Sym,
        kd: Det,
    ) {
        if matches!(key, PropKey::Dynamic(_)) {
            let ctx = self.enter_site(frame, point);
            if self.cfg.collect_facts {
                let dv = DValue {
                    v: Value::Str(self.prog.interner.name(k).clone()),
                    d: kd,
                };
                self.facts.record(FactKind::PropKey, point, ctx, &dv);
            }
        }
    }

    fn enter_site(&mut self, frame: &mut DFrame, site: StmtId) -> CtxId {
        let local = self.prog.local_of(site) as usize;
        if local >= frame.occurrences.len() {
            // The function grew after this frame was created (possible only
            // through exotic re-entrancy); keep counting correctly.
            frame.occurrences.resize(local + 1, 0);
        }
        let this_occ = frame.occurrences[local];
        frame.occurrences[local] += 1;
        self.ctxs.child(frame.ctx, site, this_occ)
    }

    // ---------------------------------------------------------- execution

    pub(crate) fn exec_block(&mut self, frame: &mut DFrame, block: &[Stmt]) -> Result<DFlow, DErr> {
        let mut i = 0;
        while i < block.len() {
            let r = self.exec_stmt(frame, &block[i]);
            i += 1;
            match r {
                Ok(DFlow::Normal) => {}
                Ok(flow) => {
                    // An abrupt completion under indeterminate control
                    // skips the suffix in this run only; account for other
                    // executions by running it counterfactually.
                    if flow.indet_ctl() && i < block.len() {
                        self.counterfactual_blocks(frame, &[&block[i..]])?;
                    }
                    return Ok(flow);
                }
                Err(DErr::Thrown(v, true)) => {
                    if i < block.len() {
                        self.counterfactual_blocks(frame, &[&block[i..]])?;
                    }
                    return Err(DErr::Thrown(v, true));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(DFlow::Normal)
    }

    fn exec_stmt(&mut self, frame: &mut DFrame, stmt: &Stmt) -> Result<DFlow, DErr> {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            return Err(DErr::Stop(AnalysisStatus::StepLimit));
        }
        if self.steps.is_multiple_of(self.cfg.poll_interval.max(1)) {
            self.poll_budgets()?;
        }
        // Under fault injection, poll every statement so injected faults
        // surface at a deterministic point regardless of poll_interval.
        #[cfg(feature = "fault-inject")]
        if self.faults.is_some() {
            self.poll_budgets()?;
        }
        if self.cf_depth > 0 {
            self.cf_steps += 1;
            if self.cf_steps > self.cfg.cf_step_budget {
                return Err(DErr::CfAbort);
            }
        }
        let id = stmt.id;
        match &stmt.kind {
            StmtKind::Const { dst, lit } => {
                self.define(frame, id, dst, DValue::det(lit_value(lit)));
            }
            StmtKind::Copy { dst, src } => {
                let v = self.read_place(frame, src)?;
                self.define(frame, id, dst, v);
            }
            StmtKind::Closure { dst, func } => {
                let clos = self.make_closure(*func, frame.scope);
                self.define(frame, id, dst, DValue::det(Value::Object(clos)));
            }
            StmtKind::NewObject { dst, is_array } => {
                let o = if *is_array {
                    let a = self.alloc(ObjClass::Array, Some(self.protos.array), Det::D);
                    self.write_prop_s(a, Sym::LENGTH, DValue::det(Value::Num(0.0)));
                    a
                } else {
                    self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D)
                };
                self.define(frame, id, dst, DValue::det(Value::Object(o)));
            }
            StmtKind::GetProp { dst, obj, key } => {
                let o = self.read_place(frame, obj)?;
                let (k, kd) = self.key_of(frame, key)?;
                self.record_key_fact(frame, id, key, k, kd);
                let v = self.get_prop_d(&o, k, kd)?;
                self.define(frame, id, dst, v);
            }
            StmtKind::SetProp { obj, key, val } => {
                let o = self.read_place(frame, obj)?;
                let (k, kd) = self.key_of(frame, key)?;
                self.record_key_fact(frame, id, key, k, kd);
                let v = self.read_place(frame, val)?;
                self.set_prop_d(&o, k, kd, v)?;
            }
            StmtKind::DeleteProp { dst, obj, key } => {
                let o = self.read_place(frame, obj)?;
                let (k, kd) = self.key_of(frame, key)?;
                self.record_key_fact(frame, id, key, k, kd);
                if let Value::Object(oid) = o.v {
                    self.delete_prop_s(oid, k);
                    if kd == Det::I {
                        self.open_record(oid);
                    }
                    if o.d == Det::I {
                        self.flush_heap()?;
                    }
                }
                self.define(
                    frame,
                    id,
                    dst,
                    DValue {
                        v: Value::Bool(true),
                        d: o.d.join(kd),
                    },
                );
            }
            StmtKind::BinOp { dst, op, lhs, rhs } => {
                let a = self.read_place(frame, lhs)?;
                let b = self.read_place(frame, rhs)?;
                let d = a.d.join(b.d);
                let v =
                    coerce::bin_op(*op, &a.v, &b.v).map_err(|e| self.coerce_err(e, d == Det::I))?;
                self.define(frame, id, dst, DValue { v, d });
            }
            StmtKind::UnOp { dst, op, src } => {
                let a = self.read_place(frame, src)?;
                let ov = self.typeof_override(&a.v);
                let v =
                    coerce::un_op(*op, &a.v, ov).map_err(|e| self.coerce_err(e, a.d == Det::I))?;
                self.define(frame, id, dst, DValue { v, d: a.d });
            }
            StmtKind::Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                let f = self.read_place(frame, callee)?;
                if self.cfg.collect_facts {
                    let class = match &f.v {
                        Value::Object(o) => Some(self.obj(*o).class.clone()),
                        _ => None,
                    };
                    self.facts.record_with_class(
                        FactKind::Callee,
                        id,
                        frame.ctx,
                        &f,
                        class.as_ref(),
                    );
                }
                let this = match this_arg {
                    Some(p) => self.read_place(frame, p)?,
                    None => DValue::det(Value::Object(self.global)),
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.read_place(frame, a)?);
                }
                let ctx = self.enter_site(frame, id);
                let v = self.call_value_d(&f, this, &argv, ctx)?;
                self.define(frame, id, dst, v);
            }
            StmtKind::New { dst, callee, args } => {
                let f = self.read_place(frame, callee)?;
                if self.cfg.collect_facts {
                    let class = match &f.v {
                        Value::Object(o) => Some(self.obj(*o).class.clone()),
                        _ => None,
                    };
                    self.facts.record_with_class(
                        FactKind::Callee,
                        id,
                        frame.ctx,
                        &f,
                        class.as_ref(),
                    );
                }
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.read_place(frame, a)?);
                }
                let ctx = self.enter_site(frame, id);
                let v = self.construct_d(&f, &argv, ctx)?;
                self.define(frame, id, dst, v);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => return self.exec_if(frame, stmt.id, cond, then_blk, else_blk),
            StmtKind::Loop {
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
            } => {
                return self.exec_loop(
                    frame,
                    stmt.id,
                    cond_blk,
                    cond,
                    body,
                    update,
                    *check_cond_first,
                )
            }
            StmtKind::Breakable { body } => {
                return Ok(match self.exec_block(frame, body)? {
                    DFlow::Normal | DFlow::Break(_) => DFlow::Normal,
                    other => other,
                });
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => return self.exec_try(frame, block, catch, finally),
            StmtKind::Return { arg } => {
                let v = match arg {
                    Some(p) => self.read_place(frame, p)?,
                    None => DValue::undef(),
                };
                return Ok(DFlow::Return(v, false));
            }
            StmtKind::Break => return Ok(DFlow::Break(false)),
            StmtKind::Continue => return Ok(DFlow::Continue(false)),
            StmtKind::Throw { arg } => {
                let v = self.read_place(frame, arg)?;
                return Err(DErr::Thrown(v, false));
            }
            StmtKind::LoadThis { dst } => {
                let v = frame.this_val.clone();
                self.define(frame, id, dst, v);
            }
            StmtKind::TypeofName { dst, name } => {
                let v = match self.lookup_var(frame.scope, *name) {
                    Some(dv) => {
                        let ov = self.typeof_override(&dv.v);
                        let v = coerce::un_op(mujs_ir::UnOp::Typeof, &dv.v, ov)
                            .map_err(|e| self.coerce_err(e, dv.d == Det::I))?;
                        DValue { v, d: dv.d }
                    }
                    None => DValue {
                        v: Value::Str(Rc::from("undefined")),
                        d: if self.is_open(self.global) {
                            Det::I
                        } else {
                            Det::D
                        },
                    },
                };
                self.define(frame, id, dst, v);
            }
            StmtKind::HasProp { dst, key, obj } => {
                let kv = self.read_place(frame, key)?;
                let k = coerce::to_string(&kv.v).map_err(|e| self.coerce_err(e, kv.d == Det::I))?;
                let k = self.prog.interner.intern_rc(&k);
                let o = self.read_place(frame, obj)?;
                let Value::Object(oid) = o.v else {
                    return Err(self.throw_error(
                        "TypeError",
                        "'in' requires an object",
                        o.d == Det::I,
                    ));
                };
                let (has, presence_det) = self.has_prop_d(oid, k);
                self.define(
                    frame,
                    id,
                    dst,
                    DValue {
                        v: Value::Bool(has),
                        d: o.d.join(kv.d).join(presence_det),
                    },
                );
            }
            StmtKind::InstanceOf { dst, val, ctor } => {
                let v = self.read_place(frame, val)?;
                let c = self.read_place(frame, ctor)?;
                let Value::Object(cid) = c.v else {
                    return Err(self.throw_error(
                        "TypeError",
                        "instanceof requires a function",
                        c.d == Det::I,
                    ));
                };
                if !self.obj(cid).class.is_callable() {
                    return Err(self.throw_error(
                        "TypeError",
                        "instanceof requires a function",
                        c.d == Det::I,
                    ));
                }
                let proto = self.own_prop_s(cid, Sym::PROTOTYPE);
                let mut d = v.d.join(c.d).join(proto.d);
                let mut result = false;
                if let (Value::Object(mut o), Value::Object(p)) = (v.v, proto.v) {
                    let mut fuel = 10_000;
                    while let Some(next) = self.obj(o).proto {
                        d = d.join(self.proto_det(o));
                        if next == p {
                            result = true;
                            break;
                        }
                        o = next;
                        fuel -= 1;
                        if fuel == 0 {
                            break;
                        }
                    }
                }
                self.define(
                    frame,
                    id,
                    dst,
                    DValue {
                        v: Value::Bool(result),
                        d,
                    },
                );
            }
            StmtKind::EnumProps { dst, obj } => {
                let o = self.read_place(frame, obj)?;
                let (keys, kd) = self.enum_props_d(&o);
                let arr = self.alloc(ObjClass::Array, Some(self.protos.array), Det::D);
                self.write_prop_s(
                    arr,
                    Sym::LENGTH,
                    DValue {
                        v: Value::Num(keys.len() as f64),
                        d: kd,
                    },
                );
                for (i, k) in keys.into_iter().enumerate() {
                    let text = self.prog.interner.name(k).clone();
                    let slot = self.prog.interner.intern_index(i);
                    self.write_prop_s(
                        arr,
                        slot,
                        DValue {
                            v: Value::Str(text),
                            d: kd,
                        },
                    );
                }
                self.define(
                    frame,
                    id,
                    dst,
                    DValue {
                        v: Value::Object(arr),
                        d: o.d,
                    },
                );
            }
            StmtKind::Eval { dst, arg } => {
                let a = self.read_place(frame, arg)?;
                let ctx = self.enter_site(frame, id);
                // Occurrence-qualified, so per-iteration facts in unrolled
                // loops stay distinct (the paper's `24₀` notation).
                if self.cfg.collect_facts {
                    self.facts.record(FactKind::EvalArg, id, ctx, &a);
                }
                let v = self.eval_direct_d(frame, &a, ctx)?;
                self.define(frame, id, dst, v);
            }
        }
        Ok(DFlow::Normal)
    }

    // ------------------------------------------------------- conditionals

    /// The Figure 9 conditional rules, generalized to two-armed ifs by the
    /// desugaring `if(c) A else B ≡ if(c) A; if(!c) B`:
    /// determinate guard ⇒ plain execution of the taken branch; an
    /// indeterminate guard executes the taken branch under a write log
    /// (ÎF1, marking after the merge) and the untaken branch
    /// counterfactually (ĈNTR).
    fn exec_if(
        &mut self,
        frame: &mut DFrame,
        id: StmtId,
        cond: &Place,
        then_blk: &[Stmt],
        else_blk: &[Stmt],
    ) -> Result<DFlow, DErr> {
        let cv = self.read_place(frame, cond)?;
        if self.cfg.collect_facts {
            let bv = DValue {
                v: Value::Bool(coerce::to_boolean(&cv.v)),
                d: cv.d,
            };
            self.facts.record(FactKind::Cond, id, frame.ctx, &bv);
        }
        let taken_then = coerce::to_boolean(&cv.v);
        let (taken, untaken) = if taken_then {
            (then_blk, else_blk)
        } else {
            (else_blk, then_blk)
        };
        if cv.d == Det::D {
            return self.exec_block(frame, taken);
        }
        self.push_log(false);
        let r = self.exec_block(frame, taken);
        self.pop_log_mark(frame);
        match &r {
            Ok(_) | Err(DErr::Thrown(..)) => {
                self.counterfactual_blocks(frame, &[untaken])?;
            }
            Err(DErr::CfAbort) | Err(DErr::Stop(_)) => {}
        }
        match r {
            Ok(flow) => Ok(flow.taint()),
            Err(DErr::Thrown(v, _)) => Err(DErr::Thrown(v, true)),
            e => e,
        }
    }

    /// Loops: per-iteration ÎF1 logging once any guard has been
    /// indeterminate; a final ĈNTR of the body when exiting on an
    /// indeterminate-false guard (the paper's WHILE-as-IF desugaring);
    /// trip-count facts for the specializer's unrolling.
    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &mut self,
        frame: &mut DFrame,
        id: StmtId,
        cond_blk: &[Stmt],
        cond: &Place,
        body: &[Stmt],
        update: &[Stmt],
        check_cond_first: bool,
    ) -> Result<DFlow, DErr> {
        let mut tainted = false;
        let mut all_det = true;
        let mut trips: u32 = 0;
        let mut first = true;
        loop {
            self.push_log(false);
            let step = self.loop_iteration(
                frame,
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
                &mut first,
                &mut all_det,
                &mut tainted,
                &mut trips,
            );
            if tainted {
                self.pop_log_mark(frame);
            } else {
                // No indeterminate guard so far: the iteration ran in
                // every execution; keep the writes as-is.
                let region = self.logs.pop().expect("iteration log");
                if let Some(parent) = self.logs.last_mut() {
                    parent.entries.extend(region.entries);
                }
            }
            match step {
                Ok(LoopStep::Next) => continue,
                Ok(LoopStep::Exit) => {
                    if self.cfg.collect_facts {
                        self.facts.record_trip(
                            id,
                            frame.ctx,
                            if all_det {
                                TripFact::Exact(trips)
                            } else {
                                TripFact::Unknown
                            },
                        );
                    }
                    return Ok(DFlow::Normal);
                }
                Ok(LoopStep::Propagate(flow)) => {
                    if flow.indet_ctl() {
                        // Other executions may keep iterating.
                        self.cntr_abort(frame, &[cond_blk, body, update])?;
                    }
                    if self.cfg.collect_facts {
                        self.facts.record_trip(id, frame.ctx, TripFact::Unknown);
                    }
                    return Ok(flow);
                }
                Err(DErr::Thrown(v, true)) => {
                    self.cntr_abort(frame, &[cond_blk, body, update])?;
                    return Err(DErr::Thrown(v, true));
                }
                Err(e) => return Err(e),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn loop_iteration(
        &mut self,
        frame: &mut DFrame,
        cond_blk: &[Stmt],
        cond: &Place,
        body: &[Stmt],
        update: &[Stmt],
        check_cond_first: bool,
        first: &mut bool,
        all_det: &mut bool,
        tainted: &mut bool,
        trips: &mut u32,
    ) -> Result<LoopStep, DErr> {
        if check_cond_first || !*first {
            match self.exec_block(frame, cond_blk)? {
                DFlow::Normal => {}
                flow => return Ok(LoopStep::Propagate(flow)),
            }
            let cv = self.read_place(frame, cond)?;
            if cv.d == Det::I {
                *all_det = false;
                *tainted = true;
            }
            if !coerce::to_boolean(&cv.v) {
                if cv.d == Det::I {
                    // Rule ĈNTR on the iteration that other executions may
                    // still perform.
                    self.counterfactual_blocks(frame, &[body, update])?;
                }
                return Ok(LoopStep::Exit);
            }
        }
        *first = false;
        match self.exec_block(frame, body)? {
            DFlow::Normal => {}
            DFlow::Continue(ic) => {
                if ic {
                    self.cntr_abort(frame, &[cond_blk, body, update])?;
                    *all_det = false;
                    *tainted = true;
                }
            }
            DFlow::Break(ic) => {
                if ic {
                    self.cntr_abort(frame, &[cond_blk, body, update])?;
                }
                // A break-exit leaves a partial iteration behind: `trips`
                // counts completed iterations only, so an Exact fact would
                // let the unroller drop the partial iteration's effects.
                *all_det = false;
                return Ok(LoopStep::Exit);
            }
            flow @ DFlow::Return(..) => return Ok(LoopStep::Propagate(flow)),
        }
        match self.exec_block(frame, update)? {
            DFlow::Normal => {}
            flow => return Ok(LoopStep::Propagate(flow)),
        }
        *trips += 1;
        Ok(LoopStep::Next)
    }

    fn exec_try(
        &mut self,
        frame: &mut DFrame,
        block: &[Stmt],
        catch: &Option<(Sym, Vec<Stmt>)>,
        finally: &Option<Vec<Stmt>>,
    ) -> Result<DFlow, DErr> {
        let mut result = self.exec_block(frame, block);
        if let (Err(DErr::Thrown(exn, ic)), Some((name, handler))) = (&result, catch) {
            let exn = exn.clone();
            let ic = *ic;
            let saved = frame.scope;
            let cscope = self.new_scope(saved, frame.func);
            let bound = if ic {
                DValue::indet(exn.v.clone())
            } else {
                exn.clone()
            };
            self.declare(Some(cscope), *name, bound);
            frame.scope = Some(cscope);
            // Other executions may not throw and thus skip the handler, so
            // under an indeterminate throw the handler is a ÎF1 region.
            if ic {
                self.push_log(false);
            }
            let hr = self.exec_block(frame, handler);
            if ic {
                self.pop_log_mark(frame);
            }
            frame.scope = saved;
            result = match hr {
                Ok(flow) => Ok(if ic { flow.taint() } else { flow }),
                Err(DErr::Thrown(v, ic2)) => Err(DErr::Thrown(v, ic2 || ic)),
                Err(e) => Err(e),
            };
        }
        if let Some(fin) = finally {
            match self.exec_block(frame, fin)? {
                DFlow::Normal => {}
                flow => return Ok(flow), // finally overrides
            }
        }
        result
    }

    // ----------------------------------------------------- counterfactual

    /// Runs `blocks` counterfactually (rule ĈNTR): execute under an undo
    /// log, roll back, and mark every written location indeterminate.
    /// Aborts (ĈNTRABORT) beyond depth `k`, on exceptions, on abrupt
    /// completions, on natives with unknown effects, or when the
    /// counterfactual step budget runs out.
    pub(crate) fn counterfactual_blocks(
        &mut self,
        frame: &mut DFrame,
        blocks: &[&[Stmt]],
    ) -> Result<(), DErr> {
        if blocks.iter().all(|b| b.is_empty()) {
            return Ok(());
        }
        if !self.cfg.counterfactual || self.cf_depth >= self.cfg.cf_depth_k {
            return self.cntr_abort(frame, blocks);
        }
        // Injected ĈNTRABORT storm: every counterfactual takes the
        // abort-and-undo path, exercising log restoration under load.
        #[cfg(feature = "fault-inject")]
        if self.faults.as_ref().is_some_and(|f| f.plan.cf_abort_storm) {
            return self.cntr_abort(frame, blocks);
        }
        self.stats.counterfactuals += 1;
        let occ_snapshot = frame.occurrences.clone();
        // The RNG stream and clock are machine state too: hypothetical
        // execution must not consume them, or the real execution would
        // diverge from the concrete semantics on the same seed.
        let rng_snapshot = self.rng.clone();
        let now_snapshot = self.now;
        if self.cf_depth == 0 {
            self.cf_steps = 0;
        }
        self.cf_depth += 1;
        self.push_log(true);
        let mut outcome: Result<(), DErr> = Ok(());
        for b in blocks {
            match self.exec_block(frame, b) {
                Ok(DFlow::Normal) => {}
                // Abrupt hypothetical control: we cannot follow the
                // hypothetical continuation, so abort conservatively.
                Ok(_) => {
                    outcome = Err(DErr::CfAbort);
                    break;
                }
                Err(DErr::Thrown(..)) | Err(DErr::CfAbort) => {
                    outcome = Err(DErr::CfAbort);
                    break;
                }
                Err(e @ DErr::Stop(_)) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.cf_depth -= 1;
        frame.occurrences = occ_snapshot;
        self.rng = rng_snapshot;
        self.now = now_snapshot;
        self.pop_log_undo_mark(frame);
        match outcome {
            Ok(()) => Ok(()),
            Err(DErr::Stop(s)) => Err(DErr::Stop(s)),
            Err(_) => self.cntr_abort(frame, blocks),
        }
    }

    // ------------------------------------------------------ property ops

    /// Rule L̂D generalized to prototype chains, primitives and the DOM.
    pub fn get_prop_d(&mut self, base: &DValue, key: Sym, kd: Det) -> Result<DValue, DErr> {
        let base_d = base.d.join(kd);
        match &base.v {
            Value::Undefined | Value::Null => {
                let kname = self.prog.interner.resolve(key).to_owned();
                Err(self.throw_error(
                    "TypeError",
                    &format!("cannot read property '{kname}' of {}", base.v.kind_str()),
                    base.d == Det::I,
                ))
            }
            Value::Str(s) => {
                if key == Sym::LENGTH {
                    return Ok(DValue {
                        v: Value::Num(s.chars().count() as f64),
                        d: base_d,
                    });
                }
                if let Ok(idx) = self.prog.interner.resolve(key).parse::<usize>() {
                    let v = match s.chars().nth(idx) {
                        Some(c) => Value::Str(Rc::from(c.to_string().as_str())),
                        None => Value::Undefined,
                    };
                    return Ok(DValue { v, d: base_d });
                }
                Ok(self.chain_lookup(self.protos.string, key, base_d))
            }
            Value::Num(_) => Ok(self.chain_lookup(self.protos.number, key, base_d)),
            Value::Bool(_) => Ok(self.chain_lookup(self.protos.boolean, key, base_d)),
            Value::Object(oid) => {
                if let Some(v) = self.dom_get_hook(*oid, key) {
                    return Ok(v.weaken(base_d));
                }
                Ok(self.chain_lookup(*oid, key, base_d))
            }
        }
    }

    fn chain_lookup(&self, start: ObjId, key: Sym, mut d: Det) -> DValue {
        let mut cur = start;
        let mut fuel = 10_000;
        loop {
            if self.has_own_s(cur, key) {
                let s = self.own_prop_s(cur, key);
                return s.weaken(d);
            }
            // An open record may have a shadowing own property in other
            // executions.
            if self.is_open(cur) {
                d = Det::I;
            }
            match self.obj(cur).proto {
                Some(p) if fuel > 0 => {
                    d = d.join(self.proto_det(cur));
                    cur = p;
                    fuel -= 1;
                }
                _ => {
                    return DValue {
                        v: Value::Undefined,
                        d,
                    }
                }
            }
        }
    }

    /// Rule ŜTO generalized: write, open the record on an indeterminate
    /// name, flush the heap on an indeterminate base.
    pub fn set_prop_d(
        &mut self,
        base: &DValue,
        key: Sym,
        kd: Det,
        val: DValue,
    ) -> Result<(), DErr> {
        match &base.v {
            Value::Undefined | Value::Null => {
                let kname = self.prog.interner.resolve(key).to_owned();
                Err(self.throw_error(
                    "TypeError",
                    &format!("cannot set property '{kname}' of {}", base.v.kind_str()),
                    base.d == Det::I,
                ))
            }
            Value::Object(oid) => {
                let oid = *oid;
                if self.dom_set_hook(oid, key, &val) {
                    if base.d == Det::I {
                        self.flush_heap()?;
                    }
                    return Ok(());
                }
                let is_array = self.obj(oid).class == ObjClass::Array;
                if is_array {
                    if key == Sym::LENGTH {
                        self.array_set_length_d(oid, &val);
                    } else {
                        let idx =
                            mujs_interp::machine::array_index(self.prog.interner.resolve(key));
                        if let Some(idx) = idx {
                            let len = self.own_prop_s(oid, Sym::LENGTH);
                            let cur = match len.v {
                                Value::Num(n) => n,
                                _ => 0.0,
                            };
                            if (idx as f64) >= cur {
                                self.write_prop_s(
                                    oid,
                                    Sym::LENGTH,
                                    DValue {
                                        v: Value::Num(idx as f64 + 1.0),
                                        d: len.d.join(kd).join(val.d).join(base.d),
                                    },
                                );
                            }
                        }
                        self.write_prop_s(oid, key, val);
                    }
                } else {
                    self.write_prop_s(oid, key, val);
                }
                if kd == Det::I {
                    self.open_record(oid);
                }
                if base.d == Det::I {
                    self.flush_heap()?;
                }
                Ok(())
            }
            _ => Ok(()), // writes to primitives are ignored
        }
    }

    fn array_set_length_d(&mut self, arr: ObjId, value: &DValue) {
        let new_len = coerce::to_number(&value.v).unwrap_or(0.0).max(0.0).trunc();
        let old_len = match self.own_prop_s(arr, Sym::LENGTH).v {
            Value::Num(n) => n,
            _ => 0.0,
        };
        if new_len < old_len {
            let doomed: Vec<Sym> = self
                .obj(arr)
                .props
                .keys()
                .filter(|&k| {
                    mujs_interp::machine::array_index(self.prog.interner.resolve(k))
                        .is_some_and(|i| (i as f64) >= new_len)
                })
                .collect();
            for k in doomed {
                self.delete_prop_s(arr, k);
            }
        }
        self.write_prop_s(
            arr,
            Sym::LENGTH,
            DValue {
                v: Value::Num(new_len),
                d: value.d,
            },
        );
    }

    fn has_prop_d(&self, mut obj: ObjId, key: Sym) -> (bool, Det) {
        let mut d = Det::D;
        let mut fuel = 10_000;
        loop {
            if self.has_own_s(obj, key) {
                let s = self.own_prop_s(obj, key);
                return (true, d.join(s.d));
            }
            if self.is_open(obj) {
                d = Det::I;
            }
            match self.obj(obj).proto {
                Some(p) if fuel > 0 => {
                    d = d.join(self.proto_det(obj));
                    obj = p;
                    fuel -= 1;
                }
                _ => return (false, d),
            }
        }
    }

    /// Enumerable keys and the determinacy of the key *set* — determinate
    /// only when every record on the chain is closed ("if the set of
    /// properties to iterate over is determinate, our analysis assumes
    /// that the iteration order is also determinate", §5.2).
    pub fn enum_props_d(&self, base: &DValue) -> (Vec<Sym>, Det) {
        let Value::Object(oid) = &base.v else {
            return (Vec::new(), base.d);
        };
        let mut d = base.d;
        let mut out: Vec<Sym> = Vec::new();
        let mut seen: std::collections::HashSet<Sym> = std::collections::HashSet::new();
        let mut cur = Some(*oid);
        let mut fuel = 10_000;
        while let Some(id) = cur {
            let o = self.obj(id);
            if !o.builtin {
                if self.is_open(id) {
                    d = Det::I;
                }
                for k in o.props.keys() {
                    if self.hidden_from_enum(id, k) {
                        continue;
                    }
                    if seen.insert(k) {
                        out.push(k);
                    }
                }
            }
            d = d.join(self.proto_det(id));
            cur = o.proto;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        (out, d)
    }

    fn hidden_from_enum(&self, o: ObjId, key: Sym) -> bool {
        match &self.obj(o).class {
            ObjClass::Array => key == Sym::LENGTH,
            ObjClass::Function { .. } | ObjClass::Native(_) => {
                matches!(key, Sym::PROTOTYPE | Sym::LENGTH | Sym::NAME)
            }
            _ => false,
        }
    }

    pub(crate) fn typeof_override(&self, v: &Value) -> Option<&'static str> {
        match v {
            Value::Object(id) if self.obj(*id).class.is_callable() => Some("function"),
            _ => None,
        }
    }

    // -------------------------------------------------------------- calls

    /// Rule ÎNV: call; an indeterminate callee flushes the heap afterwards
    /// and yields an indeterminate result.
    pub fn call_value_d(
        &mut self,
        callee: &DValue,
        this: DValue,
        args: &[DValue],
        ctx: CtxId,
    ) -> Result<DValue, DErr> {
        let Value::Object(fid) = &callee.v else {
            return Err(self.throw_error(
                "TypeError",
                "value is not a function",
                callee.d == Det::I,
            ));
        };
        let r = match self.obj(*fid).class.clone() {
            ObjClass::Function { func, env } => {
                self.call_function_d(func, env, Some(*fid), this, args, ctx)
            }
            ObjClass::Native(nid) => self.call_native(nid, this, args),
            _ => Err(self.throw_error("TypeError", "value is not a function", callee.d == Det::I)),
        };
        match r {
            Ok(v) => {
                if callee.d == Det::I {
                    self.flush_heap()?;
                    Ok(v.weaken(Det::I))
                } else {
                    Ok(v)
                }
            }
            Err(DErr::Thrown(v, ic)) => Err(DErr::Thrown(v, ic || callee.d == Det::I)),
            e => e,
        }
    }

    /// Dispatches one native call — the single funnel for every native
    /// model invocation, and therefore the injection point for native
    /// faults under the `fault-inject` feature.
    pub(crate) fn call_native(
        &mut self,
        nid: mujs_interp::NativeId,
        this: DValue,
        args: &[DValue],
    ) -> Result<DValue, DErr> {
        #[cfg(feature = "fault-inject")]
        if let Some(fs) = self.faults.as_mut() {
            fs.native_calls += 1;
            let n = fs.native_calls;
            if fs.plan.native_panic_at == Some(n) {
                panic!("injected native fault: panic at native call #{n}");
            }
            if fs.plan.native_error_at == Some(n) {
                return Err(self.throw_error("Error", "injected native failure", false));
            }
        }
        let f = self.natives[nid.0 as usize].1;
        f(self, this, args)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn call_function_d(
        &mut self,
        func: FuncId,
        env: Option<ScopeId>,
        self_obj: Option<ObjId>,
        this: DValue,
        args: &[DValue],
        ctx: CtxId,
    ) -> Result<DValue, DErr> {
        let f = self.prog.func_rc(func);
        let scope = self.new_activation(func, env);
        for (i, &p) in f.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(DValue::undef());
            self.declare(Some(scope), p, v);
        }
        let args_arr = self.alloc(ObjClass::Array, Some(self.protos.array), Det::D);
        self.write_prop_s(
            args_arr,
            Sym::LENGTH,
            DValue::det(Value::Num(args.len() as f64)),
        );
        for (i, v) in args.iter().enumerate() {
            let slot = self.prog.interner.intern_index(i);
            self.write_prop_s(args_arr, slot, v.clone());
        }
        self.declare(
            Some(scope),
            Sym::ARGUMENTS,
            DValue::det(Value::Object(args_arr)),
        );
        // Static locals are pre-initialized to determinate `undefined` by
        // the activation's slot layout; only names outside it (e.g.
        // specializer-added after layout) still need declaring.
        for &v in &f.decls.vars {
            if self.prog.func(func).local_slot(v).is_none()
                && !self.scopes[scope.0 as usize].ext.contains_key(&v)
            {
                self.declare(Some(scope), v, DValue::undef());
            }
        }
        for &(name, nested) in &f.decls.funcs {
            let clos = self.make_closure(nested, Some(scope));
            self.declare(Some(scope), name, DValue::det(Value::Object(clos)));
        }
        if f.bind_self {
            if let (Some(name), Some(clos)) = (f.name, self_obj) {
                // The self-binding loses to any like-named declaration.
                let shadowed = name == Sym::ARGUMENTS
                    || f.params.contains(&name)
                    || f.decls.vars.contains(&name)
                    || f.decls.funcs.iter().any(|&(n, _)| n == name);
                if !shadowed {
                    self.declare(Some(scope), name, DValue::det(Value::Object(clos)));
                }
            }
        }
        let mut frame = self.fresh_frame(func, Some(scope), Some(scope), this, ctx, f.n_temps);
        match self.exec_block(&mut frame, &f.body)? {
            DFlow::Normal => Ok(DValue::undef()),
            DFlow::Return(v, ic) => Ok(if ic { v.weaken(Det::I) } else { v }),
            DFlow::Break(_) | DFlow::Continue(_) => {
                Err(DErr::Stop(AnalysisStatus::UncaughtException))
            }
        }
    }

    /// `new F(...)` with the determinacy of the prototype slot threaded
    /// into the created object.
    pub fn construct_d(
        &mut self,
        callee: &DValue,
        args: &[DValue],
        ctx: CtxId,
    ) -> Result<DValue, DErr> {
        let Value::Object(fid) = &callee.v else {
            return Err(self.throw_error(
                "TypeError",
                "value is not a constructor",
                callee.d == Det::I,
            ));
        };
        let fid = *fid;
        let finish = |m: &mut Self, v: Result<DValue, DErr>| match v {
            Ok(v) => {
                if callee.d == Det::I {
                    m.flush_heap()?;
                    Ok(v.weaken(Det::I))
                } else {
                    Ok(v)
                }
            }
            Err(DErr::Thrown(t, ic)) => Err(DErr::Thrown(t, ic || callee.d == Det::I)),
            e => e,
        };
        if Some(fid) == self.specials.array_ctor {
            let r = crate::natives::array_ctor_model(self, args);
            return finish(self, r);
        }
        if Some(fid) == self.specials.object_ctor {
            let o = self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D);
            return finish(self, Ok(DValue::det(Value::Object(o))));
        }
        if Some(fid) == self.specials.error_ctor {
            let r = crate::natives::error_new_model(self, args);
            return finish(self, r);
        }
        let class = self.obj(fid).class.clone();
        let r = match class {
            ObjClass::Function { func, env } => {
                let proto_slot = self.own_prop_s(fid, Sym::PROTOTYPE);
                let (proto, pd) = match proto_slot.v {
                    Value::Object(p) => (p, proto_slot.d),
                    _ => (self.protos.object, proto_slot.d),
                };
                let this_obj = self.alloc(ObjClass::Plain, Some(proto), pd);
                let r = self.call_function_d(
                    func,
                    env,
                    Some(fid),
                    DValue::det(Value::Object(this_obj)),
                    args,
                    ctx,
                )?;
                Ok(match r.v {
                    Value::Object(_) => r,
                    _ => DValue {
                        v: Value::Object(this_obj),
                        d: r.d.join(Det::D),
                    },
                })
            }
            ObjClass::Native(nid) => {
                let this_obj = self.alloc(ObjClass::Plain, Some(self.protos.object), Det::D);
                let r = self.call_native(nid, DValue::det(Value::Object(this_obj)), args)?;
                Ok(match r.v {
                    Value::Object(_) => r,
                    _ => DValue::det(Value::Object(this_obj)),
                })
            }
            _ => Err(self.throw_error(
                "TypeError",
                "value is not a constructor",
                callee.d == Det::I,
            )),
        };
        finish(self, r)
    }

    // --------------------------------------------------------------- eval

    /// Direct `eval` (§4: "calls to eval are instrumented to recursively
    /// instrument any code loaded at runtime, flushing the heap if the
    /// code is not determinate").
    fn eval_direct_d(
        &mut self,
        frame: &mut DFrame,
        arg: &DValue,
        ctx: CtxId,
    ) -> Result<DValue, DErr> {
        let Value::Str(src) = &arg.v else {
            return Ok(arg.clone());
        };
        if arg.d == Det::I {
            self.flush_heap()?;
        }
        let parsed = match mujs_syntax::parse(src) {
            Ok(p) => p,
            Err(e) => {
                let ic = arg.d == Det::I;
                return Err(self.throw_error("SyntaxError", &e.to_string(), ic));
            }
        };
        let chunk = mujs_ir::lower_chunk(self.prog, &parsed, FuncKind::EvalChunk, Some(frame.func));
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(self.prog);
        self.refresh_closure_writes();
        let r = self.run_eval_chunk(frame, chunk, ctx)?;
        Ok(r.weaken(arg.d))
    }

    /// Runs an eval chunk in the caller's scope (shared by direct and
    /// indirect eval).
    pub(crate) fn run_eval_chunk(
        &mut self,
        frame: &mut DFrame,
        chunk: FuncId,
        ctx: CtxId,
    ) -> Result<DValue, DErr> {
        let f = self.prog.func_rc(chunk);
        for &v in &f.decls.vars {
            if self.lookup_var(frame.scope, v).is_none() {
                self.declare_logged(frame.scope, v, DValue::undef());
            }
        }
        for &(name, nested) in &f.decls.funcs {
            let clos = self.make_closure(nested, frame.scope);
            self.assign_var(frame.scope, name, DValue::det(Value::Object(clos)));
        }
        let mut eframe = self.fresh_frame(
            chunk,
            frame.scope,
            frame.activation,
            frame.this_val.clone(),
            ctx,
            f.n_temps,
        );
        match self.exec_block(&mut eframe, &f.body)? {
            DFlow::Normal => Ok(eframe.temps.first().cloned().unwrap_or(DValue::undef())),
            _ => Err(DErr::Stop(AnalysisStatus::UncaughtException)),
        }
    }

    /// Declares a binding with undo logging (eval hoisting can occur inside
    /// conditional/counterfactual regions). The name is unbound — it just
    /// failed a full lookup, which also covers every static slot — so the
    /// binding always lands in the scope's ext map (or on the global).
    fn declare_logged(&mut self, scope: Option<ScopeId>, name: Sym, dv: DValue) {
        match scope {
            Some(sid) => {
                let ann = crate::det::SlotAnn {
                    det: dv.d,
                    epoch: self.epoch,
                };
                let old = self.scopes[sid.0 as usize].ext.insert(name, (dv.v, ann));
                if let Some(top) = self.logs.last_mut() {
                    top.entries.push(crate::machine::LogEntry::Var {
                        scope: sid,
                        key: crate::machine::VarKey::Ext(name),
                        old,
                    });
                }
            }
            None => self.write_prop_s(self.global, name, dv),
        }
    }

    /// Calls a closure from the root context (event dispatch, tests).
    pub fn call_closure_by_id(
        &mut self,
        clos: ObjId,
        this: DValue,
        args: &[DValue],
    ) -> Result<DValue, DErr> {
        self.call_value_d(&DValue::det(Value::Object(clos)), this, args, CtxId::ROOT)
    }
}

enum LoopStep {
    Next,
    Exit,
    Propagate(DFlow),
}
