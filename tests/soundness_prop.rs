//! The executable Theorem 1 (§3.3): determinate observations of one
//! instrumented run predict the corresponding values of *every* concrete
//! execution, across re-randomized indeterminate inputs.
//!
//! Two properties are checked over randomly generated programs:
//!
//! 1. **Machine agreement** — with the same seed, the instrumented
//!    machine's observable behavior (output) equals the concrete
//!    interpreter's: instrumentation, write-logging and counterfactual
//!    rollback must be transparent.
//! 2. **Soundness** — the instrumented run's determinate observations,
//!    aligned by `(point, context, hit index)`, match the values computed
//!    by concrete runs under *different* seeds, building the paper's
//!    address bijection µ incrementally for object values.

use determinacy::modeling::check_soundness;
use determinacy::{AnalysisConfig, DetHarness};
use mujs_gen::{generate, GenConfig};
use mujs_interp::{Harness, InterpOptions};
use proptest::prelude::*;

struct IRun {
    obs: Vec<determinacy::DObservation>,
    ctxs: mujs_interp::ContextTable,
    output: Vec<String>,
    status: determinacy::AnalysisStatus,
}

fn instrumented_run(src: &str, seed: u64) -> IRun {
    let mut h = DetHarness::from_src(src).expect("generated programs parse");
    let out = h.analyze(AnalysisConfig {
        seed,
        record_observations: true,
        flush_cap: None,
        ..Default::default()
    });
    IRun {
        obs: out.observations,
        ctxs: out.ctxs,
        output: out.output,
        status: out.status,
    }
}

struct CRun {
    obs: Vec<mujs_interp::Observation>,
    ctxs: mujs_interp::ContextTable,
    output: Vec<String>,
    ok: bool,
}

fn concrete_run(src: &str, seed: u64) -> CRun {
    let mut h = Harness::from_src(src).expect("generated programs parse");
    let mut interp = mujs_interp::Interp::new(
        &mut h.program,
        InterpOptions {
            seed,
            record_observations: true,
            ..Default::default()
        },
    );
    let ok = interp.run().is_ok();
    CRun {
        obs: std::mem::take(&mut interp.observations),
        ctxs: std::mem::take(&mut interp.ctxs),
        output: std::mem::take(&mut interp.output),
        ok,
    }
}

fn check_program(src: &str, base_seed: u64) {
    let irun = instrumented_run(src, base_seed);
    // Property 1: machine agreement on the same seed (only meaningful when
    // both complete; generated programs can legitimately throw).
    let same = concrete_run(src, base_seed);
    if same.ok && irun.status == determinacy::AnalysisStatus::Completed {
        assert_eq!(
            irun.output, same.output,
            "machines diverged on seed {base_seed}:\n{src}"
        );
    }
    let report_same = check_soundness(&irun.obs, &irun.ctxs, &same.obs, &same.ctxs);
    assert!(
        report_same.is_sound(),
        "soundness violated on same seed {base_seed}: {:?}\n{src}",
        &report_same.violations[..report_same.violations.len().min(3)]
    );
    // Property 2: soundness across different seeds (different
    // Math.random streams = the paper's "any execution").
    for delta in 1..4u64 {
        let other = base_seed.wrapping_add(delta.wrapping_mul(0x9E37_79B9));
        let crun = concrete_run(src, other);
        let report = check_soundness(&irun.obs, &irun.ctxs, &crun.obs, &crun.ctxs);
        assert!(
            report.is_sound(),
            "soundness violated: instrumented seed {base_seed} vs concrete seed {other}: {:?}\n{src}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn soundness_over_fixed_seed_sweep() {
    let cfg = GenConfig::default();
    for seed in 0..60u64 {
        let src = generate(seed, &cfg);
        check_program(&src, seed.wrapping_mul(811) ^ 0xABCD);
    }
}

#[test]
fn soundness_with_heavy_indeterminacy() {
    let cfg = GenConfig {
        top_stmts: 16,
        indet_pct: 55,
        ..Default::default()
    };
    for seed in 0..40u64 {
        let src = generate(seed ^ 0xF00D, &cfg);
        check_program(&src, seed.wrapping_mul(127) ^ 0x1234);
    }
}

#[test]
fn soundness_with_deep_nesting() {
    let cfg = GenConfig {
        top_stmts: 10,
        max_depth: 5,
        n_funcs: 4,
        indet_pct: 35,
    };
    for seed in 0..30u64 {
        let src = generate(seed ^ 0xBEEF, &cfg);
        check_program(&src, seed.wrapping_mul(31) ^ 0x77);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_soundness_random_programs(gen_seed in any::<u64>(), run_seed in any::<u64>()) {
        let cfg = GenConfig {
            top_stmts: 10,
            indet_pct: 30,
            ..Default::default()
        };
        let src = generate(gen_seed, &cfg);
        check_program(&src, run_seed);
    }

    #[test]
    fn prop_parser_roundtrip_on_generated(gen_seed in any::<u64>()) {
        let src = generate(gen_seed, &GenConfig::default());
        let ast1 = mujs_syntax::parse(&src).expect("parses");
        let printed = mujs_syntax::pretty::print_program(&ast1);
        let ast2 = mujs_syntax::parse(&printed).expect("pretty output parses");
        let reprinted = mujs_syntax::pretty::print_program(&ast2);
        prop_assert_eq!(printed, reprinted);
    }
}
