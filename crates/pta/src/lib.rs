//! # mujs-pta
//!
//! A flow-insensitive, field-sensitive, Andersen-style points-to analysis
//! with on-the-fly call-graph construction for the muJS IR — the
//! reproduction's stand-in for the WALA JavaScript analysis the paper
//! builds on \[30\].
//!
//! Dynamic property accesses with statically unknown names smear values
//! through per-object ⋆-nodes, which is the scalability cliff Table 1
//! demonstrates; running the same solver over a determinacy-specialized
//! program (see `mujs-specialize`) removes the smearing. "Timeouts" are a
//! deterministic propagation-work budget, making the ✓/✗ shape of Table 1
//! reproducible on any machine.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), mujs_syntax::SyntaxError> {
//! use mujs_pta::{solve, PtaConfig, PtaStatus};
//! let ast = mujs_syntax::parse("function f() { return {}; } var o = f();")?;
//! let prog = mujs_ir::lower_program(&ast);
//! let result = solve(&prog, &PtaConfig::default());
//! assert_eq!(result.status, PtaStatus::Completed);
//! # Ok(())
//! # }
//! ```

pub mod blame;
pub mod hash;
pub mod nodes;
pub(crate) mod parallel;
pub mod pts;
pub mod reference;
pub mod scc;
pub(crate) mod shard;
pub mod shortcut;
pub mod solver;

pub use blame::{BlameCause, BlameData};
pub use nodes::{AbsObj, Node};
pub use reference::solve_reference;
pub use shortcut::{RegionSummary, ShortcutSummaries};
pub use solver::{solve, InjectedFacts, PtaConfig, PtaPrecision, PtaResult, PtaStats, PtaStatus};
