//! §4: "instrumented code is expected to run slower" — measures the
//! instrumented machine against the concrete interpreter on the same
//! workloads, quantifying the overhead factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::{AnalysisConfig, AnalysisStatus};
use mujs_corpus::workload;

fn run_concrete(src: &str) {
    let mut h = mujs_interp::Harness::from_src(src).expect("parses");
    let out = h.run(mujs_interp::InterpOptions::default());
    assert!(out.result.is_ok());
}

fn run_instrumented(src: &str) {
    let mut h = determinacy::DetHarness::from_src(src).expect("parses");
    let out = h.analyze(AnalysisConfig::default());
    assert_eq!(out.status, AnalysisStatus::Completed);
}

fn bench(c: &mut Criterion) {
    let cases = [
        ("arith", workload::arithmetic_chain(400)),
        ("objects", workload::object_graph(150)),
        ("calls", workload::call_tree(14)),
        ("strings", workload::string_workload(150)),
    ];
    let mut g = c.benchmark_group("instrumentation_overhead");
    g.sample_size(10);
    for (name, src) in &cases {
        g.bench_with_input(BenchmarkId::new("concrete", name), src, |b, s| {
            b.iter(|| run_concrete(s))
        });
        g.bench_with_input(BenchmarkId::new("instrumented", name), src, |b, s| {
            b.iter(|| run_instrumented(s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
