//! Campaign robustness: checkpoint/resume byte-identity, admission-driven
//! degradation, fail-fast semantics, listener teardown, and the
//! determinism of the hardened batch path — all without fault injection
//! (the chaos suite layers that on).

use mujs_jobs::{
    job_key, run_manifest, run_manifest_with, BatchOptions, Checkpoint, JobEvent, JobPool, JobSpec,
    JobStatus, Manifest, RetryPolicy,
};
use std::path::PathBuf;
use std::sync::mpsc::channel;

fn small_manifest() -> Manifest {
    Manifest::new(vec![
        JobSpec {
            seeds: Some(vec![1, 2]),
            ..JobSpec::new(
                "coin",
                "var coin = Math.random() < 0.5;\n\
                 if (coin) { var a = 11; } else { var b = 22; }",
            )
        },
        JobSpec::new("plain", "var x = 1 + 2; var y = x * 3;"),
        JobSpec::new("calls", "function f(v) { return v + 1; } var r = f(f(1));"),
        JobSpec::new("strings", "var s = 'a' + 'b'; var t = s + 'c';"),
    ])
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The hardened path with default options is the plain path: same bytes.
#[test]
fn default_options_match_the_plain_batch_path() {
    let m = small_manifest();
    let plain = run_manifest(&m, &JobPool::new(2));
    let hardened = run_manifest_with(&m, &JobPool::new(2), &BatchOptions::default());
    assert_eq!(plain.report_json(true), hardened.report_json(true));
}

/// Campaign options (retries armed, checkpointing on) do not disturb the
/// worker-count invariance of the report.
#[test]
fn hardened_batches_stay_schedule_independent() {
    let m = small_manifest();
    let dir = tmp_dir("robustness-sched");
    let mk_opts = |ck: PathBuf| BatchOptions {
        retry: RetryPolicy::attempts(3),
        checkpoint_path: Some(ck),
        checkpoint_every: 1,
        ..Default::default()
    };
    let one = run_manifest_with(&m, &JobPool::new(1), &mk_opts(dir.join("w1.json")));
    let many = run_manifest_with(&m, &JobPool::new(8), &mk_opts(dir.join("w8.json")));
    assert_eq!(one.report_json(true), many.report_json(true));
    std::fs::remove_dir_all(&dir).ok();
}

/// Interrupt/resume byte-identity (the acceptance criterion): a run over a
/// *prefix* of the manifest — exactly what an interrupted campaign leaves
/// behind — checkpoints its settled rows; resuming the full manifest from
/// that checkpoint reproduces the uninterrupted report byte for byte,
/// without re-executing the completed jobs (their attempt counters stay
/// 0).
#[test]
fn resumed_batches_are_byte_identical_without_reexecution() {
    let full = small_manifest();
    let dir = tmp_dir("robustness-resume");
    let ckpt = dir.join("ck.json");

    let uninterrupted = run_manifest_with(&full, &JobPool::new(2), &BatchOptions::default());
    let baseline = uninterrupted.report_json(true);

    // "Interrupted" leg: only the first two jobs ran before the kill.
    let prefix = Manifest::new(full.jobs[..2].to_vec());
    run_manifest_with(
        &prefix,
        &JobPool::new(2),
        &BatchOptions {
            checkpoint_path: Some(ckpt.clone()),
            checkpoint_every: 1,
            ..Default::default()
        },
    );

    let ck = Checkpoint::load(&ckpt).expect("checkpoint parses");
    assert_eq!(ck.len(), 2);
    let resumed = run_manifest_with(
        &full,
        &JobPool::new(2),
        &BatchOptions {
            resume: Some(ck),
            ..Default::default()
        },
    );
    assert_eq!(baseline, resumed.report_json(true));
    // Facts-off reports agree too (the splice strips stored fact rows).
    assert_eq!(uninterrupted.report_json(false), resumed.report_json(false));
    // The first two jobs were spliced, not re-run.
    for j in &resumed.jobs[..2] {
        assert!(j.restored.is_some(), "{} must be restored", j.name);
        assert_eq!(j.attempts, 0, "{} must not re-execute", j.name);
    }
    for j in &resumed.jobs[2..] {
        assert!(j.restored.is_none());
        assert!(j.attempts >= 1, "{} must actually run", j.name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Content keying: editing a job's source invalidates its checkpoint row
/// (the job reruns), while untouched jobs still splice.
#[test]
fn stale_checkpoint_rows_miss_on_content_change() {
    let m = small_manifest();
    let dir = tmp_dir("robustness-stale");
    let ckpt = dir.join("ck.json");
    run_manifest_with(
        &m,
        &JobPool::new(2),
        &BatchOptions {
            checkpoint_path: Some(ckpt.clone()),
            ..Default::default()
        },
    );
    let mut edited = m.clone();
    edited.jobs[1].src = "var x = 999;".to_owned();
    assert_ne!(
        job_key(&m.jobs[1], None, None, None),
        job_key(&edited.jobs[1], None, None, None)
    );
    let resumed = run_manifest_with(
        &edited,
        &JobPool::new(2),
        &BatchOptions {
            resume: Some(Checkpoint::load(&ckpt).unwrap()),
            ..Default::default()
        },
    );
    assert!(resumed.jobs[0].restored.is_some());
    assert!(
        resumed.jobs[1].restored.is_none(),
        "edited job must not reuse the stale row"
    );
    assert!(resumed.jobs[1].attempts >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission control: a job declaring more cells than the whole batch
/// budget runs degraded (reduced budget) instead of failing, the decision
/// is schedule-independent, and the counters surface it.
#[test]
fn oversized_jobs_degrade_instead_of_failing() {
    let m = Manifest::new(vec![
        JobSpec {
            mem_cells: Some(10_000_000),
            ..JobSpec::new("greedy", "var x = [1, 2, 3]; var y = x.length;")
        },
        JobSpec {
            mem_cells: Some(50_000),
            ..JobSpec::new("modest", "var a = 5;")
        },
        JobSpec::new("undeclared", "var b = 6;"),
    ]);
    let opts = || BatchOptions {
        mem_budget_cells: Some(100_000),
        ..Default::default()
    };
    let (tx, rx) = channel();
    let batch = run_manifest_with(&m, &JobPool::new(2).with_events(tx), &opts());
    assert!(matches!(batch.jobs[0].status, JobStatus::Degraded));
    assert!(matches!(batch.jobs[1].status, JobStatus::Completed));
    assert!(matches!(batch.jobs[2].status, JobStatus::Completed));
    assert!(!batch.has_failures(), "degradation is not a failure");
    assert!(batch.report_json(false).contains("\"degraded\""));
    assert!(rx.try_iter().any(
        |e| matches!(e, JobEvent::Degraded { granted_cells, .. } if granted_cells == 100_000)
    ));
    let stats = batch.stats_json();
    assert!(stats.contains("\"degraded\": 1"), "{stats}");
    // Schedule independence of the degrade decision.
    let again = run_manifest_with(&m, &JobPool::new(1), &opts());
    assert_eq!(batch.report_json(true), again.report_json(true));
}

/// `fail_fast` cancels the remainder of the batch after a permanent
/// failure (here: a syntax error), and the batch reports a failure.
#[test]
fn fail_fast_stops_the_batch_on_a_permanent_failure() {
    let m = Manifest::new(vec![
        JobSpec::new("bad", "var x = ;"),
        JobSpec::new("after-0", "var a = 1;"),
        JobSpec::new("after-1", "var b = 2;"),
    ]);
    let batch = run_manifest_with(
        &m,
        &JobPool::new(1),
        &BatchOptions {
            retry: RetryPolicy {
                fail_fast: true,
                ..RetryPolicy::default()
            },
            ..Default::default()
        },
    );
    assert!(matches!(batch.jobs[0].status, JobStatus::Syntax(_)));
    assert!(matches!(batch.jobs[1].status, JobStatus::Cancelled));
    assert!(matches!(batch.jobs[2].status, JobStatus::Cancelled));
    assert!(batch.has_failures());
}

/// Satellite: dropping the `JobEvent` receiver mid-batch must not stall
/// the pool or change the report.
#[test]
fn listener_teardown_mid_batch_leaves_the_report_unchanged() {
    let m = small_manifest();
    let baseline = run_manifest(&m, &JobPool::new(2)).report_json(true);
    let (tx, rx) = channel();
    // Read exactly one event, then drop the receiver while jobs are still
    // emitting.
    let reader = std::thread::spawn(move || {
        let _ = rx.recv();
        drop(rx);
    });
    let batch = run_manifest(&m, &JobPool::new(2).with_events(tx));
    reader.join().unwrap();
    assert_eq!(baseline, batch.report_json(true));
}

/// Structured failure reasons reach the JSON report (kind + seed +
/// message), not just a failed bit.
#[test]
fn reports_carry_structured_failure_reasons() {
    let m = Manifest::new(vec![JobSpec::new("bad", "var x = ;")]);
    let batch = run_manifest(&m, &JobPool::new(1));
    let report = batch.report_json(false);
    assert!(report.contains("syntax error"), "{report}");
    // Stats counters exist and count the failure.
    let stats = batch.stats_json();
    assert!(stats.contains("\"syntax_errors\": 1"), "{stats}");
    assert!(stats.contains("\"wedged\": 0"), "{stats}");
    assert!(stats.contains("\"retried_jobs\": 0"), "{stats}");
}

/// The opt-in PTA stage: enabling it adds a `pta` object to every
/// completed row, the report stays byte-identical across thread counts
/// (the parallel solver is deterministic), and leaving it off reproduces
/// the PTA-less bytes exactly.
#[test]
fn pta_stage_is_deterministic_and_strictly_opt_in() {
    let m = small_manifest();
    let without = run_manifest(&m, &JobPool::new(2)).report_json(true);
    assert!(
        !without.contains("\"pta\""),
        "a PTA-less report must not mention the stage"
    );

    let mk_opts = |threads: usize, shards: usize| BatchOptions {
        pta_budget: Some(50_000),
        pta_threads: threads,
        pta_shards: shards,
        ..Default::default()
    };
    let seq = run_manifest_with(&m, &JobPool::new(1), &mk_opts(1, 0));
    let par = run_manifest_with(&m, &JobPool::new(4), &mk_opts(8, 0));
    let seq_report = seq.report_json(true);
    assert_eq!(
        seq_report,
        par.report_json(true),
        "PTA rows must not depend on worker or solver thread counts"
    );
    assert!(seq_report.contains("\"pta\""), "{seq_report}");
    assert!(seq_report.contains("\"propagations\""), "{seq_report}");
    // The shard count is equally unobservable (shards are the epoch
    // solver's determinism unit): reports are byte-identical across
    // `--shards`, which is what keeps it out of the checkpoint keys.
    for shards in [16usize, 32, 64] {
        let sharded = run_manifest_with(&m, &JobPool::new(2), &mk_opts(2, shards));
        assert_eq!(
            seq_report,
            sharded.report_json(true),
            "PTA rows must not depend on the shard count (shards={shards})"
        );
    }

    // Checkpoint keys fold the budget (stale rows miss when it changes)
    // but never the thread count (rows are reusable across -pta-threads)
    // or the shard count — `job_key` has no shard input at all.
    let spec = &m.jobs[0];
    assert_ne!(
        job_key(spec, None, Some(50_000), None),
        job_key(spec, None, Some(60_000), None)
    );
    assert_ne!(
        job_key(spec, None, Some(50_000), None),
        job_key(spec, None, Some(50_000), Some(2)),
        "the spec-depth bound changes the solved program, so it must move the key"
    );
    assert_eq!(
        job_key(spec, None, None, None),
        job_key(spec, None, None, None)
    );
}

/// PTA rows survive the checkpoint/resume splice byte for byte.
#[test]
fn pta_rows_resume_from_checkpoints() {
    let m = small_manifest();
    let dir = tmp_dir("robustness-pta-resume");
    let ckpt = dir.join("ck.json");
    let mk_opts = || BatchOptions {
        pta_budget: Some(50_000),
        pta_threads: 2,
        checkpoint_path: Some(ckpt.clone()),
        ..Default::default()
    };
    let first = run_manifest_with(&m, &JobPool::new(2), &mk_opts());
    let resumed = run_manifest_with(
        &m,
        &JobPool::new(2),
        &BatchOptions {
            resume: Some(Checkpoint::load(&ckpt).unwrap()),
            pta_budget: Some(50_000),
            pta_threads: 8,
            ..Default::default()
        },
    );
    assert!(resumed.jobs.iter().all(|j| j.restored.is_some()));
    assert_eq!(first.report_json(true), resumed.report_json(true));
    std::fs::remove_dir_all(&dir).ok();
}
