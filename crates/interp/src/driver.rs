//! High-level drivers: parse + lower + run, optionally with a DOM and a
//! post-load event plan. This is the programmatic equivalent of loading an
//! HTML page in the paper's ZombieJS harness.

use crate::machine::{HeapTrace, Interp, InterpOptions, Observation, RunError};
use mujs_dom::document::Document;
use mujs_dom::events::EventPlan;
use mujs_ir::Program;
use mujs_syntax::span::SourceFile;
use mujs_syntax::SyntaxError;

/// The result of a driven run.
#[derive(Debug)]
pub struct Outcome {
    /// `Ok` on normal completion.
    pub result: Result<(), RunError>,
    /// Captured `console.log`/`alert` lines.
    pub output: Vec<String>,
    /// Statements executed.
    pub steps: u64,
    /// Per-statement observations (when enabled in the options).
    pub observations: Vec<Observation>,
    /// Recorded heap events (when tracing was enabled in the options).
    pub trace: Option<HeapTrace>,
}

impl Outcome {
    /// Panics with diagnostics unless the run completed normally.
    /// Test-assertion helper; production callers should use
    /// [`Outcome::into_result`] instead.
    ///
    /// # Panics
    ///
    /// When the run failed.
    pub fn expect_ok(&self) -> &Self {
        if let Err(e) = &self.result {
            panic!("run failed: {e}; output so far: {:?}", self.output);
        }
        self
    }

    /// Converts the outcome into a `Result`, pairing a failure with the
    /// output captured before it — diagnostics without panicking.
    ///
    /// # Errors
    ///
    /// [`DriveError::Run`] when the run failed.
    pub fn into_result(self) -> Result<Vec<String>, DriveError> {
        match self.result {
            Ok(()) => Ok(self.output),
            Err(error) => Err(DriveError::Run {
                error,
                output: self.output,
            }),
        }
    }
}

/// Why driving a source string failed: it did not parse, or the run
/// itself ended in an error.
#[derive(Debug, Clone)]
pub enum DriveError {
    /// The source did not parse.
    Syntax(SyntaxError),
    /// The program ran and failed.
    Run {
        /// The failure.
        error: RunError,
        /// Output captured before the failure, for diagnostics.
        output: Vec<String>,
    },
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Syntax(e) => write!(f, "syntax error: {e}"),
            DriveError::Run { error, output } => {
                write!(f, "run failed: {error}; output so far: {output:?}")
            }
        }
    }
}

impl std::error::Error for DriveError {}

impl From<SyntaxError> for DriveError {
    fn from(e: SyntaxError) -> Self {
        DriveError::Syntax(e)
    }
}

/// A parsed + lowered program ready to run (repeatedly, e.g. under
/// different seeds).
#[derive(Debug)]
pub struct Harness {
    /// The lowered program (grows if runs `eval` new code).
    pub program: Program,
    /// The source file, for line-number reporting.
    pub source: SourceFile,
}

impl Harness {
    /// Parses and lowers `src`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SyntaxError`] for malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
    /// use mujs_interp::driver::Harness;
    /// let mut h = Harness::from_src("console.log(1 + 2);")?;
    /// let out = h.run(Default::default());
    /// assert_eq!(out.output, vec!["3"]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_src(src: &str) -> Result<Self, SyntaxError> {
        let ast = mujs_syntax::parse(src)?;
        let program = mujs_ir::lower_program(&ast);
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(&program);
        Ok(Harness {
            program,
            source: SourceFile::new("main.js", src),
        })
    }

    /// Runs without a DOM.
    pub fn run(&mut self, opts: InterpOptions) -> Outcome {
        let mut interp = Interp::new(&mut self.program, opts);
        let result = interp.run();
        Outcome {
            result,
            output: std::mem::take(&mut interp.output),
            steps: interp.steps(),
            observations: std::mem::take(&mut interp.observations),
            trace: interp.take_trace(),
        }
    }

    /// Runs with a DOM installed and fires `plan` afterwards.
    pub fn run_dom(&mut self, opts: InterpOptions, doc: Document, plan: &EventPlan) -> Outcome {
        let mut interp = Interp::new(&mut self.program, opts);
        interp.install_dom(doc);
        let result = interp.run().and_then(|()| interp.fire_events(plan));
        Outcome {
            result,
            output: std::mem::take(&mut interp.output),
            steps: interp.steps(),
            observations: std::mem::take(&mut interp.observations),
            trace: interp.take_trace(),
        }
    }
}

/// One-shot convenience: run `src` and return its captured output.
///
/// # Errors
///
/// [`DriveError::Syntax`] for malformed input, [`DriveError::Run`] (with
/// the output captured up to the failure) when the run fails.
pub fn run_src(src: &str) -> Result<Vec<String>, DriveError> {
    let mut h = Harness::from_src(src)?;
    h.run(InterpOptions::default()).into_result()
}
