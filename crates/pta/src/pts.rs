//! Hybrid sparse/dense points-to sets.
//!
//! Small sets are sorted `Vec<u32>`s (cheap to create, cache-friendly to
//! scan: most pointer nodes hold a handful of abstract objects). Past
//! [`SPARSE_MAX`] elements a set promotes to a word-packed bitset, where
//! union/difference/intersection run a word at a time — the representation
//! the ⋆-smearing hot spots of the Table 1 corpus end up in.
//!
//! Iteration is ascending by object id for both representations, so every
//! export built from a [`Pts`] is deterministic without extra sorting
//! passes, and the delta-propagating solver's budget accounting can stop
//! element-exactly mid-union ([`flow_into`]).

/// Elements above which a sparse set promotes to the dense bitset form.
pub const SPARSE_MAX: usize = 48;

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted, deduplicated element vector.
    Sparse(Vec<u32>),
    /// Word-packed bitset with a cached population count.
    Dense { words: Vec<u64>, len: u32 },
}

/// A points-to set over `u32` object ids.
#[derive(Debug, Clone)]
pub struct Pts {
    repr: Repr,
}

impl Default for Pts {
    fn default() -> Self {
        Pts::new()
    }
}

impl Pts {
    /// An empty set.
    pub fn new() -> Self {
        Pts {
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the set uses the dense bitset representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match &self.repr {
            Repr::Sparse(s) => s.binary_search(&v).is_ok(),
            Repr::Dense { words, .. } => {
                let w = (v / 64) as usize;
                w < words.len() && words[w] & (1u64 << (v % 64)) != 0
            }
        }
    }

    /// Inserts `v`; returns whether it was new.
    pub fn insert(&mut self, v: u32) -> bool {
        match &mut self.repr {
            Repr::Sparse(s) => match s.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    s.insert(pos, v);
                    if s.len() > SPARSE_MAX {
                        self.promote();
                    }
                    true
                }
            },
            Repr::Dense { words, len } => {
                let w = (v / 64) as usize;
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let bit = 1u64 << (v % 64);
                if words[w] & bit != 0 {
                    false
                } else {
                    words[w] |= bit;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Moves the set out, leaving an empty one.
    pub fn take(&mut self) -> Pts {
        std::mem::take(self)
    }

    fn promote(&mut self) {
        if let Repr::Sparse(s) = &self.repr {
            let max = s.last().copied().unwrap_or(0);
            let mut words = vec![0u64; (max / 64 + 1) as usize];
            for &v in s {
                words[(v / 64) as usize] |= 1u64 << (v % 64);
            }
            let len = s.len() as u32;
            self.repr = Repr::Dense { words, len };
        }
    }

    /// Ascending-order iterator over the elements.
    pub fn iter(&self) -> PtsIter<'_> {
        match &self.repr {
            Repr::Sparse(s) => PtsIter::Sparse(s.iter()),
            Repr::Dense { words, .. } => PtsIter::Dense {
                words,
                wi: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Unions `other` into `self` (uncounted); returns how many elements
    /// were new.
    pub fn union_with(&mut self, other: &Pts) -> u32 {
        if other.is_empty() {
            return 0;
        }
        if let (Repr::Dense { words, len }, Repr::Dense { words: ow, .. }) =
            (&mut self.repr, &other.repr)
        {
            if words.len() < ow.len() {
                words.resize(ow.len(), 0);
            }
            let mut added = 0u32;
            for (w, o) in words.iter_mut().zip(ow.iter()) {
                let new = o & !*w;
                added += new.count_ones();
                *w |= new;
            }
            *len += added;
            return added;
        }
        let mut added = 0;
        for v in other.iter() {
            added += self.insert(v) as u32;
        }
        added
    }

    /// Keeps only elements also in `other`.
    pub fn intersect_with(&mut self, other: &Pts) {
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(s), _) => s.retain(|&v| other.contains(v)),
            (Repr::Dense { words, len }, Repr::Dense { words: ow, .. }) => {
                let mut n = 0u32;
                for (i, w) in words.iter_mut().enumerate() {
                    *w &= ow.get(i).copied().unwrap_or(0);
                    n += w.count_ones();
                }
                *len = n;
            }
            (Repr::Dense { words, len }, Repr::Sparse(_)) => {
                let mut n = 0u32;
                for (i, w) in words.iter_mut().enumerate() {
                    let mut keep = 0u64;
                    let mut bits = *w;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        let v = i as u32 * 64 + b;
                        if other.contains(v) {
                            keep |= 1u64 << b;
                        }
                    }
                    *w = keep;
                    n += keep.count_ones();
                }
                *len = n;
            }
        }
    }

    /// Clears the bits of `mask` inside 64-element block `word`
    /// (elements `word*64 .. word*64+63`), returning the mask of bits that
    /// were actually present and removed. The rollback primitive of the
    /// epoch solver's budget reconciliation: insertion logs record
    /// `(word, bits)` pairs, so truncating to an exact budget is a walk of
    /// the log suffix clearing each entry's bits again.
    pub fn clear_bits(&mut self, word: u32, mask: u64) -> u64 {
        match &mut self.repr {
            Repr::Sparse(s) => {
                let mut hit = 0u64;
                let mut bits = mask;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let v = word * 64 + b;
                    if let Ok(pos) = s.binary_search(&v) {
                        s.remove(pos);
                        hit |= 1u64 << b;
                    }
                }
                hit
            }
            Repr::Dense { words, len } => {
                let w = word as usize;
                if w >= words.len() {
                    return 0;
                }
                let hit = words[w] & mask;
                words[w] &= !mask;
                *len -= hit.count_ones();
                hit
            }
        }
    }

    /// Removes every element also in `other`.
    pub fn subtract(&mut self, other: &Pts) {
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(s), _) => s.retain(|&v| !other.contains(v)),
            (Repr::Dense { words, len }, Repr::Dense { words: ow, .. }) => {
                let mut n = 0u32;
                for (i, w) in words.iter_mut().enumerate() {
                    *w &= !ow.get(i).copied().unwrap_or(0);
                    n += w.count_ones();
                }
                *len = n;
            }
            (Repr::Dense { words, len }, Repr::Sparse(o)) => {
                for &v in o {
                    let wi = (v / 64) as usize;
                    if wi < words.len() {
                        let bit = 1u64 << (v % 64);
                        if words[wi] & bit != 0 {
                            words[wi] &= !bit;
                            *len -= 1;
                        }
                    }
                }
            }
        }
    }
}

/// Flows `src` into a node split as `dst_old`/`dst_delta`: every element
/// of `src` in neither set is inserted into `dst_delta`, at most `limit`
/// of them. Returns `(added, truncated)` where `truncated` means the
/// limit was reached *and* at least one further new element exists — the
/// solver's exact-budget semantics: a flow that needs exactly `limit`
/// insertions is not a truncation.
pub fn flow_into(src: &Pts, dst_old: &Pts, dst_delta: &mut Pts, limit: u64) -> (u64, bool) {
    if src.is_empty() {
        return (0, false);
    }
    // Word-at-a-time fast path: no truncation possible, all dense.
    if limit >= src.len() as u64 {
        if let (Repr::Dense { words: sw, .. }, Repr::Dense { words: ow, .. }) =
            (&src.repr, &dst_old.repr)
        {
            if dst_delta.is_empty() || dst_delta.is_dense() {
                if !dst_delta.is_dense() {
                    dst_delta.promote();
                }
                if let Repr::Dense { words: dw, len } = &mut dst_delta.repr {
                    if dw.len() < sw.len() {
                        dw.resize(sw.len(), 0);
                    }
                    let mut added = 0u64;
                    for (i, s) in sw.iter().enumerate() {
                        let o = ow.get(i).copied().unwrap_or(0);
                        let new = s & !o & !dw[i];
                        added += u64::from(new.count_ones());
                        dw[i] |= new;
                    }
                    *len += added as u32;
                    return (added, false);
                }
            }
        }
        let mut added = 0u64;
        for v in src.iter() {
            if !dst_old.contains(v) && dst_delta.insert(v) {
                added += 1;
            }
        }
        return (added, false);
    }
    // Budget-limited path: insert ascending, stop element-exactly.
    let mut added = 0u64;
    for v in src.iter() {
        if dst_old.contains(v) || dst_delta.contains(v) {
            continue;
        }
        if added == limit {
            return (added, true);
        }
        dst_delta.insert(v);
        added += 1;
    }
    (added, false)
}

/// One insertion-log record of [`flow_into_logged`]: the bits of 64-element
/// block `word` newly inserted into node `node`'s delta. Entries are
/// appended in insertion order (ascending words within one flow, ascending
/// elements within one word), so a log prefix is exactly "the first k
/// insertions" — the property the epoch solver's budget rollback needs.
#[derive(Debug, Clone, Copy)]
pub struct FlowLogEntry {
    /// Canonical node id the insertion targeted.
    pub node: u32,
    /// 64-element block index (element ids `word*64 ..= word*64+63`).
    pub word: u32,
    /// The newly inserted bits of that block (disjoint from every earlier
    /// entry for the same `(node, word)`: inserts are monotone).
    pub bits: u64,
}

/// The number of insertions a log entry records.
pub fn log_entry_count(e: &FlowLogEntry) -> u64 {
    u64::from(e.bits.count_ones())
}

/// The lowest `k` set bits of `bits` (`k` must be ≤ the population count).
/// Rollback keeps the first `k` insertions of a word-granular log entry;
/// ascending insertion order makes those exactly the lowest set bits.
pub fn lowest_set_bits(mut bits: u64, k: u32) -> u64 {
    let mut kept = 0u64;
    for _ in 0..k {
        let b = bits & bits.wrapping_neg();
        kept |= b;
        bits ^= b;
    }
    kept
}

/// [`flow_into`] without a limit but with a word-granular insertion log:
/// every element of `src` in neither `dst_old` nor `dst_delta` is inserted
/// into `dst_delta` and recorded in `log` (tagged with `target`). Returns
/// the number of insertions. The epoch solver flows unlimited inside a
/// flow phase and reconciles against the budget at the barrier, rolling
/// back a log suffix when the epoch overshot — which keeps the
/// word-at-a-time fast path *and* element-exact truncation semantics.
pub fn flow_into_logged(
    src: &Pts,
    dst_old: &Pts,
    dst_delta: &mut Pts,
    target: u32,
    log: &mut Vec<FlowLogEntry>,
) -> u64 {
    if src.is_empty() {
        return 0;
    }
    // Word-at-a-time fast path (mirrors `flow_into`'s): all dense.
    if let (Repr::Dense { words: sw, .. }, Repr::Dense { words: ow, .. }) =
        (&src.repr, &dst_old.repr)
    {
        if dst_delta.is_empty() || dst_delta.is_dense() {
            if !dst_delta.is_dense() {
                dst_delta.promote();
            }
            if let Repr::Dense { words: dw, len } = &mut dst_delta.repr {
                if dw.len() < sw.len() {
                    dw.resize(sw.len(), 0);
                }
                let mut added = 0u64;
                for (i, s) in sw.iter().enumerate() {
                    let o = ow.get(i).copied().unwrap_or(0);
                    let new = s & !o & !dw[i];
                    if new != 0 {
                        added += u64::from(new.count_ones());
                        dw[i] |= new;
                        log.push(FlowLogEntry {
                            node: target,
                            word: i as u32,
                            bits: new,
                        });
                    }
                }
                *len += added as u32;
                return added;
            }
        }
    }
    let mut added = 0u64;
    for v in src.iter() {
        if !dst_old.contains(v) && dst_delta.insert(v) {
            log.push(FlowLogEntry {
                node: target,
                word: v / 64,
                bits: 1u64 << (v % 64),
            });
            added += 1;
        }
    }
    added
}

/// [`flow_into`]'s limit semantics *and* [`flow_into_logged`]'s insertion
/// log: the provenance-tracking sequential path of the solver, which must
/// stay budget-exact like `flow_into` while still learning exactly which
/// elements it inserted so blame can be assigned to them. Returns
/// `(added, truncated)` with `flow_into`'s exact-limit contract.
pub fn flow_into_limited_logged(
    src: &Pts,
    dst_old: &Pts,
    dst_delta: &mut Pts,
    limit: u64,
    target: u32,
    log: &mut Vec<FlowLogEntry>,
) -> (u64, bool) {
    if src.is_empty() {
        return (0, false);
    }
    // No truncation possible: defer to the logged fast path.
    if limit >= src.len() as u64 {
        return (
            flow_into_logged(src, dst_old, dst_delta, target, log),
            false,
        );
    }
    // Budget-limited path: insert ascending, stop element-exactly
    // (mirrors `flow_into`'s limited path, logging each insertion).
    let mut added = 0u64;
    for v in src.iter() {
        if dst_old.contains(v) || dst_delta.contains(v) {
            continue;
        }
        if added == limit {
            return (added, true);
        }
        dst_delta.insert(v);
        log.push(FlowLogEntry {
            node: target,
            word: v / 64,
            bits: 1u64 << (v % 64),
        });
        added += 1;
    }
    (added, false)
}

/// Ascending iterator over a [`Pts`].
pub enum PtsIter<'a> {
    /// Sparse representation walk.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense representation walk (word scan).
    Dense {
        /// Backing words.
        words: &'a [u64],
        /// Current word index.
        wi: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
}

impl Iterator for PtsIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            PtsIter::Sparse(it) => it.next().copied(),
            PtsIter::Dense { words, wi, cur } => {
                while *cur == 0 {
                    *wi += 1;
                    if *wi >= words.len() {
                        return None;
                    }
                    *cur = words[*wi];
                }
                let b = cur.trailing_zeros();
                *cur &= *cur - 1;
                Some(*wi as u32 * 64 + b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(p: &Pts) -> Vec<u32> {
        p.iter().collect()
    }

    #[test]
    fn insert_contains_roundtrip_across_promotion() {
        let mut p = Pts::new();
        // Insert enough (out of order) to cross the promotion threshold.
        for v in (0..200u32).rev().step_by(3) {
            assert!(p.insert(v));
            assert!(!p.insert(v), "duplicate insert of {v}");
        }
        assert!(p.is_dense());
        // (0..200).rev().step_by(3) yields 199, 196, …, 1: v ≡ 1 (mod 3).
        for v in 0..200u32 {
            assert_eq!(p.contains(v), v % 3 == 1, "membership of {v}");
        }
        let got = collected(&p);
        let mut want: Vec<u32> = (0..200u32).rev().step_by(3).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(p.len(), want.len());
    }

    #[test]
    fn iteration_is_ascending_in_both_reprs() {
        let mut sparse = Pts::new();
        for v in [9, 3, 77, 0, 12] {
            sparse.insert(v);
        }
        assert!(!sparse.is_dense());
        assert_eq!(collected(&sparse), vec![0, 3, 9, 12, 77]);
        let mut dense = sparse.clone();
        for v in 100..160 {
            dense.insert(v);
        }
        assert!(dense.is_dense());
        let got = collected(&dense);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn union_counts_new_elements_only() {
        let mut a = Pts::new();
        let mut b = Pts::new();
        for v in 0..100 {
            a.insert(v);
        }
        for v in 50..150 {
            b.insert(v);
        }
        assert_eq!(a.union_with(&b), 50);
        assert_eq!(a.len(), 150);
        assert_eq!(a.union_with(&b), 0);
    }

    #[test]
    fn intersect_and_subtract() {
        let mk = |r: std::ops::Range<u32>| {
            let mut p = Pts::new();
            for v in r {
                p.insert(v);
            }
            p
        };
        for (x, y) in [(0..100, 50..150), (0..10, 5..15), (0..100, 90..95)] {
            let mut i = mk(x.clone());
            i.intersect_with(&mk(y.clone()));
            let want: Vec<u32> = x.clone().filter(|v| y.contains(v)).collect();
            assert_eq!(collected(&i), want);
            let mut d = mk(x.clone());
            d.subtract(&mk(y.clone()));
            let want: Vec<u32> = x.clone().filter(|v| !y.contains(v)).collect();
            assert_eq!(collected(&d), want);
        }
    }

    #[test]
    fn flow_respects_exact_limits() {
        let mut src = Pts::new();
        for v in 0..100 {
            src.insert(v);
        }
        let mut old = Pts::new();
        for v in 0..50 {
            old.insert(v);
        }
        // 50 genuinely new elements; a limit of exactly 50 is NOT a
        // truncation.
        let mut delta = Pts::new();
        let (added, truncated) = flow_into(&src, &old, &mut delta, 50);
        assert_eq!((added, truncated), (50, false));
        assert_eq!(delta.len(), 50);
        // One less stops element-exactly and reports truncation.
        let mut delta = Pts::new();
        let (added, truncated) = flow_into(&src, &old, &mut delta, 49);
        assert_eq!((added, truncated), (49, true));
        assert_eq!(collected(&delta), (50..99).collect::<Vec<u32>>());
        // Re-flowing the rest picks up where the budget stopped.
        let (added, truncated) = flow_into(&src, &old, &mut delta, 10);
        assert_eq!((added, truncated), (1, false));
    }

    #[test]
    fn clear_bits_round_trips_in_both_reprs() {
        for dense in [false, true] {
            let mut p = Pts::new();
            let mut inserted = vec![1u32, 5, 64, 70, 130];
            if dense {
                inserted.extend(200..260);
            }
            for &v in &inserted {
                p.insert(v);
            }
            assert_eq!(p.is_dense(), dense);
            // Clear 5 and 70 (+ a bit that was never present).
            let hit = p.clear_bits(0, (1 << 5) | (1 << 9));
            assert_eq!(hit, 1 << 5);
            let hit = p.clear_bits(1, 1 << 6);
            assert_eq!(hit, 1 << 6);
            assert!(!p.contains(5) && !p.contains(70));
            assert!(p.contains(1) && p.contains(64) && p.contains(130));
            assert_eq!(p.len(), inserted.len() - 2);
            // Clearing a block past the end is a no-op.
            assert_eq!(p.clear_bits(1000, u64::MAX), 0);
        }
    }

    #[test]
    fn lowest_set_bits_keeps_an_insertion_prefix() {
        let bits = (1u64 << 3) | (1 << 17) | (1 << 40) | (1 << 63);
        assert_eq!(lowest_set_bits(bits, 0), 0);
        assert_eq!(lowest_set_bits(bits, 1), 1 << 3);
        assert_eq!(lowest_set_bits(bits, 3), (1 << 3) | (1 << 17) | (1 << 40));
    }

    #[test]
    fn logged_flow_matches_unlogged_and_replays_exactly() {
        // Dense/dense (fast path) and sparse/sparse (element path) both
        // produce a log that sums to `added` and whose bits reconstruct
        // the delta change exactly.
        for scale in [1u32, 7] {
            let mut src = Pts::new();
            for v in (0..400).step_by(2) {
                src.insert(v * scale);
            }
            let mut old = Pts::new();
            for v in (0..400).step_by(3) {
                old.insert(v * scale);
            }
            let mut logged = Pts::new();
            let mut plain = Pts::new();
            let mut log = Vec::new();
            let added = flow_into_logged(&src, &old, &mut logged, 42, &mut log);
            let (added_plain, _) = flow_into(&src, &old, &mut plain, u64::MAX);
            assert_eq!(added, added_plain);
            assert_eq!(
                logged.iter().collect::<Vec<u32>>(),
                plain.iter().collect::<Vec<u32>>()
            );
            let log_total: u64 = log.iter().map(log_entry_count).sum();
            assert_eq!(log_total, added);
            // Rolling the whole log back restores the empty delta.
            for e in &log {
                assert_eq!(e.node, 42);
                assert_eq!(logged.clear_bits(e.word, e.bits), e.bits);
            }
            assert!(logged.is_empty());
        }
    }

    #[test]
    fn limited_logged_flow_matches_flow_into() {
        for (limit, dense) in [(49u64, false), (50, false), (200, true), (30, true)] {
            let mk = |step: usize, n: u32, dense: bool| {
                let mut p = Pts::new();
                let scale = if dense { 1 } else { 7 };
                for v in (0..n).step_by(step) {
                    p.insert(v * scale);
                }
                p
            };
            let src = mk(2, 400, dense);
            let old = mk(3, 400, dense);
            let mut plain = Pts::new();
            let mut logged = Pts::new();
            let mut log = Vec::new();
            let want = flow_into(&src, &old, &mut plain, limit);
            let got = flow_into_limited_logged(&src, &old, &mut logged, limit, 9, &mut log);
            assert_eq!(got, want, "limit={limit} dense={dense}");
            assert_eq!(
                logged.iter().collect::<Vec<u32>>(),
                plain.iter().collect::<Vec<u32>>()
            );
            let log_total: u64 = log.iter().map(log_entry_count).sum();
            assert_eq!(log_total, got.0);
            assert!(log.iter().all(|e| e.node == 9));
        }
    }

    #[test]
    fn flow_dense_fast_path_matches_slow_path() {
        let mut src = Pts::new();
        for v in (0..400).step_by(2) {
            src.insert(v);
        }
        let mut old = Pts::new();
        for v in (0..400).step_by(3) {
            old.insert(v);
        }
        let mut fast = Pts::new();
        for v in (0..400).step_by(5) {
            fast.insert(v);
        }
        let mut slow_seed: Vec<u32> = fast.iter().collect();
        let (added_fast, _) = flow_into(&src, &old, &mut fast, u64::MAX);
        // Reference computation.
        let mut slow: Vec<u32> = slow_seed.clone();
        for v in src.iter() {
            if !old.contains(v) && !slow_seed.contains(&v) && !slow.contains(&v) {
                slow.push(v);
            }
        }
        slow.sort_unstable();
        slow_seed.sort_unstable();
        assert_eq!(collected(&fast), slow);
        assert_eq!(added_fast as usize, slow.len() - slow_seed.len());
    }
}
