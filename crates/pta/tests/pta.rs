//! Behavioral tests for the points-to analysis: call-graph construction,
//! field sensitivity, the ⋆-smearing of dynamic property accesses, and
//! prototype-chain resolution.

use mujs_ir::ir::StmtKind;
use mujs_ir::{FuncId, Program, StmtId};
use mujs_pta::{solve, AbsObj, Node, PtaConfig, PtaResult, PtaStatus};

fn setup(src: &str) -> (Program, PtaResult) {
    let ast = mujs_syntax::parse(src).expect("parses");
    let prog = mujs_ir::lower_program(&ast);
    let result = solve(&prog, &PtaConfig::default());
    (prog, result)
}

fn func_named(prog: &Program, name: &str) -> FuncId {
    prog.funcs
        .iter()
        .find(|f| f.name.is_some_and(|n| prog.interner.resolve(n) == name))
        .unwrap_or_else(|| panic!("no function {name}"))
        .id
}

/// All call sites whose callee place reads the given source name — found
/// by scanning for `Copy tN <- name; Call tN(...)` pairs is brittle, so we
/// instead locate calls by the callee's *resolved* points-to: here we just
/// return every call site in the program.
fn call_sites(prog: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Call { .. } | StmtKind::New { .. }) {
                out.push(s.id);
            }
        });
    }
    out
}

fn global_var(prog: &Program, name: &str) -> Node {
    let sym = prog.interner.get(name).expect("name interned");
    Node::Prop(AbsObj::Global, sym)
}

#[test]
fn direct_call_resolves() {
    let (prog, r) = setup("function f() {} f();");
    let f = func_named(&prog, "f");
    let sites = call_sites(&prog);
    assert_eq!(sites.len(), 1);
    assert_eq!(r.callees(sites[0]), vec![f]);
}

#[test]
fn higher_order_call_resolves() {
    let (prog, r) = setup("function apply(g) { g(); }\nfunction target() {}\napply(target);");
    let target = func_named(&prog, "target");
    let sites = call_sites(&prog);
    // One of the sites (the inner g()) must resolve to `target`.
    assert!(sites.iter().any(|s| r.callees(*s) == vec![target]));
}

#[test]
fn closures_flow_through_object_fields() {
    let (prog, r) = setup("function m() {}\nvar o = {};\no.method = m;\no.method();");
    let m = func_named(&prog, "m");
    let sites = call_sites(&prog);
    assert!(sites.iter().any(|s| r.callees(*s).contains(&m)));
}

#[test]
fn field_sensitivity_distinguishes_static_names() {
    let (prog, r) =
        setup("function a() {}\nfunction b() {}\nvar o = {};\no.x = a;\no.y = b;\no.x();");
    let a = func_named(&prog, "a");
    let b = func_named(&prog, "b");
    let sites = call_sites(&prog);
    // The o.x() site sees only `a`.
    assert!(sites.iter().any(|s| r.callees(*s) == vec![a]));
    assert!(!sites
        .iter()
        .any(|s| r.callees(*s).contains(&b) && r.callees(*s).contains(&a)));
}

#[test]
fn dynamic_store_smears_to_static_reads() {
    // The Table 1 imprecision mechanism: the analysis does not track
    // string values, so o[k] = f reaches *every* read of o.
    let (prog, r) = setup(
        "function a() {}\nfunction b() {}\nvar o = {};\nvar k = \"x\" + \"\";\no[k] = a;\no.unrelated = b;\no.x();",
    );
    let a = func_named(&prog, "a");
    let sites = call_sites(&prog);
    let callee_sets: Vec<Vec<FuncId>> = sites.iter().map(|s| r.callees(*s)).collect();
    // The o.x() call must (imprecisely) include `a` via the smeared store.
    assert!(callee_sets.iter().any(|s| s.contains(&a)));
}

#[test]
fn dynamic_read_sees_all_static_stores() {
    let (prog, r) = setup(
        "function a() {}\nfunction b() {}\nvar o = { x: a, y: b };\nvar k = \"x\" + \"\";\no[k]();",
    );
    let a = func_named(&prog, "a");
    let b = func_named(&prog, "b");
    let sites = call_sites(&prog);
    // The dynamic call sees both a and b.
    assert!(sites
        .iter()
        .any(|s| r.callees(*s).contains(&a) && r.callees(*s).contains(&b)));
}

#[test]
fn static_accesses_do_not_smear() {
    let (prog, r) =
        setup("function a() {}\nfunction b() {}\nvar o = {};\no.x = a;\no.y = b;\no.y();");
    let a = func_named(&prog, "a");
    let sites = call_sites(&prog);
    // No site should see `a` together with... the o.y() site must be
    // monomorphic.
    let b = func_named(&prog, "b");
    assert!(sites.iter().any(|s| r.callees(*s) == vec![b]));
    assert!(!sites.iter().any(|s| r.callees(*s).contains(&a)));
}

#[test]
fn methods_via_prototype_chain() {
    let (prog, r) = setup(
        "function Rect() {}\nRect.prototype.area = function area() { return 1; };\nvar r0 = new Rect();\nr0.area();",
    );
    let area = func_named(&prog, "area");
    let sites = call_sites(&prog);
    assert!(sites.iter().any(|s| r.callees(*s).contains(&area)));
}

#[test]
fn constructor_this_receives_alloc() {
    let (prog, r) =
        setup("function Rect(w) { this.w = w; }\nvar obj = {};\nvar r0 = new Rect(obj);");
    let rect = func_named(&prog, "Rect");
    // `this` of Rect points to the allocation at the `new` site.
    let this_pts = r.points_to(&Node::This(rect));
    assert!(this_pts.iter().any(|o| matches!(o, AbsObj::Alloc(_))));
    // And the global r0 receives the same allocation.
    let r0 = r.points_to(&global_var(&prog, "r0"));
    assert!(r0.iter().any(|o| matches!(o, AbsObj::Alloc(_))));
}

#[test]
fn return_values_flow_to_callers() {
    let (prog, r) = setup("function mk() { return {}; } var o = mk();");
    let o = r.points_to(&global_var(&prog, "o"));
    assert!(o.iter().any(|x| matches!(x, AbsObj::Alloc(_))));
}

#[test]
fn throw_reaches_catch() {
    let (prog, r) = setup("var payload = {};\ntry { throw payload; } catch (e) { var got = e; }");
    let got = r.points_to(&global_var(&prog, "got"));
    assert!(got.iter().any(|x| matches!(x, AbsObj::Alloc(_))));
}

#[test]
fn eval_result_is_opaque() {
    let (prog, r) = setup("var x = eval(\"({})\");");
    let x = r.points_to(&global_var(&prog, "x"));
    assert_eq!(x, vec![AbsObj::Opaque]);
}

#[test]
fn budget_exhaustion_reports_timeout() {
    // A pathological program: N functions smeared into one object through
    // a dynamic store, then repeatedly dynamically read and re-stored into
    // more objects — with a tiny budget this must time out.
    let mut src = String::new();
    for i in 0..30 {
        src.push_str(&format!(
            "function f{i}() {{ return f{}; }}\n",
            (i + 1) % 30
        ));
    }
    src.push_str("var o = {};\nvar k = \"\" + \"x\";\n");
    for i in 0..30 {
        src.push_str(&format!("o[k + {i}] = f{i};\n"));
    }
    src.push_str("var h = o[k]; h()();\n");
    let ast = mujs_syntax::parse(&src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let tiny = solve(
        &prog,
        &PtaConfig {
            budget: 50,
            ..Default::default()
        },
    );
    assert_eq!(tiny.status, PtaStatus::BudgetExceeded);
    let full = solve(&prog, &PtaConfig::default());
    assert_eq!(full.status, PtaStatus::Completed);
    assert!(full.stats.propagations > 50);
}

#[test]
fn solver_is_deterministic() {
    let src = "function a(){} function b(){} var o = {x:a, y:b}; o.x()(); o.y();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let r1 = solve(&prog, &PtaConfig::default());
    let r2 = solve(&prog, &PtaConfig::default());
    assert_eq!(r1.stats.propagations, r2.stats.propagations);
    assert_eq!(r1.stats.edges, r2.stats.edges);
    for site in call_sites(&prog) {
        assert_eq!(r1.callees(site), r2.callees(site));
    }
}

#[test]
fn unreachable_functions_not_analyzed() {
    let (prog, r) = setup("function used() {}\nvar f = function unused() { deep(); };\nused();");
    let used = func_named(&prog, "used");
    let sites = call_sites(&prog);
    // The call inside `unused` resolves nothing because `deep` has no
    // binding; the important part: used() resolves and nothing panics.
    assert!(sites.iter().any(|s| r.callees(*s) == vec![used]));
}

#[test]
fn polymorphic_site_metric() {
    let (_, r) =
        setup("function a(){}\nfunction b(){}\nvar c = Math.random() < 0.5 ? a : b;\nc();");
    assert_eq!(r.polymorphic_sites(1), 1);
    assert_eq!(r.polymorphic_sites(2), 0);
}

#[test]
fn figure3_baseline_is_imprecise() {
    // The paper's §2.2 claim: 0-CFA treats the dynamic accessor writes as
    // possibly writing *any* property of Rectangle.prototype, so
    // r.getWidth() resolves to getter AND setter.
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
function defAccessors(prop) {
  Rectangle.prototype["get" + prop] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop] = function setter(v) { this[prop] = v; };
}
defAccessors("Width");
defAccessors("Height");
var r = new Rectangle(20, 30);
r.getWidth();
"#;
    let (prog, r) = setup(src);
    let getter = func_named(&prog, "getter");
    let setter = func_named(&prog, "setter");
    let sites = call_sites(&prog);
    // Some call site (r.getWidth()) imprecisely sees both.
    assert!(sites
        .iter()
        .any(|s| r.callees(*s).contains(&getter) && r.callees(*s).contains(&setter)));
}

#[test]
fn figure3_static_rewrite_is_precise() {
    // After the specializer's rewrite (simulated by hand here), the same
    // solver is precise: only the getter is invoked.
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.getWidth = function getter() { return this.width; };
Rectangle.prototype.setWidth = function setter(v) { this.width = v; };
var r = new Rectangle(20, 30);
r.getWidth();
"#;
    let (prog, r) = setup(src);
    let getter = func_named(&prog, "getter");
    let setter = func_named(&prog, "setter");
    let sites = call_sites(&prog);
    assert!(sites.iter().any(|s| r.callees(*s) == vec![getter]));
    assert!(!sites
        .iter()
        .any(|s| r.callees(*s).contains(&getter) && r.callees(*s).contains(&setter)));
}

// ---------------------------------------------------------------------
// Budget boundary semantics.
// ---------------------------------------------------------------------

fn sum_points_to(r: &PtaResult) -> usize {
    r.all_points_to().iter().map(|(_, pts)| pts.len()).sum()
}

#[test]
fn exact_budget_solve_completes() {
    let src = "function mk() { return {}; } var o = mk(); var p = mk();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let full = solve(&prog, &PtaConfig::default());
    assert_eq!(full.status, PtaStatus::Completed);
    let needed = full.stats.propagations;
    assert!(needed > 0);
    // A budget of exactly the required work is sufficient...
    let exact = solve(
        &prog,
        &PtaConfig {
            budget: needed,
            ..Default::default()
        },
    );
    assert_eq!(exact.status, PtaStatus::Completed);
    assert_eq!(exact.stats.propagations, needed);
    // ...and one less is not.
    let short = solve(
        &prog,
        &PtaConfig {
            budget: needed - 1,
            ..Default::default()
        },
    );
    assert_eq!(short.status, PtaStatus::BudgetExceeded);
    assert_eq!(short.stats.propagations, needed - 1);
}

#[test]
fn partial_result_is_queryable_and_consistent() {
    let src = "function a(){} function b(){} var o = {x:a, y:b}; o.x(); o.y();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let full = solve(&prog, &PtaConfig::default());
    // Every truncation point yields a queryable result whose recorded
    // propagation count equals the number of facts actually present.
    for budget in 0..full.stats.propagations {
        let partial = solve(
            &prog,
            &PtaConfig {
                budget,
                ..Default::default()
            },
        );
        assert_eq!(partial.status, PtaStatus::BudgetExceeded);
        assert_eq!(partial.stats.propagations, budget);
        assert_eq!(sum_points_to(&partial) as u64, budget);
        // Queries on the partial result never panic and only under-report.
        for site in call_sites(&prog) {
            let p = partial.callees(site);
            let f = full.callees(site);
            assert!(p.iter().all(|c| f.contains(c)));
        }
    }
    assert_eq!(sum_points_to(&full) as u64, full.stats.propagations);
}

// ---------------------------------------------------------------------
// Determinacy-fact injection.
// ---------------------------------------------------------------------

use mujs_pta::InjectedFacts;

fn dynamic_prop_sites(prog: &Program) -> Vec<StmtId> {
    use mujs_ir::ir::PropKey;
    let mut out = Vec::new();
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| match &s.kind {
            StmtKind::GetProp {
                key: PropKey::Dynamic(_),
                ..
            }
            | StmtKind::SetProp {
                key: PropKey::Dynamic(_),
                ..
            } => out.push(s.id),
            _ => {}
        });
    }
    out
}

#[test]
fn injected_prop_key_removes_smearing() {
    let src = "function a(){}\nfunction b(){}\nvar o = {x:a, y:b};\nvar k = \"x\" + \"\";\no[k]();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let a = func_named(&prog, "a");
    let b = func_named(&prog, "b");
    let dyn_sites = dynamic_prop_sites(&prog);
    assert_eq!(dyn_sites.len(), 1);

    let baseline = solve(&prog, &PtaConfig::default());
    let sites = call_sites(&prog);
    assert!(sites
        .iter()
        .any(|s| baseline.callees(*s).contains(&a) && baseline.callees(*s).contains(&b)));

    let mut facts = InjectedFacts::default();
    facts
        .prop_keys
        .insert(dyn_sites[0], prog.interner.get("x").unwrap());
    let injected = solve(
        &prog,
        &PtaConfig {
            facts: Some(facts),
            ..Default::default()
        },
    );
    assert_eq!(injected.stats.injected_keys, 1);
    // The call now sees only `a` — same precision as a source rewrite.
    assert!(sites.iter().any(|s| injected.callees(*s) == vec![a]));
    assert!(!sites.iter().any(|s| injected.callees(*s).contains(&b)));
}

#[test]
fn injected_callee_resolves_opaque_call() {
    // Baseline cannot see through eval: the call is unresolved and its
    // result opaque. A determinacy fact names the target exactly.
    let src = "function t() { return {}; }\nvar f = eval(\"t\");\nvar o = f();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let t = func_named(&prog, "t");
    let sites = call_sites(&prog);
    assert_eq!(sites.len(), 1);

    let baseline = solve(&prog, &PtaConfig::default());
    assert!(baseline.callees(sites[0]).is_empty());

    let mut facts = InjectedFacts::default();
    facts.callees.insert(sites[0], t);
    let injected = solve(
        &prog,
        &PtaConfig {
            facts: Some(facts),
            ..Default::default()
        },
    );
    assert_eq!(injected.stats.injected_calls, 1);
    assert_eq!(injected.callees(sites[0]), vec![t]);
    // The return value now flows to the caller.
    let o = injected.points_to(&global_var(&prog, "o"));
    assert!(o.iter().any(|x| matches!(x, AbsObj::Alloc(_))));
}

#[test]
fn deterministic_exports_are_byte_identical() {
    let src = "function a(){} function b(){} var o = {x:a, y:b}; o.x()(); o.y(); var z = new a();";
    let ast = mujs_syntax::parse(src).unwrap();
    let prog = mujs_ir::lower_program(&ast);
    let r1 = solve(&prog, &PtaConfig::default());
    let r2 = solve(&prog, &PtaConfig::default());
    assert_eq!(
        format!("{:?}", r1.all_points_to()),
        format!("{:?}", r2.all_points_to())
    );
    assert_eq!(
        format!("{:?}", r1.call_graph()),
        format!("{:?}", r2.call_graph())
    );
}

// ---------------------------------------------------------------------
// Budget boundaries under online cycle collapsing.
// ---------------------------------------------------------------------

/// A program with a genuine copy cycle feeding a call, so aggressive
/// collapsing (scan after every new copy edge) actually merges nodes.
fn cyclic_prog() -> Program {
    let src = "function f(){} function g(){}\n\
               var a = {x:f, y:g}; var b = a; var c = b; a = c;\n\
               var d = c.x; d();";
    let ast = mujs_syntax::parse(src).unwrap();
    mujs_ir::lower_program(&ast)
}

fn collapsing_cfg(budget: u64) -> PtaConfig {
    PtaConfig {
        budget,
        scc_interval: 1,
        ..Default::default()
    }
}

#[test]
fn exact_budget_completes_with_collapsing() {
    let prog = cyclic_prog();
    let full = solve(&prog, &collapsing_cfg(u64::MAX));
    assert_eq!(full.status, PtaStatus::Completed);
    assert!(full.stats.nodes_merged > 0, "cycle was not collapsed");
    let needed = full.stats.propagations;
    assert!(needed > 0);
    let exact = solve(&prog, &collapsing_cfg(needed));
    assert_eq!(exact.status, PtaStatus::Completed);
    assert_eq!(exact.stats.propagations, needed);
    let short = solve(&prog, &collapsing_cfg(needed - 1));
    assert_eq!(short.status, PtaStatus::BudgetExceeded);
    assert_eq!(short.stats.propagations, needed - 1);
}

#[test]
fn partial_results_queryable_under_collapsing() {
    let prog = cyclic_prog();
    let full = solve(&prog, &collapsing_cfg(u64::MAX));
    // Every truncation point yields a queryable, sound-under-full result.
    // Note: unlike the collapse-free case, Σ|pts| over all nodes may
    // exceed the propagation counter once nodes share a merged set, so we
    // only check the monotone under-reporting properties here.
    for budget in 0..full.stats.propagations {
        let partial = solve(&prog, &collapsing_cfg(budget));
        assert_eq!(partial.status, PtaStatus::BudgetExceeded);
        assert_eq!(partial.stats.propagations, budget);
        for site in call_sites(&prog) {
            let p = partial.callees(site);
            let f = full.callees(site);
            assert!(p.iter().all(|c| f.contains(c)));
        }
        for (node, pts) in partial.all_points_to() {
            let f = full.points_to(&node);
            assert!(pts.iter().all(|o| f.contains(o)));
        }
    }
}
