//! Root-cause triage over imprecision provenance.
//!
//! The blame-tracked pointer analysis ([`mujs_pta::PtaConfig::provenance`])
//! labels every points-to tuple with the *first cause* that introduced
//! it: a ⋆-node smear, an unmodeled native, an eval-lowered chunk, a
//! havoc edge, or plain (precise) constraint seeding. This pass turns
//! that raw relation into an actionable report: causes ranked by how
//! many tuples they account for, each mapped back to its program site
//! and — where the determinacy machinery has a remedy — to concrete
//! *fact-injection suggestions*: the dynamic-key access sites whose
//! property key would have to be proven determinate to kill a smear, or
//! the call site whose callee fact would de-opaque a native result.
//!
//! The report deliberately separates *imprecision* causes from the
//! precise baseline: tuples blamed on `base` (ordinary seeds and their
//! copy-closure) and `injected` (facts the dynamic analysis already
//! supplied) are counted but never ranked — the ranking answers "what
//! would I fix next", and those two are not broken.
//!
//! Suggested sites are cross-referenced by the `detblame` CLI against
//! `determinacy::injectable_facts`, which this crate cannot do itself
//! (the determinacy crate sits *above* this one in the dependency
//! order).

use mujs_ir::resolve::{Binding, Resolver};
use mujs_ir::{FuncId, Place, Program, PropKey, StmtId, StmtKind};
use mujs_pta::{AbsObj, BlameCause, Node, PtaResult};

/// What kind of determinacy fact would remove a root cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FixKind {
    /// A determinate property-key fact at a dynamic access site
    /// (the specializer's "making dynamic accesses static" rewrite).
    PropKey,
    /// A determinate callee fact at a call/new site.
    Callee,
}

impl FixKind {
    /// Stable lowercase name, used in rendered reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FixKind::PropKey => "prop-key",
            FixKind::Callee => "callee",
        }
    }
}

/// A concrete fact-injection site that would address a root cause.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suggestion {
    /// The fact kind to inject.
    pub fix: FixKind,
    /// The program point to inject at.
    pub site: StmtId,
    /// The function containing `site`.
    pub func: FuncId,
}

/// One ranked root cause of imprecision.
#[derive(Debug, Clone, PartialEq)]
pub struct RootCause {
    /// The blame cause (labeling one imprecision source).
    pub cause: BlameCause,
    /// Points-to tuples of the canonical relation first-caused by it.
    pub tuples: u64,
    /// The cause's own program site, when it has one (eval chunk,
    /// unmodeled native, injected fact).
    pub site: Option<StmtId>,
    /// The function the cause is anchored in: `site`'s owner, or the
    /// function itself for `arguments`-array causes.
    pub func: Option<FuncId>,
    /// Injection sites that would address this cause, deterministic
    /// (site, fix) order. Empty when no injectable remedy exists
    /// (havoc flow, `arguments` arrays) or when no live dynamic access
    /// reaches the smeared object.
    pub suggestions: Vec<Suggestion>,
}

/// The full triage report for one solved program.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// Tuples in the canonical points-to relation, total.
    pub total_tuples: u64,
    /// Tuples blamed on precise seeding/copy-closure (`base`).
    pub precise_tuples: u64,
    /// Tuples blamed on already-injected determinacy facts.
    pub injected_tuples: u64,
    /// Imprecision causes, most tuples first (ties: cause order),
    /// truncated to the requested `top_k`.
    pub causes: Vec<RootCause>,
    /// Distinct imprecision causes before truncation.
    pub distinct_causes: usize,
}

/// A dynamic-key property access and what its receiver may point to.
struct DynAccess {
    site: StmtId,
    func: FuncId,
    objs: Vec<AbsObj>,
}

/// Follows `specialized_from` links to the original function, mirroring
/// the solver's canonicalization of named bindings.
fn canon(prog: &Program, mut f: FuncId) -> FuncId {
    let mut fuel = 64;
    while let Some(orig) = prog.func(f).specialized_from {
        f = orig;
        fuel -= 1;
        if fuel == 0 {
            break;
        }
    }
    f
}

/// The pointer node a receiver place denotes, mirroring the solver's
/// `place_node` naming exactly (temps stay per-function, named places
/// resolve lexically and canonicalize specializer clones).
fn place_node(prog: &Program, resolver: &Resolver, func: FuncId, place: &Place) -> Node {
    match place {
        Place::Temp(t) => Node::Temp(func, t.0),
        p => {
            let name = p.as_var_sym().expect("non-temp place has a name");
            match resolver.resolve(prog, func, name) {
                Binding::Local(f) => Node::Local(canon(prog, f), name),
                Binding::Global => Node::Prop(AbsObj::Global, name),
            }
        }
    }
}

/// Every dynamic-key property access in the program, paired with the
/// solved points-to set of its receiver. These are the sites a
/// ⋆-smear can be traced back to: a smear of object `o` is fed by the
/// dynamic accesses whose receiver may be `o`.
fn dynamic_accesses(prog: &Program, result: &PtaResult) -> Vec<DynAccess> {
    let resolver = Resolver::new(prog);
    let mut out = Vec::new();
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| {
            let (obj, key) = match &s.kind {
                StmtKind::GetProp { obj, key, .. }
                | StmtKind::SetProp { obj, key, .. }
                | StmtKind::DeleteProp { obj, key, .. } => (obj, key),
                _ => return,
            };
            if !matches!(key, PropKey::Dynamic(_)) {
                return;
            }
            let objs = result.points_to(&place_node(prog, &resolver, f.id, obj));
            out.push(DynAccess {
                site: s.id,
                func: f.id,
                objs,
            });
        });
    }
    out
}

/// The function owning a statement, from the program's side tables.
fn func_of(prog: &Program, site: StmtId) -> Option<FuncId> {
    prog.stmt_info.get(site.0 as usize).map(|i| i.func)
}

/// Injection suggestions for one cause, in deterministic order.
fn suggest(prog: &Program, cause: &BlameCause, dyn_sites: &[DynAccess]) -> Vec<Suggestion> {
    let mut v = match cause {
        BlameCause::StarSmear(o) | BlameCause::UnknownSmear(o) => dyn_sites
            .iter()
            .filter(|d| d.objs.contains(o))
            .map(|d| Suggestion {
                fix: FixKind::PropKey,
                site: d.site,
                func: d.func,
            })
            .collect(),
        BlameCause::Native(site) => func_of(prog, *site)
            .map(|func| Suggestion {
                fix: FixKind::Callee,
                site: *site,
                func,
            })
            .into_iter()
            .collect(),
        // Eval chunks are addressed by eval elimination (a rewrite, not
        // a fact injection); havoc flow and `arguments` arrays have no
        // injectable remedy.
        _ => Vec::new(),
    };
    v.sort();
    v.dedup();
    v
}

/// Builds the ranked root-cause report for a provenance-tracked solve.
///
/// Returns `None` when `result` carries no blame (solved without
/// [`mujs_pta::PtaConfig::provenance`]). `top_k` bounds the ranked
/// cause list; counts always cover the full relation.
pub fn blame_report(prog: &Program, result: &PtaResult, top_k: usize) -> Option<BlameReport> {
    if !result.has_blame() {
        return None;
    }
    let hist = result.blame_histogram();
    let dyn_sites = dynamic_accesses(prog, result);
    let mut report = BlameReport {
        total_tuples: hist.iter().map(|(_, n)| n).sum(),
        precise_tuples: 0,
        injected_tuples: 0,
        causes: Vec::new(),
        distinct_causes: 0,
    };
    for (cause, tuples) in hist {
        match &cause {
            BlameCause::Base => {
                report.precise_tuples += tuples;
                continue;
            }
            BlameCause::Injected(_) => {
                report.injected_tuples += tuples;
                continue;
            }
            _ => {}
        }
        report.distinct_causes += 1;
        if report.causes.len() >= top_k {
            continue;
        }
        let site = cause.site();
        let func = match (&cause, site) {
            (BlameCause::Arguments(f), _) => Some(*f),
            (_, Some(s)) => func_of(prog, s),
            _ => None,
        };
        let suggestions = suggest(prog, &cause, &dyn_sites);
        report.causes.push(RootCause {
            cause,
            tuples,
            site,
            func,
            suggestions,
        });
    }
    Some(report)
}

/// Human-readable name of a function: its source name, or `<anon fN>`.
pub fn func_name(prog: &Program, f: FuncId) -> String {
    match prog.func(f).name {
        Some(s) => prog.interner.resolve(s).to_owned(),
        None => format!("<anon {f}>"),
    }
}

impl BlameReport {
    /// Deterministic JSON rendering of the report (insertion order =
    /// rank order), the machine surface of the `detblame` CLI.
    pub fn to_json(&self, prog: &Program) -> String {
        use std::fmt::Write;
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"total_tuples\":{},\"precise_tuples\":{},\"injected_tuples\":{},\
             \"distinct_causes\":{},\"causes\":[",
            self.total_tuples, self.precise_tuples, self.injected_tuples, self.distinct_causes
        );
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"label\":\"{}\",\"kind\":\"{}\",\"tuples\":{}",
                c.cause.label(),
                c.cause.kind(),
                c.tuples
            );
            if let Some(site) = c.site {
                let _ = write!(s, ",\"site\":{}", site.0);
            }
            if let Some(f) = c.func {
                let _ = write!(s, ",\"func\":\"{}\"", func_name(prog, f));
            }
            s.push_str(",\"suggest\":[");
            for (j, sg) in c.suggestions.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"fix\":\"{}\",\"site\":{},\"func\":\"{}\"}}",
                    sg.fix.as_str(),
                    sg.site.0,
                    func_name(prog, sg.func)
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Human-readable rendering: one ranked line per cause with its
    /// tuple count, anchor, and injection suggestions.
    pub fn render(&self, prog: &Program) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} tuples: {} precise, {} injected, {} from {} imprecision cause(s)",
            self.total_tuples,
            self.precise_tuples,
            self.injected_tuples,
            self.total_tuples - self.precise_tuples - self.injected_tuples,
            self.distinct_causes
        );
        for (i, c) in self.causes.iter().enumerate() {
            let anchor = match (c.site, c.func) {
                (Some(site), Some(f)) => format!(" at {site} in {}", func_name(prog, f)),
                (None, Some(f)) => format!(" in {}", func_name(prog, f)),
                _ => String::new(),
            };
            let _ = writeln!(
                s,
                "{:>3}. {:>8} tuples  {}{}",
                i + 1,
                c.tuples,
                c.cause.label(),
                anchor
            );
            for sg in &c.suggestions {
                let _ = writeln!(
                    s,
                    "       fix: inject {} fact at {} in {}",
                    sg.fix.as_str(),
                    sg.site,
                    func_name(prog, sg.func)
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mujs_pta::{solve, PtaConfig};

    fn solve_prov(src: &str) -> (Program, PtaResult) {
        let ast = mujs_syntax::parse(src).expect("parses");
        let prog = mujs_ir::lower_program(&ast);
        let cfg = PtaConfig {
            budget: u64::MAX,
            provenance: true,
            ..Default::default()
        };
        let r = solve(&prog, &cfg);
        (prog, r)
    }

    #[test]
    fn no_provenance_no_report() {
        let ast = mujs_syntax::parse("var x = {};").unwrap();
        let prog = mujs_ir::lower_program(&ast);
        let r = solve(&prog, &PtaConfig::default());
        assert!(blame_report(&prog, &r, 10).is_none());
    }

    #[test]
    fn smear_causes_suggest_the_feeding_dynamic_access() {
        let src = r#"
            function f() { return 1; }
            var o = {};
            o.p = f;
            var key = somethingUnknown;
            var got = o[key];
        "#;
        let (prog, r) = solve_prov(src);
        let report = blame_report(&prog, &r, 10).expect("blame present");
        assert!(report.total_tuples > 0);
        assert!(report.precise_tuples > 0);
        let smear = report
            .causes
            .iter()
            .find(|c| c.cause.kind() == "star-smear")
            .expect("the dynamic read smears");
        assert!(
            smear.suggestions.iter().any(|s| s.fix == FixKind::PropKey),
            "smear should point at the dynamic access: {smear:?}"
        );
        // The suggested site really is a dynamic-key access.
        let site = smear.suggestions[0].site;
        let mut found = false;
        for f in &prog.funcs {
            Program::walk_block(&f.body, &mut |s| {
                if s.id == site {
                    found = matches!(
                        &s.kind,
                        StmtKind::GetProp {
                            key: PropKey::Dynamic(_),
                            ..
                        } | StmtKind::SetProp {
                            key: PropKey::Dynamic(_),
                            ..
                        }
                    );
                }
            });
        }
        assert!(found, "suggested site {site} is not a dynamic access");
    }

    #[test]
    fn native_causes_suggest_callee_injection_and_report_is_deterministic() {
        let src = r#"
            var e = eval("f");
            var r = e();
        "#;
        let (prog, r) = solve_prov(src);
        let report = blame_report(&prog, &r, 10).expect("blame present");
        let native = report
            .causes
            .iter()
            .find(|c| c.cause.kind() == "native")
            .expect("calling an opaque value blames the native site");
        assert_eq!(native.suggestions.len(), 1);
        assert_eq!(native.suggestions[0].fix, FixKind::Callee);
        assert_eq!(Some(native.suggestions[0].site), native.cause.site());
        assert!(report.causes.iter().any(|c| c.cause.kind() == "eval"));
        // Ranked most-tuples-first and JSON round is stable.
        for w in report.causes.windows(2) {
            assert!(w[0].tuples >= w[1].tuples);
        }
        let (prog2, r2) = solve_prov(src);
        let again = blame_report(&prog2, &r2, 10).unwrap();
        assert_eq!(report.to_json(&prog), again.to_json(&prog2));
        assert!(report.to_json(&prog).starts_with("{\"total_tuples\":"));
    }

    #[test]
    fn top_k_truncates_but_counts_everything() {
        let src = r#"
            var key = somethingUnknown;
            var a = { x: 1 }; var b = { y: 2 };
            a.p = b; b.q = a;
            var g1 = a[key]; var g2 = b[key];
            var e = eval("1");
        "#;
        let (prog, r) = solve_prov(src);
        let full = blame_report(&prog, &r, usize::MAX).unwrap();
        let cut = blame_report(&prog, &r, 1).unwrap();
        assert!(full.causes.len() > 1);
        assert_eq!(cut.causes.len(), 1);
        assert_eq!(cut.distinct_causes, full.causes.len());
        assert_eq!(cut.causes[0], full.causes[0]);
        assert_eq!(cut.total_tuples, full.total_tuples);
    }
}
