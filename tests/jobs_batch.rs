//! Cross-crate integration of the job subsystem: the pooled APIs must be
//! drop-in replacements for the sequential ones (same bytes out), and the
//! manifest layer must round-trip through JSON and cover the corpus
//! suites.

use determinacy::multirun::{analyze_many, export_json};
use determinacy::{AnalysisConfig, DetHarness};
use mujs_jobs::{
    analyze_many_pooled, run_manifest, run_manifest_with, BatchOptions, Checkpoint, JobPool,
    JobSpec, Manifest, RetryPolicy,
};

const BRANCHY: &str = "var coin = Math.random() < 0.5;\n\
                       function pick(v) { var slot = v; return slot; }\n\
                       if (coin) { pick(1); } else { pick(2); }\n\
                       var stable = pick(3);";

#[test]
fn pooled_fanout_is_a_drop_in_for_analyze_many() {
    let seeds: Vec<u64> = (100..110).collect();
    let mut h = DetHarness::from_src(BRANCHY).unwrap();
    let sequential = analyze_many(&mut h, &seeds, AnalysisConfig::default());
    for workers in [1, 4] {
        let pooled = analyze_many_pooled(
            BRANCHY,
            &seeds,
            AnalysisConfig::default(),
            None,
            &mujs_dom::events::EventPlan::new(),
            &JobPool::new(workers),
        )
        .unwrap();
        assert_eq!(
            export_json(&pooled.facts, &h.program, &h.source, &pooled.ctxs),
            export_json(&sequential.facts, &h.program, &h.source, &sequential.ctxs),
            "{workers} workers must reproduce the sequential export"
        );
    }
}

#[test]
fn manifests_round_trip_through_json() {
    let m = Manifest::new(vec![
        JobSpec {
            seeds: Some(vec![3, 5]),
            deadline_ms: Some(60_000),
            mem_cells: Some(4_000_000),
            ..JobSpec::new("first", BRANCHY)
        },
        JobSpec::new("second", "var x = 1;"),
    ]);
    let json = m.to_json();
    let back = Manifest::from_json(&json).expect("round-trips");
    assert_eq!(back.jobs.len(), 2);
    assert_eq!(back.jobs[0].name, "first");
    assert_eq!(back.jobs[0].effective_seeds(), vec![3, 5]);
    assert_eq!(back.jobs[0].effective_config().deadline_ms, Some(60_000));
    assert_eq!(
        back.jobs[0].effective_config().mem_cell_budget,
        Some(4_000_000)
    );
    // Defaults survive omission.
    assert_eq!(
        back.jobs[1].effective_seeds(),
        vec![AnalysisConfig::default().seed]
    );
}

#[test]
fn corpus_suites_build_valid_manifests() {
    let jq = Manifest::suite("jquery").expect("jquery suite");
    let ev = Manifest::suite("evalbench").expect("evalbench suite");
    let all = Manifest::suite("all").expect("all suite");
    assert_eq!(jq.jobs.len(), 4);
    assert_eq!(ev.jobs.len(), 24);
    assert_eq!(all.jobs.len(), jq.jobs.len() + ev.jobs.len());
    assert!(Manifest::suite("nope").is_none());
}

#[test]
fn small_batches_are_schedule_independent_end_to_end() {
    let mut jobs = vec![
        JobSpec {
            seeds: Some(vec![1, 2, 3]),
            ..JobSpec::new("branchy", BRANCHY)
        },
        JobSpec::new("straight", "var a = 1; var b = a + 1;"),
    ];
    for (name, src) in mujs_corpus::evalbench::named_sources().into_iter().take(2) {
        jobs.push(JobSpec::new(name, src));
    }
    let m = Manifest::new(jobs);
    let base = run_manifest(&m, &JobPool::new(1)).report_json(true);
    for workers in [2, 8] {
        assert_eq!(
            base,
            run_manifest(&m, &JobPool::new(workers)).report_json(true),
            "report must be byte-identical at {workers} workers"
        );
    }
}

/// The campaign-hardened path composes end to end across crates: a
/// checkpointed run over a manifest prefix (an "interrupted" campaign)
/// resumes into the full manifest with byte-identical output, retries
/// armed, and stats counters on the side.
#[test]
fn interrupted_campaigns_resume_byte_identically_end_to_end() {
    let mut jobs = vec![
        JobSpec {
            seeds: Some(vec![1, 2]),
            ..JobSpec::new("branchy", BRANCHY)
        },
        JobSpec::new("straight", "var a = 1; var b = a + 1;"),
    ];
    for (name, src) in mujs_corpus::evalbench::named_sources().into_iter().take(2) {
        jobs.push(JobSpec::new(name, src));
    }
    let full = Manifest::new(jobs);
    let baseline = run_manifest(&full, &JobPool::new(2)).report_json(true);

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("root-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("ck.json");
    let prefix = Manifest::new(full.jobs[..2].to_vec());
    run_manifest_with(
        &prefix,
        &JobPool::new(2),
        &BatchOptions {
            checkpoint_path: Some(ckpt.clone()),
            ..Default::default()
        },
    );
    let resumed = run_manifest_with(
        &full,
        &JobPool::new(2),
        &BatchOptions {
            retry: RetryPolicy::attempts(3),
            resume: Some(Checkpoint::load(&ckpt).expect("checkpoint parses")),
            ..Default::default()
        },
    );
    assert_eq!(baseline, resumed.report_json(true));
    assert!(resumed.jobs[..2].iter().all(|j| j.attempts == 0));
    assert!(resumed.jobs[2..].iter().all(|j| j.attempts == 1));
    let stats = resumed.stats_json();
    assert!(stats.contains("\"restored\": 2"), "{stats}");
    std::fs::remove_dir_all(&dir).ok();
}
