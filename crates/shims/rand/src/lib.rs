//! Offline stand-in for the `rand` crate.
//!
//! The workspace cannot fetch crates.io dependencies, so this shim provides
//! exactly the surface the repo uses: a clonable, seedable `StdRng` and an
//! `Rng::gen::<T>()` for the primitive types drawn from it. The generator is
//! SplitMix64 — not the real `StdRng` stream, but deterministic, seedable,
//! and statistically fine for `Math.random` modeling and test-input
//! generation. Both machines (concrete and instrumented) use this same
//! stream, so seed-for-seed agreement between them is preserved.

pub mod rngs {
    pub use crate::StdRng;
}

/// Seeding entry point (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up scramble so nearby seeds (0, 1, 2, ...) diverge
        // immediately.
        let mut r = StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        let _ = r.next_u64();
        r
    }
}

impl StdRng {
    /// The raw 64-bit step (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types drawable from the generator via [`Rng::gen`].
pub trait SampleUniform: Sized {
    /// Derives a value from one 64-bit draw.
    fn from_bits(bits: u64) -> Self;
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl SampleUniform for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl SampleUniform for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}
impl SampleUniform for u8 {
    fn from_bits(bits: u64) -> u8 {
        (bits >> 56) as u8
    }
}
impl SampleUniform for u16 {
    fn from_bits(bits: u64) -> u16 {
        (bits >> 48) as u16
    }
}
impl SampleUniform for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}
impl SampleUniform for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}
impl SampleUniform for usize {
    fn from_bits(bits: u64) -> usize {
        bits as usize
    }
}
impl SampleUniform for i8 {
    fn from_bits(bits: u64) -> i8 {
        (bits >> 56) as i8
    }
}
impl SampleUniform for i16 {
    fn from_bits(bits: u64) -> i16 {
        (bits >> 48) as i16
    }
}
impl SampleUniform for i32 {
    fn from_bits(bits: u64) -> i32 {
        (bits >> 32) as i32
    }
}
impl SampleUniform for i64 {
    fn from_bits(bits: u64) -> i64 {
        bits as i64
    }
}

/// Value-drawing subset of `rand::Rng`.
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_bits(&mut self) -> u64;

    /// Draws a value of type `T`.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::from_bits(self.next_bits())
    }

    /// Uniform draw in `[low, high)` (u64 domain).
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(low < high);
        low + self.next_bits() % (high - low)
    }
}

impl Rng for StdRng {
    fn next_bits(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let a: f64 = StdRng::seed_from_u64(0).gen();
        let b: f64 = StdRng::seed_from_u64(1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = StdRng::seed_from_u64(3);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
