//! Shard-local state and the per-shard flow kernel of the epoch-sharded
//! parallel solver (`crate::parallel`).
//!
//! The constraint graph is partitioned into [`crate::PtaConfig::shards`]
//! contiguous canonical-node-id ranges (recomputed at every epoch
//! barrier, after union-find compression). A shard owns the `old`/`delta`
//! sets and dirty flags of its range; during a flow phase it cascades its
//! local worklist to exhaustion, mutating *only* owned rows. Facts
//! destined for foreign nodes are buffered as [`ShardMsg`]s and delivered
//! at the next barrier — cross-shard effects are therefore invisible
//! within an epoch, which is what makes the schedule (thread count,
//! shard→worker assignment, interleaving) unobservable: each shard's work
//! is a pure function of the barrier state.
//!
//! Budget accounting is deferred to the barrier: every insertion is
//! recorded in a word-granular [`FlowLogEntry`] log whose order respects
//! shard-local causality, so the barrier can either accept the epoch's
//! insertions wholesale or roll back an exact suffix to land on the
//! configured budget to the element.
//!
//! Under provenance the same logs double as the blame-assignment stream:
//! after each flow the kernel walks the entries it just appended and
//! records a first-cause tag for every inserted tuple — read from the
//! (owned) source row for local flows, or from the blame payload a
//! message's sender precomputed for cross-shard flows. Blame rows obey
//! the same ownership protocol as the sets, and the interned tag table is
//! frozen during flow phases, so blame is exactly as
//! schedule-independent as the sets themselves.

use crate::blame::outflow;
use crate::hash::FastMap;
use crate::pts::{flow_into_logged, FlowLogEntry, Pts};
use std::collections::VecDeque;

/// A cross-shard delta: `objs` flowed along an edge into `target`
/// (canonical at send time; re-canonicalized at routing and delivery,
/// since a barrier collapse pass may merge it away).
#[derive(Debug)]
pub(crate) struct ShardMsg {
    pub target: u32,
    pub objs: Pts,
    /// Outflow blame tags of `objs`, as `(obj, tag)` sorted ascending by
    /// object (empty when provenance is off). Computed by the *sender*
    /// from its owned source row, so delivery needs no foreign reads.
    pub blame: Vec<(u32, u32)>,
}

/// Per-shard mutable state, owned by the epoch driver between phases and
/// by exactly one worker during a flow phase.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// Owned dirty nodes to cascade this epoch (ascending at seed time).
    pub worklist: VecDeque<u32>,
    /// Foreign deltas routed to this shard at the last barrier.
    pub inbox: Vec<ShardMsg>,
    /// Outgoing deltas, indexed by destination shard.
    pub outbox: Vec<Vec<ShardMsg>>,
    /// Word-granular insertion log, in shard-local causal order.
    pub log: Vec<FlowLogEntry>,
    /// Deltas committed on nodes carrying pending constraints; the
    /// barrier applies the pendings to exactly these objects, in
    /// (shard, commit) order.
    pub commits: Vec<(u32, Pts)>,
    /// Insertions this epoch (= the log's total population count).
    pub added: u64,
}

impl ShardState {
    pub(crate) fn new(nshards: usize) -> Self {
        ShardState {
            worklist: VecDeque::new(),
            inbox: Vec::new(),
            outbox: (0..nshards).map(|_| Vec::new()).collect(),
            log: Vec::new(),
            commits: Vec::new(),
            added: 0,
        }
    }
}

/// Raw pointers into the solver's node-indexed columns, valid for one
/// flow phase. The driver moves the backing `Vec`s out of the solver,
/// publishes this view, waits for every shard task to finish, and moves
/// them back — no reallocation can happen while the view is live because
/// flow phases never create nodes.
///
/// # Safety protocol
///
/// * `parent`, `edges`, `has_pending`, and `stamp` are read-only for
///   everyone, and so is the interned tag table behind the blame tags
///   (interning is barrier-only).
/// * `old`, `delta`, `on_dirty`, and `blame` rows may be touched only by
///   the owner of the row's (canonical) index: shard `i` owns indices
///   `[i*chunk, (i+1)*chunk)`. [`run_shard`] upholds this — it reads and
///   writes sets and blame rows only for nodes it owns and buffers
///   everything else (cross-shard blame travels precomputed inside
///   [`ShardMsg`]).
/// * The driver synchronizes phase start/end with a mutex, so writes are
///   ordered with its own accesses.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NodeView {
    pub old: *mut Pts,
    pub delta: *mut Pts,
    pub on_dirty: *mut bool,
    pub parent: *const u32,
    pub edges: *const Vec<u32>,
    pub has_pending: *const bool,
    /// Per-node blame rows (`obj → tag`); dangling when `prov` is off.
    pub blame: *mut FastMap<u32, u32>,
    /// Per-node havoc outflow stamps; dangling when `prov` is off.
    pub stamp: *const u32,
    /// Whether provenance is being tracked this solve.
    pub prov: bool,
    /// Nodes per shard: `ceil(n / shards)`, ≥ 1.
    pub chunk: u32,
    /// Total node count (for debug assertions).
    pub n: usize,
}

unsafe impl Send for NodeView {}
unsafe impl Sync for NodeView {}

impl NodeView {
    /// The shard owning canonical node `id` under this epoch's ranges.
    #[inline]
    pub(crate) fn owner(&self, id: u32) -> usize {
        (id / self.chunk) as usize
    }

    /// Canonical representative of `x`. The parent table is fully
    /// compressed at every barrier, so one read-only hop suffices (no
    /// path mutation — the table is shared read-only across shards).
    #[inline]
    unsafe fn find(&self, x: u32) -> u32 {
        debug_assert!((x as usize) < self.n);
        *self.parent.add(x as usize)
    }

    #[inline]
    unsafe fn old(&self, i: u32) -> &Pts {
        &*self.old.add(i as usize)
    }

    #[inline]
    #[allow(clippy::mut_from_ref)] // sound under the view's ownership protocol
    unsafe fn old_mut(&self, i: u32) -> &mut Pts {
        &mut *self.old.add(i as usize)
    }

    #[inline]
    #[allow(clippy::mut_from_ref)] // sound under the view's ownership protocol
    unsafe fn delta_mut(&self, i: u32) -> &mut Pts {
        &mut *self.delta.add(i as usize)
    }

    #[inline]
    unsafe fn edges(&self, i: u32) -> &[u32] {
        &*self.edges.add(i as usize)
    }

    #[inline]
    unsafe fn has_pending(&self, i: u32) -> bool {
        *self.has_pending.add(i as usize)
    }

    #[inline]
    unsafe fn dirty_flag(&self, i: u32) -> bool {
        *self.on_dirty.add(i as usize)
    }

    #[inline]
    unsafe fn set_dirty_flag(&self, i: u32, v: bool) {
        *self.on_dirty.add(i as usize) = v;
    }

    #[inline]
    unsafe fn stamp_of(&self, i: u32) -> u32 {
        *self.stamp.add(i as usize)
    }

    #[inline]
    unsafe fn blame_row(&self, i: u32) -> &FastMap<u32, u32> {
        &*self.blame.add(i as usize)
    }

    #[inline]
    #[allow(clippy::mut_from_ref)] // sound under the view's ownership protocol
    unsafe fn blame_row_mut(&self, i: u32) -> &mut FastMap<u32, u32> {
        &mut *self.blame.add(i as usize)
    }
}

/// Assigns blame for a local flow out of owned node `src`: every tuple
/// `entries` records as newly inserted inherits `src`'s blame for it (or
/// `src`'s havoc stamp). Entry targets are owned by the running shard.
///
/// # Safety
///
/// Caller owns the rows of `src` and of every entry's target.
unsafe fn assign_blame_local(view: &NodeView, src: u32, entries: &[FlowLogEntry]) {
    let stamp = view.stamp_of(src);
    for e in entries {
        let mut bits = e.bits;
        while bits != 0 {
            let b = bits.trailing_zeros();
            bits &= bits - 1;
            let v = e.word * 64 + b;
            let tag = outflow(view.blame_row(src), stamp, v);
            view.blame_row_mut(e.node).entry(v).or_insert(tag);
        }
    }
}

/// Assigns blame for an inbox delivery: tags come from the message's
/// sender-side payload (sorted by object), not from any foreign row.
///
/// # Safety
///
/// Caller owns the rows of every entry's target.
unsafe fn assign_blame_msg(view: &NodeView, payload: &[(u32, u32)], entries: &[FlowLogEntry]) {
    for e in entries {
        let mut bits = e.bits;
        while bits != 0 {
            let b = bits.trailing_zeros();
            bits &= bits - 1;
            let v = e.word * 64 + b;
            let tag = match payload.binary_search_by_key(&v, |&(o, _)| o) {
                Ok(i) => payload[i].1,
                Err(_) => crate::blame::BASE_TAG,
            };
            view.blame_row_mut(e.node).entry(v).or_insert(tag);
        }
    }
}

/// The sender-side blame payload of a cross-shard message: the outflow
/// tag of every element of `d` leaving owned node `src`, ascending by
/// object (``d.iter()`` is ascending).
///
/// # Safety
///
/// Caller owns `src`'s row.
unsafe fn blame_payload(view: &NodeView, src: u32, d: &Pts) -> Vec<(u32, u32)> {
    let stamp = view.stamp_of(src);
    let row = view.blame_row(src);
    d.iter().map(|v| (v, outflow(row, stamp, v))).collect()
}

/// Runs shard `me`'s flow phase to local exhaustion: delivers the inbox,
/// then cascades the local worklist. Mirrors the sequential solver's
/// `process` (commit delta → old first, then flow along edges), except
/// that node/edge creation and pending application are barrier-only and
/// foreign targets receive buffered messages instead of direct writes.
///
/// # Safety
///
/// `view` must satisfy the [`NodeView`] protocol, `shard` must be the
/// exclusive [`ShardState`] for index `me`, and no other thread may touch
/// rows owned by `me` while this runs.
pub(crate) unsafe fn run_shard(view: &NodeView, shard: &mut ShardState, me: usize) {
    let inbox = std::mem::take(&mut shard.inbox);
    for msg in &inbox {
        let t = view.find(msg.target);
        debug_assert_eq!(view.owner(t), me, "message routed to the wrong shard");
        let log_start = shard.log.len();
        let added = flow_into_logged(&msg.objs, view.old(t), view.delta_mut(t), t, &mut shard.log);
        if added > 0 {
            if view.prov {
                assign_blame_msg(view, &msg.blame, &shard.log[log_start..]);
            }
            shard.added += added;
            if !view.dirty_flag(t) {
                view.set_dirty_flag(t, true);
                shard.worklist.push_back(t);
            }
        }
    }
    while let Some(n) = shard.worklist.pop_front() {
        debug_assert_eq!(view.owner(n), me);
        view.set_dirty_flag(n, false);
        let dn = view.delta_mut(n);
        if dn.is_empty() {
            continue;
        }
        let d = dn.take();
        view.old_mut(n).union_with(&d);
        if view.has_pending(n) {
            shard.commits.push((n, d.clone()));
        }
        for &t0 in view.edges(n) {
            let t = view.find(t0);
            if t == n {
                continue;
            }
            let dest = view.owner(t);
            if dest == me {
                let log_start = shard.log.len();
                let added = flow_into_logged(&d, view.old(t), view.delta_mut(t), t, &mut shard.log);
                if added > 0 {
                    if view.prov {
                        assign_blame_local(view, n, &shard.log[log_start..]);
                    }
                    shard.added += added;
                    if !view.dirty_flag(t) {
                        view.set_dirty_flag(t, true);
                        shard.worklist.push_back(t);
                    }
                }
            } else {
                shard.outbox[dest].push(ShardMsg {
                    target: t,
                    objs: d.clone(),
                    blame: if view.prov {
                        blame_payload(view, n, &d)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
    }
}
