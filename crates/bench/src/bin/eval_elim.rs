//! Regenerates the §5.2 eval-elimination study over the 24 runnable
//! benchmarks: how many programs have *all* their `eval` uses specialized
//! away, under the plain analysis and under DetDOM, with the failure
//! breakdown.
//!
//! Run with `cargo run -p mujs-bench --bin eval_elim --release`. Pass
//! `--workers N` to run the benchmarks as parallel jobs; rows print in
//! benchmark order either way.

use mujs_bench::{run_eval_elim, run_eval_elim_pooled, EvalElimRow};
use mujs_corpus::evalbench::{all, Expected};
use mujs_jobs::JobPool;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = match args.as_slice() {
        [] => 1usize,
        [flag, n] if flag == "--workers" => match n.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("usage: eval_elim [--workers N]");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: eval_elim [--workers N]");
            std::process::exit(2);
        }
    };

    let suite = all();
    let runnable: Vec<_> = suite.iter().filter(|b| b.runnable).collect();
    println!(
        "§5.2 eval elimination — {} benchmarks, {} runnable ({} excluded as in the paper)",
        suite.len(),
        runnable.len(),
        suite.len() - runnable.len()
    );
    println!();
    println!(
        "{:<24} {:<10} {:<10} {:<22} expected(DetDOM)",
        "benchmark", "plain", "DetDOM", "expected(plain)"
    );
    let rows: Vec<EvalElimRow> = if workers > 1 {
        let owned: Vec<_> = runnable.iter().map(|b| (*b).clone()).collect();
        run_eval_elim_pooled(owned, &JobPool::new(workers))
            .into_iter()
            .flatten()
            .collect()
    } else {
        runnable.iter().map(|b| run_eval_elim(b)).collect()
    };
    let mut plain_ok = 0;
    let mut detdom_ok = 0;
    let mut mismatches = 0;
    for (b, row) in runnable.iter().zip(&rows) {
        if row.plain_ok {
            plain_ok += 1;
        }
        if row.detdom_ok {
            detdom_ok += 1;
        }
        let exp_p = b.expected == Expected::Eliminated;
        let exp_d = b.expected_detdom == Expected::Eliminated;
        let marker = if row.plain_ok == exp_p && row.detdom_ok == exp_d {
            ""
        } else {
            "  <-- MISMATCH"
        };
        if !marker.is_empty() {
            mismatches += 1;
        }
        println!(
            "{:<24} {:<10} {:<10} {:<22} {:?}{}",
            b.name,
            if row.plain_ok { "handled" } else { "fails" },
            if row.detdom_ok { "handled" } else { "fails" },
            format!("{:?}", b.expected),
            b.expected_detdom,
            marker
        );
    }
    println!();
    println!(
        "plain analysis handles {plain_ok}/{} (paper: 14/24)",
        runnable.len()
    );
    println!(
        "DetDOM handles        {detdom_ok}/{} (paper: 20/24)",
        runnable.len()
    );
    if mismatches > 0 {
        println!("WARNING: {mismatches} benchmarks deviate from their expected outcome");
        std::process::exit(1);
    }
}
