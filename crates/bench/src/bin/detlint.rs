//! `detlint` — the IR structural linter as a command-line tool.
//!
//! Parses and lowers JavaScript sources, runs the `mujs-analysis`
//! validator over the lowered program, and reports every invariant
//! violation (exit 1 if any source fails to parse or validate). With
//! `--dataflow` it additionally runs the intraprocedural constant
//! propagation and reports how many statically determinate facts each
//! program yields.
//!
//! With `--json`, results stream as machine-readable line-JSON on
//! stdout — one object per linted source, carrying the status
//! (`ok` / `parse-error` / `violations`), the violation descriptions,
//! and (under `--dataflow`) the static-fact counts — so CI and editor
//! integrations can consume the linter without scraping its prose.
//!
//! ```console
//! $ cargo run -p mujs-bench --bin detlint -- examples/js
//! $ cargo run -p mujs-bench --bin detlint -- --corpus all --dataflow
//! $ cargo run -p mujs-bench --bin detlint -- --corpus table1 --json
//! ```

use mujs_analysis::{analyze_program, validate_program};
use serde_json::Value;
use std::path::{Path, PathBuf};

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detlint [--corpus table1|evalbench|all] [--dataflow] [--json] [PATH ...]\n\
         \x20  PATH: a .js file or a directory scanned for .js files\n\
         \x20  --json: one JSON object per source on stdout (line-JSON)"
    );
    std::process::exit(2);
}

fn js_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {}: {e}", path.display())))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            js_files(&e, out);
        }
    } else if path.extension().is_some_and(|x| x == "js") {
        out.push(path.to_owned());
    }
}

struct Report {
    checked: usize,
    failed: usize,
    json: bool,
}

/// Emits one line-JSON record for a linted source. Field order is fixed
/// so the stream is byte-deterministic for a given input set.
fn json_line(
    name: &str,
    status: &str,
    functions: usize,
    error: Option<&str>,
    violations: &[String],
    facts: Option<&mujs_analysis::StaticFacts>,
) {
    let num = |n: usize| Value::Num(n as f64);
    let mut fields = vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("status".to_owned(), Value::Str(status.to_owned())),
        ("functions".to_owned(), num(functions)),
    ];
    if let Some(e) = error {
        fields.push(("error".to_owned(), Value::Str(e.to_owned())));
    }
    fields.push((
        "violations".to_owned(),
        Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
    ));
    if let Some(f) = facts {
        fields.push((
            "static_facts".to_owned(),
            Value::Object(vec![
                ("total".to_owned(), num(f.len())),
                ("prop_keys".to_owned(), num(f.prop_keys.len())),
                ("callees".to_owned(), num(f.callees.len())),
                ("conds".to_owned(), num(f.conds.len())),
            ]),
        ));
    }
    let line = serde_json::to_string(&Value::Object(fields)).expect("lint row serializes");
    println!("{line}");
}

fn lint(name: &str, src: &str, dataflow: bool, report: &mut Report) {
    report.checked += 1;
    let lowered = mujs_syntax::with_parser_stack(|| {
        mujs_syntax::parse(src).map(|ast| mujs_ir::lower_program(&ast))
    });
    let prog = match lowered {
        Ok(p) => p,
        Err(e) => {
            if report.json {
                json_line(name, "parse-error", 0, Some(&e.to_string()), &[], None);
            } else {
                eprintln!("{name}: parse error: {e}");
            }
            report.failed += 1;
            return;
        }
    };
    let violations = validate_program(&prog);
    let described: Vec<String> = violations.iter().map(|v| v.describe(&prog)).collect();
    let facts = dataflow.then(|| analyze_program(&prog));
    if report.json {
        let status = if described.is_empty() {
            "ok"
        } else {
            "violations"
        };
        json_line(
            name,
            status,
            prog.funcs.len(),
            None,
            &described,
            facts.as_ref(),
        );
        report.failed += usize::from(!described.is_empty());
        return;
    }
    if described.is_empty() {
        let facts = match &facts {
            Some(f) => format!(
                " ({} static facts: {} keys, {} callees, {} conds)",
                f.len(),
                f.prop_keys.len(),
                f.callees.len(),
                f.conds.len()
            ),
            None => String::new(),
        };
        println!("{name}: ok — {} functions{facts}", prog.funcs.len());
    } else {
        report.failed += 1;
        eprintln!("{name}: {} violation(s)", described.len());
        for v in &described {
            eprintln!("  {v}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus: Option<String> = None;
    let mut dataflow = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corpus" => {
                i += 1;
                corpus = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--corpus needs a value")),
                );
            }
            "--dataflow" => dataflow = true,
            "--json" => json = true,
            "--help" | "-h" => usage(""),
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }
    if corpus.is_none() && paths.is_empty() {
        usage("nothing to lint");
    }

    let mut report = Report {
        checked: 0,
        failed: 0,
        json,
    };
    match corpus.as_deref() {
        None => {}
        Some(which @ ("table1" | "all")) => {
            for v in mujs_corpus::jquery_like::all_versions() {
                lint(
                    &format!("table1/{}", v.version),
                    &v.src,
                    dataflow,
                    &mut report,
                );
            }
            if which == "all" {
                for b in mujs_corpus::evalbench::all() {
                    lint(
                        &format!("evalbench/{}", b.name),
                        &b.src,
                        dataflow,
                        &mut report,
                    );
                }
            }
        }
        Some("evalbench") => {
            for b in mujs_corpus::evalbench::all() {
                lint(
                    &format!("evalbench/{}", b.name),
                    &b.src,
                    dataflow,
                    &mut report,
                );
            }
        }
        Some(other) => usage(&format!("unknown corpus `{other}`")),
    }
    let mut files = Vec::new();
    for p in &paths {
        if !p.exists() {
            usage(&format!("no such path: {}", p.display()));
        }
        js_files(p, &mut files);
    }
    for f in files {
        let src = std::fs::read_to_string(&f)
            .unwrap_or_else(|e| usage(&format!("cannot read {}: {e}", f.display())));
        lint(&f.display().to_string(), &src, dataflow, &mut report);
    }

    eprintln!(
        "detlint: {} checked, {} failed",
        report.checked, report.failed
    );
    if report.failed > 0 {
        std::process::exit(1);
    }
}
