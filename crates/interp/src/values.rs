//! Runtime values, objects, and property maps shared by the concrete
//! interpreter (and reused, with determinacy annotations layered on top of
//! *slots*, by the instrumented interpreter in the `determinacy` crate).

use mujs_dom::document::NodeId;
use mujs_ir::FuncId;
use std::fmt;
use std::rc::Rc;

/// Identifier of an object on an interpreter heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a scope on an interpreter's scope arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeId(pub u32);

/// Index into an interpreter's native-function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeId(pub u32);

/// A muJS runtime value. Functions, arrays and DOM nodes are all objects;
/// the distinction lives in [`ObjClass`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(Rc<str>),
    /// A heap object.
    Object(ObjId),
}

impl Value {
    /// Whether the value is an object reference.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// A short type tag used in diagnostics (`typeof` semantics live in the
    /// machines, which can inspect object classes).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) => "object",
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Rc::from(s))
    }
}

/// What kind of object something is.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjClass {
    /// A plain object (`{}` or object literal).
    Plain,
    /// An array.
    Array,
    /// A user function: its code plus captured scope (`None` for
    /// not-yet-activated global functions of the entry script).
    Function {
        /// The lowered function.
        func: FuncId,
        /// The captured scope chain.
        env: Option<ScopeId>,
    },
    /// A built-in function.
    Native(NativeId),
    /// The `document` object.
    DomDocument,
    /// A DOM element wrapper.
    DomElement(NodeId),
}

impl ObjClass {
    /// Whether objects of this class are callable.
    pub fn is_callable(&self) -> bool {
        matches!(self, ObjClass::Function { .. } | ObjClass::Native(_))
    }

    /// Whether this is a DOM wrapper (document or element).
    pub fn is_dom(&self) -> bool {
        matches!(self, ObjClass::DomDocument | ObjClass::DomElement(_))
    }
}

/// A property slot: the value plus the annotation payload `A` the machine
/// attaches to slots (the concrete machine uses `()`, the instrumented
/// machine uses determinacy flags and epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct Slot<A> {
    /// The stored value.
    pub value: Value,
    /// Machine-specific slot annotation.
    pub ann: A,
}

/// An insertion-ordered property map (for-in enumerates in insertion
/// order, which all major engines implement and the paper relies on for
/// determinate iteration order, §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PropMap<A> {
    entries: Vec<(Rc<str>, Option<Slot<A>>)>,
    index: std::collections::HashMap<Rc<str>, usize>,
}

impl<A> Default for PropMap<A> {
    fn default() -> Self {
        PropMap {
            entries: Vec::new(),
            index: std::collections::HashMap::new(),
        }
    }
}

impl<A> PropMap<A> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a live slot.
    pub fn get(&self, key: &str) -> Option<&Slot<A>> {
        let i = *self.index.get(key)?;
        self.entries[i].1.as_ref()
    }

    /// Mutably looks up a live slot.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Slot<A>> {
        let i = *self.index.get(key)?;
        self.entries[i].1.as_mut()
    }

    /// Inserts or overwrites; returns the previous slot if the property was
    /// live. A deleted property re-inserted moves to the end of the
    /// enumeration order, as in real engines.
    pub fn insert(&mut self, key: Rc<str>, slot: Slot<A>) -> Option<Slot<A>> {
        match self.index.get(&key) {
            Some(&i) if self.entries[i].1.is_some() => {
                self.entries[i].1.replace(slot)
            }
            Some(&i) => {
                // Tombstone: remove it and append fresh to restore
                // insertion-order semantics.
                self.entries[i].1 = None;
                let _ = i;
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, Some(slot)));
                None
            }
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, Some(slot)));
                None
            }
        }
    }

    /// Deletes a property; returns its slot if it was live.
    pub fn remove(&mut self, key: &str) -> Option<Slot<A>> {
        let i = *self.index.get(key)?;
        self.entries[i].1.take()
    }

    /// Whether the property is live.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Live keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &Rc<str>> {
        self.entries
            .iter()
            .filter(|(_, s)| s.is_some())
            .map(|(k, _)| k)
    }

    /// Live `(key, slot)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rc<str>, &Slot<A>)> {
        self.entries
            .iter()
            .filter_map(|(k, s)| s.as_ref().map(|s| (k, s)))
    }

    /// Mutable iteration over live slots in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Rc<str>, &mut Slot<A>)> {
        self.entries
            .iter_mut()
            .filter_map(|(k, s)| s.as_mut().map(|s| (&*k, s)))
    }

    /// Number of live properties.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|(_, s)| s.is_some()).count()
    }

    /// Whether there are no live properties.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A heap object generic over the slot annotation `A`.
#[derive(Debug, Clone, PartialEq)]
pub struct Object<A> {
    /// The object's class.
    pub class: ObjClass,
    /// Own properties.
    pub props: PropMap<A>,
    /// Prototype link.
    pub proto: Option<ObjId>,
    /// Built-in library objects are skipped by `for-in` enumeration (their
    /// properties play the role of non-enumerable descriptors).
    pub builtin: bool,
}

impl<A> Object<A> {
    /// Creates an object of the given class and prototype.
    pub fn new(class: ObjClass, proto: Option<ObjId>) -> Self {
        Object {
            class,
            props: PropMap::new(),
            proto,
            builtin: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(v: Value) -> Slot<()> {
        Slot { value: v, ann: () }
    }

    #[test]
    fn propmap_preserves_insertion_order() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(Rc::from("b"), slot(Value::Num(1.0)));
        m.insert(Rc::from("a"), slot(Value::Num(2.0)));
        m.insert(Rc::from("c"), slot(Value::Num(3.0)));
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
    }

    #[test]
    fn overwrite_keeps_position() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(Rc::from("a"), slot(Value::Num(1.0)));
        m.insert(Rc::from("b"), slot(Value::Num(2.0)));
        m.insert(Rc::from("a"), slot(Value::Num(9.0)));
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(m.get("a").unwrap().value, Value::Num(9.0));
    }

    #[test]
    fn delete_then_reinsert_moves_to_end() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(Rc::from("a"), slot(Value::Num(1.0)));
        m.insert(Rc::from("b"), slot(Value::Num(2.0)));
        assert!(m.remove("a").is_some());
        assert!(!m.contains("a"));
        m.insert(Rc::from("a"), slot(Value::Num(3.0)));
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["b", "a"]);
    }

    #[test]
    fn len_counts_live_only() {
        let mut m: PropMap<()> = PropMap::new();
        m.insert(Rc::from("a"), slot(Value::Num(1.0)));
        m.insert(Rc::from("b"), slot(Value::Num(2.0)));
        m.remove("a");
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn value_kind_strings() {
        assert_eq!(Value::Undefined.kind_str(), "undefined");
        assert_eq!(Value::Num(1.0).kind_str(), "number");
        assert_eq!(Value::Object(ObjId(0)).kind_str(), "object");
    }
}
