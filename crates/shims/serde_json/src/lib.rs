//! Offline stand-in for `serde_json`: text rendering and a recursive-descent
//! parser over the serde shim's [`Value`] tree.

pub use serde::json::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser_compact(&value.to_value()))
}

/// Renders a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser_pretty(&value.to_value()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => lit(b, pos, "null", Value::Null),
        Some(b't') => lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(Error(format!("expected , or ], got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error("expected ':' in object".into()));
                }
                *pos += 1;
                let val = parse(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => return Err(Error(format!("expected , or }}, got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn lit(b: &[u8], pos: &mut usize, text: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error("expected string".into()));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Bulk-consume the run up to the next quote or escape and
                // validate it once. Per-char validation of the remaining
                // buffer would make parsing a long string quadratic.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error("invalid utf-8".into()))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| Error(format!("invalid number at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": null, "e": true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["b"]["c"], "x\"y");
        assert_eq!(v["d"], Value::Null);
        assert_eq!(v["e"], true);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"[{"k": 1}, "two"]"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{bad}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
