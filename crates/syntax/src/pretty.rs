//! Pretty-printer emitting parseable source from an AST.
//!
//! The printer is used for round-trip testing of the parser and for
//! rendering specialized programs (the output of
//! `mujs-specialize`) back into readable JavaScript.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let p = mujs_syntax::parse("var x=1+2;")?;
/// assert_eq!(mujs_syntax::pretty::print_program(&p), "var x = 1 + 2;\n");
/// # Ok(())
/// # }
/// ```
pub fn print_program(program: &Program) -> String {
    let mut p = Printer::new();
    for s in &program.body {
        p.stmt(s);
    }
    p.out
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e, 0);
    p.out
}

/// Renders a single statement.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

/// Formats an `f64` the way JavaScript's `ToString` does for the common
/// cases (integers without a trailing `.0`, `NaN`, `Infinity`).
pub fn num_to_str(n: f64) -> String {
    if n.is_nan() {
        return "NaN".to_owned();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity" } else { "-Infinity" }.to_owned();
    }
    if n == n.trunc() && n.abs() < 1e21 {
        // Integral values print without a decimal point; -0 prints as "0".
        if n == 0.0 {
            return "0".to_owned();
        }
        return format!("{}", n as i64);
    }
    let s = format!("{n}");
    s
}

/// Quotes a string as a double-quoted JS string literal.
pub fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\x{:02x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line_start(&mut self) {
        if !self.out.is_empty() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.line_start();
        self.stmt_inline(s);
        if !self.out.ends_with('\n') {
            self.out.push('\n');
        }
    }

    fn stmt_inline(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                // Parenthesize statements that would otherwise start with
                // `{` or `function`.
                let needs_parens = matches!(e.kind, ExprKind::Object(_) | ExprKind::Function(_))
                    || starts_with_object_or_function(e);
                if needs_parens {
                    self.out.push('(');
                    self.expr(e, 0);
                    self.out.push_str(");");
                } else {
                    self.expr(e, 0);
                    self.out.push(';');
                }
            }
            StmtKind::Var(decls) => {
                self.out.push_str("var ");
                for (i, (name, init)) in decls.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(name);
                    if let Some(e) = init {
                        self.out.push_str(" = ");
                        self.expr(e, 2);
                    }
                }
                self.out.push(';');
            }
            StmtKind::FunctionDecl(f) => self.function(f),
            StmtKind::If(c, t, e) => {
                self.out.push_str("if (");
                self.expr(c, 0);
                self.out.push_str(") ");
                self.nested_stmt(t);
                if let Some(e) = e {
                    self.out.push_str(" else ");
                    self.nested_stmt(e);
                }
            }
            StmtKind::While(c, body) => {
                self.out.push_str("while (");
                self.expr(c, 0);
                self.out.push_str(") ");
                self.nested_stmt(body);
            }
            StmtKind::DoWhile(body, c) => {
                self.out.push_str("do ");
                self.nested_stmt(body);
                self.out.push_str(" while (");
                self.expr(c, 0);
                self.out.push_str(");");
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => {
                self.out.push_str("for (");
                match init {
                    Some(ForInit::Var(decls)) => {
                        self.out.push_str("var ");
                        for (i, (name, e)) in decls.iter().enumerate() {
                            if i > 0 {
                                self.out.push_str(", ");
                            }
                            self.out.push_str(name);
                            if let Some(e) = e {
                                self.out.push_str(" = ");
                                self.expr(e, 2);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e, 0),
                    None => {}
                }
                self.out.push_str("; ");
                if let Some(t) = test {
                    self.expr(t, 0);
                }
                self.out.push_str("; ");
                if let Some(u) = update {
                    self.expr(u, 0);
                }
                self.out.push_str(") ");
                self.nested_stmt(body);
            }
            StmtKind::ForIn {
                decl,
                var,
                obj,
                body,
            } => {
                self.out.push_str("for (");
                if *decl {
                    self.out.push_str("var ");
                }
                self.out.push_str(var);
                self.out.push_str(" in ");
                self.expr(obj, 0);
                self.out.push_str(") ");
                self.nested_stmt(body);
            }
            StmtKind::Return(arg) => {
                self.out.push_str("return");
                if let Some(e) = arg {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push(';');
            }
            StmtKind::Break => self.out.push_str("break;"),
            StmtKind::Continue => self.out.push_str("continue;"),
            StmtKind::Throw(e) => {
                self.out.push_str("throw ");
                self.expr(e, 0);
                self.out.push(';');
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                self.out.push_str("try ");
                self.block(block);
                if let Some((name, body)) = catch {
                    self.out.push_str(" catch (");
                    self.out.push_str(name);
                    self.out.push_str(") ");
                    self.block(body);
                }
                if let Some(body) = finally {
                    self.out.push_str(" finally ");
                    self.block(body);
                }
            }
            StmtKind::Switch(disc, cases) => {
                self.out.push_str("switch (");
                self.expr(disc, 0);
                self.out.push_str(") {");
                self.indent += 1;
                for case in cases {
                    self.line_start();
                    match &case.test {
                        Some(t) => {
                            self.out.push_str("case ");
                            self.expr(t, 0);
                            self.out.push(':');
                        }
                        None => self.out.push_str("default:"),
                    }
                    self.indent += 1;
                    for s in &case.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line_start();
                self.out.push('}');
            }
            StmtKind::Block(body) => self.block(body),
            StmtKind::Empty => self.out.push(';'),
        }
    }

    fn nested_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(body) => self.block(body),
            _ => {
                // Wrap non-block bodies in a block to keep dangling-else
                // unambiguous.
                self.out.push('{');
                self.indent += 1;
                self.stmt(s);
                self.indent -= 1;
                self.line_start();
                self.out.push('}');
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        if body.is_empty() {
            self.out.push_str("{}");
            return;
        }
        self.out.push('{');
        self.indent += 1;
        for s in body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn function(&mut self, f: &Function) {
        self.out.push_str("function");
        if let Some(name) = &f.name {
            self.out.push(' ');
            self.out.push_str(name);
        }
        self.out.push('(');
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(p);
        }
        self.out.push_str(") ");
        self.block(&f.body);
    }

    /// Prints `e`, parenthesizing if `e`'s precedence is lower than
    /// `min_prec`. Precedence levels (higher binds tighter):
    /// 0 comma, 1 assignment, 2 conditional, 3.. binary (matching the
    /// parser), 14 unary, 15 postfix/call/member.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_prec(e);
        let parens = prec < min_prec;
        if parens {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::Lit(l) => self.lit(l),
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::This => self.out.push_str("this"),
            ExprKind::Array(items) => {
                self.out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(item, 2);
                }
                self.out.push(']');
            }
            ExprKind::Object(props) => {
                if props.is_empty() {
                    self.out.push_str("{}");
                } else {
                    self.out.push_str("{ ");
                    for (i, (k, v)) in props.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        if is_plain_ident(k) {
                            self.out.push_str(k);
                        } else {
                            self.out.push_str(&quote_str(k));
                        }
                        self.out.push_str(": ");
                        self.expr(v, 2);
                    }
                    self.out.push_str(" }");
                }
            }
            ExprKind::Function(f) => self.function(f),
            ExprKind::Unary(op, arg) => {
                self.out.push_str(op.as_str());
                if matches!(op, UnOp::Typeof | UnOp::Void) || needs_space_between_unary(op, arg) {
                    self.out.push(' ');
                }
                self.expr(arg, 14);
            }
            ExprKind::Delete(obj, key) => {
                self.out.push_str("delete ");
                self.expr(obj, 15);
                self.member_key(key);
            }
            ExprKind::Binary(op, l, r) => {
                let p = bin_prec(*op);
                self.expr(l, p);
                self.out.push(' ');
                self.out.push_str(op.as_str());
                self.out.push(' ');
                self.expr(r, p + 1);
            }
            ExprKind::Logical(op, l, r) => {
                let p = match op {
                    LogOp::Or => 3,
                    LogOp::And => 4,
                };
                self.expr(l, p);
                self.out.push(' ');
                self.out.push_str(match op {
                    LogOp::And => "&&",
                    LogOp::Or => "||",
                });
                self.out.push(' ');
                self.expr(r, p + 1);
            }
            ExprKind::Assign(op, lhs, rhs) => {
                self.expr(lhs, 14);
                self.out.push(' ');
                match op {
                    None => self.out.push('='),
                    Some(op) => {
                        self.out.push_str(op.bin_op().as_str());
                        self.out.push('=');
                    }
                }
                self.out.push(' ');
                self.expr(rhs, 1);
            }
            ExprKind::Update(prefix, inc, arg) => {
                let op = if *inc { "++" } else { "--" };
                if *prefix {
                    self.out.push_str(op);
                    self.expr(arg, 14);
                } else {
                    self.expr(arg, 15);
                    self.out.push_str(op);
                }
            }
            ExprKind::Cond(c, t, e2) => {
                self.expr(c, 3);
                self.out.push_str(" ? ");
                self.expr(t, 1);
                self.out.push_str(" : ");
                self.expr(e2, 1);
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee, 15);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::New(callee, args) => {
                self.out.push_str("new ");
                self.expr(callee, 15);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 2);
                }
                self.out.push(')');
            }
            ExprKind::Member(obj, key) => {
                self.expr(obj, 15);
                self.member_key(key);
            }
            ExprKind::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(item, 1);
                }
            }
        }
        if parens {
            self.out.push(')');
        }
    }

    fn member_key(&mut self, key: &MemberKey) {
        match key {
            MemberKey::Static(name) => {
                self.out.push('.');
                self.out.push_str(name);
            }
            MemberKey::Computed(e) => {
                self.out.push('[');
                self.expr(e, 0);
                self.out.push(']');
            }
        }
    }

    fn lit(&mut self, l: &Lit) {
        match l {
            Lit::Num(n) => {
                if *n < 0.0 || (n.is_sign_negative() && *n == 0.0) {
                    // Negative literals only arise synthetically; print as a
                    // parenthesized negation so re-parsing yields Unary(Neg).
                    let _ = write!(self.out, "(-{})", num_to_str(-n));
                } else {
                    self.out.push_str(&num_to_str(*n));
                }
            }
            Lit::Str(s) => self.out.push_str(&quote_str(s)),
            Lit::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Lit::Null => self.out.push_str("null"),
            Lit::Undefined => self.out.push_str("undefined"),
        }
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Seq(_) => 0,
        ExprKind::Assign(..) => 1,
        ExprKind::Cond(..) => 2,
        ExprKind::Logical(LogOp::Or, ..) => 3,
        ExprKind::Logical(LogOp::And, ..) => 4,
        ExprKind::Binary(op, ..) => bin_prec(*op),
        ExprKind::Unary(..) | ExprKind::Delete(..) | ExprKind::Update(true, ..) => 14,
        _ => 15,
    }
}

/// Binary operator precedence in the printer's scale (comma = 0 .. member = 15).
fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        BitOr => 5,
        BitXor => 6,
        BitAnd => 7,
        Eq | NotEq | StrictEq | StrictNotEq => 8,
        Lt | LtEq | Gt | GtEq | In | Instanceof => 9,
        Shl | Shr | UShr => 10,
        Add | Sub => 11,
        Mul | Div | Rem => 12,
    }
}

fn needs_space_between_unary(op: &UnOp, arg: &Expr) -> bool {
    // Avoid printing `--x` for Neg(Neg(x)) or Neg(Update).
    match op {
        UnOp::Neg => matches!(
            &arg.kind,
            ExprKind::Unary(UnOp::Neg, _) | ExprKind::Update(true, false, _)
        ),
        UnOp::Pos => matches!(
            &arg.kind,
            ExprKind::Unary(UnOp::Pos, _) | ExprKind::Update(true, true, _)
        ),
        _ => false,
    }
}

fn is_plain_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c == '_' || c == '$' || c.is_ascii_alphabetic())
        && s.chars()
            .all(|c| c == '_' || c == '$' || c.is_ascii_alphanumeric())
        && crate::token::Keyword::lookup(s).is_none()
}

fn starts_with_object_or_function(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Object(_) | ExprKind::Function(_) => true,
        ExprKind::Binary(_, l, _) | ExprKind::Logical(_, l, _) | ExprKind::Assign(_, l, _) => {
            starts_with_object_or_function(l)
        }
        ExprKind::Cond(c, _, _) => starts_with_object_or_function(c),
        ExprKind::Call(c, _) => starts_with_object_or_function(c),
        ExprKind::Member(o, _) => starts_with_object_or_function(o),
        ExprKind::Update(false, _, a) => starts_with_object_or_function(a),
        ExprKind::Seq(items) => items.first().is_some_and(starts_with_object_or_function),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        let reprinted = print_program(&p2);
        assert_eq!(printed, reprinted, "print is not a fixpoint for {src:?}");
    }

    #[test]
    fn roundtrips_basic_programs() {
        roundtrip("var x = 1 + 2 * 3;");
        roundtrip("function f(a, b) { return a < b ? a : b; }");
        roundtrip("if (x) { f(); } else { g(); }");
        roundtrip("while (i < 10) { i = i + 1; }");
        roundtrip("for (var i = 0; i < n; i++) { s += i; }");
        roundtrip("for (k in o) { f(o[k]); }");
        roundtrip("try { f(); } catch (e) { g(); } finally { h(); }");
        roundtrip("var o = { a: 1, \"b c\": [1, 2, 3] };");
        roundtrip("x = a && b || !c;");
        roundtrip("switch (x) { case 1: f(); break; default: g(); }");
        roundtrip("(function() { return 1; })();");
        roundtrip("delete o.p; delete o[k];");
        roundtrip("do { f(); } while (x);");
        roundtrip("throw new Error(\"boom\");");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        let e1 = parse_expr("(1 + 2) * 3").unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(strip_spans_expr(&e1), strip_spans_expr(&e2));
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num_to_str(42.0), "42");
        assert_eq!(num_to_str(2.5), "2.5");
        assert_eq!(num_to_str(-0.0), "0");
        assert_eq!(num_to_str(f64::NAN), "NaN");
        assert_eq!(num_to_str(f64::INFINITY), "Infinity");
    }

    #[test]
    fn string_quoting() {
        assert_eq!(quote_str("a\"b\n"), "\"a\\\"b\\n\"");
    }

    // A structural comparison ignoring spans, for round-trip testing.
    fn strip_spans_expr(e: &Expr) -> String {
        format!("{:?}", ReSpan(e))
    }

    struct ReSpan<'a>(&'a Expr);
    impl std::fmt::Debug for ReSpan<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Print via the pretty printer, which is span-independent.
            f.write_str(&print_expr(self.0))
        }
    }
}
