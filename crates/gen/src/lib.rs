//! # mujs-gen
//!
//! Seeded random generation of *closed, terminating* muJS programs for the
//! property-based soundness harness (Theorem 1): one instrumented run's
//! determinate observations must predict every concrete run, across
//! re-randomized indeterminate inputs.
//!
//! The generated subset deliberately exercises the analysis' interesting
//! machinery — indeterminate sources (`Math.random`, `__indet`),
//! conditionals over them (triggering ÎF1 marking and ĈNTR counterfactual
//! execution), heap reads/writes with static and computed keys, bounded
//! loops, function calls, and try/catch — while structurally guaranteeing
//! termination (loops are counted `for`s, calls form a DAG).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Top-level statements to emit.
    pub top_stmts: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Number of helper functions (each may only call higher-numbered
    /// ones, so call chains terminate).
    pub n_funcs: usize,
    /// Probability (0..100) that a generated leaf expression is an
    /// indeterminate source.
    pub indet_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            top_stmts: 12,
            max_depth: 3,
            n_funcs: 3,
            indet_pct: 20,
        }
    }
}

/// Generates a program from a seed. Identical seeds yield identical
/// sources.
///
/// # Examples
///
/// ```
/// let src = mujs_gen::generate(42, &mujs_gen::GenConfig::default());
/// assert!(mujs_syntax::parse(&src).is_ok());
/// ```
pub fn generate(seed: u64, cfg: &GenConfig) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg: cfg.clone(),
        out: String::new(),
        loop_counter: 0,
    };
    g.program();
    g.out
}

const NUM_VARS: usize = 4;
const NUM_OBJS: usize = 3;
const KEYS: [&str; 4] = ["a", "b", "c", "d"];

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    out: String,
    loop_counter: u32,
}

impl Gen {
    fn program(&mut self) {
        for i in 0..NUM_VARS {
            let _ = writeln!(self.out, "var x{i} = {};", i * 3 + 1);
        }
        for i in 0..NUM_OBJS {
            let _ = writeln!(self.out, "var o{i} = {{ a: {i}, b: {} }};", i + 10);
        }
        let n_funcs = self.cfg.n_funcs;
        for f in 0..n_funcs {
            let _ = writeln!(self.out, "function f{f}(p0, p1) {{");
            let n = 1 + (self.rng.gen::<u32>() % 3) as usize;
            for _ in 0..n {
                self.stmt(1, Some(f));
            }
            let ret = self.expr(Some(f));
            let _ = writeln!(self.out, "return {ret};");
            self.out.push_str("}\n");
        }
        for _ in 0..self.cfg.top_stmts {
            self.stmt(0, None);
        }
        // Make the final state observable.
        for i in 0..NUM_VARS {
            let _ = writeln!(self.out, "console.log(x{i});");
        }
        for i in 0..NUM_OBJS {
            for k in KEYS {
                let _ = writeln!(self.out, "console.log(o{i}.{k});");
            }
        }
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.rng.gen::<u32>() as usize) % n
    }

    fn var(&mut self) -> String {
        format!("x{}", self.pick(NUM_VARS))
    }

    fn obj(&mut self) -> String {
        format!("o{}", self.pick(NUM_OBJS))
    }

    fn key(&mut self) -> &'static str {
        KEYS[self.pick(KEYS.len())]
    }

    /// A side-effect-free (modulo `Math.random` consumption) expression.
    fn expr(&mut self, in_func: Option<usize>) -> String {
        match self.pick(10) {
            0 => format!("{}", self.pick(100)),
            1 | 2 => self.var(),
            3 => {
                if self.rng.gen::<u32>() % 100 < self.cfg.indet_pct {
                    "Math.random()".to_owned()
                } else {
                    format!("{}", self.pick(50))
                }
            }
            4 => {
                let o = self.obj();
                let k = self.key();
                format!("{o}.{k}")
            }
            5 => {
                let a = self.expr_leaf(in_func);
                let b = self.expr_leaf(in_func);
                let op = ["+", "-", "*", "%"][self.pick(4)];
                format!("({a} {op} {b})")
            }
            6 => {
                let a = self.expr_leaf(in_func);
                let b = self.expr_leaf(in_func);
                let op = ["<", "<=", "===", "!=="][self.pick(4)];
                format!("({a} {op} {b})")
            }
            7 => {
                if self.rng.gen::<u32>() % 100 < self.cfg.indet_pct {
                    format!("__indet({})", self.pick(20))
                } else {
                    format!("{}", self.pick(20))
                }
            }
            8 => match in_func {
                Some(_) => "(p0 + p1)".to_owned(),
                None => {
                    let a = self.expr_leaf(None);
                    format!("({a} + 1)")
                }
            },
            _ => {
                let c = self.expr_leaf(in_func);
                let t = self.expr_leaf(in_func);
                let e = self.expr_leaf(in_func);
                format!("({c} ? {t} : {e})")
            }
        }
    }

    fn expr_leaf(&mut self, in_func: Option<usize>) -> String {
        match self.pick(5) {
            0 => format!("{}", self.pick(30)),
            1 => self.var(),
            2 => {
                let o = self.obj();
                let k = self.key();
                format!("{o}.{k}")
            }
            3 if in_func.is_some() => "p0".to_owned(),
            _ => {
                if self.rng.gen::<u32>() % 100 < self.cfg.indet_pct {
                    "Math.random()".to_owned()
                } else {
                    format!("{}", self.pick(9))
                }
            }
        }
    }

    fn stmt(&mut self, depth: usize, in_func: Option<usize>) {
        let choices = if depth >= self.cfg.max_depth { 6 } else { 10 };
        match self.pick(choices) {
            0 | 1 => {
                let v = self.var();
                let e = self.expr(in_func);
                let _ = writeln!(self.out, "{v} = {e};");
            }
            2 => {
                let o = self.obj();
                let k = self.key();
                let e = self.expr(in_func);
                let _ = writeln!(self.out, "{o}.{k} = {e};");
            }
            3 => {
                // Computed key from the fixed pool (possibly indeterminate
                // choice between two keys).
                let o = self.obj();
                let k1 = self.key();
                let k2 = self.key();
                let e = self.expr(in_func);
                let cond = self.expr_leaf(in_func);
                let _ = writeln!(self.out, "{o}[({cond}) ? \"{k1}\" : \"{k2}\"] = {e};");
            }
            4 => {
                let v = self.var();
                let o = self.obj();
                let k = self.key();
                let _ = writeln!(self.out, "{v} = {o}.{k};");
            }
            5 => {
                // Call a helper (only call strictly higher-numbered ones
                // from inside functions, so recursion is impossible).
                let lo = in_func.map(|f| f + 1).unwrap_or(0);
                if lo < self.cfg.n_funcs {
                    let f = lo + self.pick(self.cfg.n_funcs - lo);
                    let v = self.var();
                    let a = self.expr_leaf(in_func);
                    let b = self.expr_leaf(in_func);
                    let _ = writeln!(self.out, "{v} = f{f}({a}, {b});");
                } else {
                    let v = self.var();
                    let e = self.expr(in_func);
                    let _ = writeln!(self.out, "{v} = {e};");
                }
            }
            6 | 7 => {
                let c = self.expr(in_func);
                let _ = writeln!(self.out, "if ({c}) {{");
                let n = 1 + self.pick(2);
                for _ in 0..n {
                    self.stmt(depth + 1, in_func);
                }
                if self.rng.gen() {
                    self.out.push_str("} else {\n");
                    self.stmt(depth + 1, in_func);
                }
                self.out.push_str("}\n");
            }
            8 => {
                let i = self.loop_counter;
                self.loop_counter += 1;
                let bound = 1 + self.pick(3);
                let _ = writeln!(self.out, "for (var L{i} = 0; L{i} < {bound}; L{i}++) {{");
                self.stmt(depth + 1, in_func);
                // Occasionally exit or skip abruptly, possibly under an
                // indeterminate guard.
                if self.pick(3) == 0 {
                    let c = self.expr_leaf(in_func);
                    let kw = if self.rng.gen() { "break" } else { "continue" };
                    let _ = writeln!(self.out, "if ({c}) {{ {kw}; }}");
                }
                self.out.push_str("}\n");
            }
            _ => {
                let c = self.expr_leaf(in_func);
                let v = self.var();
                let payload = self.pick(50);
                let _ = writeln!(
                    self.out,
                    "try {{ if ({c}) {{ throw {payload}; }} {v} = {v} + 1; }} catch (e) {{ {v} = e; }}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse() {
        for seed in 0..50 {
            let src = generate(seed, &GenConfig::default());
            mujs_syntax::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn indeterminate_sources_appear() {
        let cfg = GenConfig {
            top_stmts: 40,
            indet_pct: 60,
            ..Default::default()
        };
        let src = generate(3, &cfg);
        assert!(src.contains("Math.random()") || src.contains("__indet"));
    }
}
