//! Executable soundness checking — the observable content of Theorem 1.
//!
//! The theorem states that the instrumented state *models* every concrete
//! state reachable from a modeled initial state: where the instrumented
//! run has `v!`, the concrete run has (µ-correspondingly) `v`. We check
//! the consequence clients rely on: align the instrumented run's
//! observation stream with a concrete run's stream at matching
//! `(point, context, hit-index)` positions, and verify that every
//! *determinate* instrumented value predicts the concrete value — building
//! the address bijection µ incrementally for object values.

use crate::det::Det;
use crate::machine::DObservation;
use mujs_interp::context::{ContextTable, CtxId};
use mujs_interp::machine::Observation;
use mujs_interp::{ObjId, Value};
use mujs_ir::StmtId;
use std::collections::HashMap;

/// A machine-independent calling-context key: the resolved
/// `(site, occurrence)` chain. Raw [`CtxId`]s are interning artifacts of
/// one machine and do not align across machines.
type CtxKey = Vec<(StmtId, u32)>;

/// A soundness violation found by [`check_soundness`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A determinate instrumented value disagreed with the concrete value.
    ValueMismatch {
        /// The program point.
        point: StmtId,
        /// The calling context (as interned by the *instrumented* run).
        ctx: CtxId,
        /// Index of the hit at this `(point, ctx)`.
        hit: usize,
        /// What the instrumented run predicted.
        predicted: String,
        /// What the concrete run computed.
        actual: String,
    },
    /// The address bijection µ would need to map one concrete address to
    /// two instrumented addresses (or vice versa).
    AddressClash {
        /// The program point.
        point: StmtId,
        /// The calling context.
        ctx: CtxId,
        /// Index of the hit.
        hit: usize,
    },
}

/// Result of a soundness comparison.
#[derive(Debug, Default)]
pub struct SoundnessReport {
    /// Positions where a determinate prediction was checked.
    pub checked: usize,
    /// Positions skipped because the instrumented value was `?`.
    pub skipped_indet: usize,
    /// Violations found (must be empty for a sound analysis).
    pub violations: Vec<Violation>,
}

impl SoundnessReport {
    /// Whether no violations were found.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks one concrete run against the instrumented run's observations.
///
/// Both observation streams are grouped by `(point, ctx)` and aligned by
/// hit index; the instrumented machine does not record counterfactual
/// hits, so positions correspond whenever control up to the point is
/// determinate — positions that exist on only one side are ignored (they
/// arise from legitimately divergent control on indeterminate branches).
pub fn check_soundness(
    instrumented: &[DObservation],
    instr_ctxs: &ContextTable,
    concrete: &[Observation],
    concrete_ctxs: &ContextTable,
) -> SoundnessReport {
    let mut report = SoundnessReport::default();
    // µ: concrete address → instrumented address (and inverse).
    let mut mu: HashMap<ObjId, ObjId> = HashMap::new();
    let mut mu_inv: HashMap<ObjId, ObjId> = HashMap::new();

    // Resolve interned context ids to machine-independent frame chains.
    let mut c_frames: HashMap<CtxId, CtxKey> = HashMap::new();
    let mut concrete_streams: HashMap<(StmtId, CtxKey), Vec<&Value>> = HashMap::new();
    for o in concrete {
        let frames = c_frames
            .entry(o.ctx)
            .or_insert_with(|| concrete_ctxs.frames(o.ctx))
            .clone();
        concrete_streams
            .entry((o.point, frames))
            .or_default()
            .push(&o.value);
    }
    let mut i_frames: HashMap<CtxId, CtxKey> = HashMap::new();
    let mut instr_hit_counts: HashMap<(StmtId, CtxKey), usize> = HashMap::new();

    for obs in instrumented {
        let frames = i_frames
            .entry(obs.ctx)
            .or_insert_with(|| instr_ctxs.frames(obs.ctx))
            .clone();
        let key = (obs.point, frames);
        let hit = {
            let c = instr_hit_counts.entry(key.clone()).or_insert(0);
            let h = *c;
            *c += 1;
            h
        };
        if obs.value.d == Det::I {
            report.skipped_indet += 1;
            continue;
        }
        let Some(stream) = concrete_streams.get(&key) else {
            continue;
        };
        let Some(actual) = stream.get(hit) else {
            continue;
        };
        report.checked += 1;
        match (&obs.value.v, actual) {
            (Value::Object(i_id), Value::Object(c_id)) => {
                let prev = mu.get(c_id).copied();
                let prev_inv = mu_inv.get(i_id).copied();
                match (prev, prev_inv) {
                    (None, None) => {
                        mu.insert(*c_id, *i_id);
                        mu_inv.insert(*i_id, *c_id);
                    }
                    (Some(mapped), _) if mapped == *i_id => {}
                    (None, Some(inv)) if inv == *c_id => {}
                    _ => report.violations.push(Violation::AddressClash {
                        point: obs.point,
                        ctx: obs.ctx,
                        hit,
                    }),
                }
            }
            (Value::Object(_), other) => {
                report.violations.push(Violation::ValueMismatch {
                    point: obs.point,
                    ctx: obs.ctx,
                    hit,
                    predicted: "<object>".to_owned(),
                    actual: format!("{other:?}"),
                });
            }
            (pred, act) => {
                if !prim_eq(pred, act) {
                    report.violations.push(Violation::ValueMismatch {
                        point: obs.point,
                        ctx: obs.ctx,
                        hit,
                        predicted: format!("{pred:?}"),
                        actual: format!("{act:?}"),
                    });
                }
            }
        }
    }
    report
}

fn prim_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits() || x == y,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::DValue;

    fn dobs(point: u32, v: Value, d: Det) -> DObservation {
        DObservation {
            point: StmtId(point),
            ctx: CtxId::ROOT,
            value: DValue { v, d },
        }
    }

    fn cobs(point: u32, v: Value) -> Observation {
        Observation {
            point: StmtId(point),
            ctx: CtxId::ROOT,
            value: v,
        }
    }

    fn check(i: &[DObservation], c: &[Observation]) -> SoundnessReport {
        let t1 = ContextTable::new();
        let t2 = ContextTable::new();
        check_soundness(i, &t1, c, &t2)
    }

    #[test]
    fn matching_primitives_are_sound() {
        let i = vec![dobs(1, Value::Num(5.0), Det::D)];
        let c = vec![cobs(1, Value::Num(5.0))];
        let r = check(&i, &c);
        assert!(r.is_sound());
        assert_eq!(r.checked, 1);
    }

    #[test]
    fn determinate_mismatch_is_a_violation() {
        let i = vec![dobs(1, Value::Num(5.0), Det::D)];
        let c = vec![cobs(1, Value::Num(6.0))];
        let r = check(&i, &c);
        assert!(!r.is_sound());
    }

    #[test]
    fn indeterminate_mismatch_is_fine() {
        let i = vec![dobs(1, Value::Num(5.0), Det::I)];
        let c = vec![cobs(1, Value::Num(6.0))];
        let r = check(&i, &c);
        assert!(r.is_sound());
        assert_eq!(r.skipped_indet, 1);
    }

    #[test]
    fn object_bijection_is_enforced() {
        // Same instrumented object maps consistently to one concrete
        // object...
        let i = vec![
            dobs(1, Value::Object(ObjId(10)), Det::D),
            dobs(2, Value::Object(ObjId(10)), Det::D),
        ];
        let c = vec![
            cobs(1, Value::Object(ObjId(77))),
            cobs(2, Value::Object(ObjId(77))),
        ];
        assert!(check(&i, &c).is_sound());
        // ...but not to two different ones.
        let c_bad = vec![
            cobs(1, Value::Object(ObjId(77))),
            cobs(2, Value::Object(ObjId(78))),
        ];
        assert!(!check(&i, &c_bad).is_sound());
    }

    #[test]
    fn repeated_hits_align_by_index() {
        let i = vec![
            dobs(1, Value::Num(1.0), Det::D),
            dobs(1, Value::Num(2.0), Det::D),
        ];
        let c = vec![cobs(1, Value::Num(1.0)), cobs(1, Value::Num(2.0))];
        let r = check(&i, &c);
        assert!(r.is_sound());
        assert_eq!(r.checked, 2);
    }
}
