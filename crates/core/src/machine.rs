//! State and plumbing of the instrumented machine: the annotated heap and
//! scopes, the epoch-counter heap flush (§4), write logs for the
//! conditional rules (Figure 9), and counterfactual rollback.
//!
//! Statement execution lives in [`crate::exec`]; native models in
//! [`crate::natives`] and [`crate::dom_models`].

use crate::config::{AnalysisConfig, AnalysisStats, AnalysisStatus};
use crate::det::{DValue, Det, SlotAnn};
use crate::facts::FactDb;
use crate::supervisor::{CancelToken, RunHooks};
use mujs_dom::document::Document;
use mujs_dom::events::EventRegistry;
use mujs_interp::context::{ContextTable, CtxId};
use mujs_interp::machine::Protos;
use mujs_interp::{ObjClass, ObjId, Object, ScopeId, Slot, Value};
use mujs_ir::{FuncId, Program, StmtId, Sym};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::rc::Rc;

/// Epoch sentinel for slots installed by the standard library setup: they
/// stay determinate across flushes (documented assumption: unanalyzed code
/// does not overwrite built-ins; user overwrites replace the sentinel with
/// a normal epoch and are tracked precisely).
pub const BUILTIN_EPOCH: u64 = u64::MAX;

/// Byte budget for one [`DMachine::display`] rendering. Real corpus output
/// is far below it; the cap only kicks in for pathological arrays, where
/// the old eager rendering built (and often discarded) up to 100 cloned
/// item strings per nesting level.
const DISPLAY_BYTE_CAP: usize = 1 << 16;

/// Abrupt, non-[`DFlow`] outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum DErr {
    /// A JavaScript exception; the flag records whether the throw is
    /// control-dependent on indeterminate data (other executions may not
    /// throw).
    Thrown(DValue, bool),
    /// Abort the innermost counterfactual execution (native with unknown
    /// effects, exception, or budget exhaustion inside a counterfactual).
    CfAbort,
    /// Stop the whole analysis (step limit / flush cap).
    Stop(AnalysisStatus),
}

/// Statement completions.
#[derive(Debug, Clone, PartialEq)]
pub enum DFlow {
    /// Fall through.
    Normal,
    /// `break`; the flag is the indeterminate-control marker.
    Break(bool),
    /// `continue`; the flag is the indeterminate-control marker.
    Continue(bool),
    /// `return v`; the flag is the indeterminate-control marker.
    Return(DValue, bool),
}

impl DFlow {
    /// The indeterminate-control marker of an abrupt completion.
    pub fn indet_ctl(&self) -> bool {
        match self {
            DFlow::Normal => false,
            DFlow::Break(b) | DFlow::Continue(b) | DFlow::Return(_, b) => *b,
        }
    }

    /// The same completion with the marker forced on.
    #[must_use]
    pub fn taint(self) -> DFlow {
        match self {
            DFlow::Normal => DFlow::Normal,
            DFlow::Break(_) => DFlow::Break(true),
            DFlow::Continue(_) => DFlow::Continue(true),
            DFlow::Return(v, _) => DFlow::Return(v, true),
        }
    }
}

/// A scope with annotated bindings: slot-addressed locals for function
/// activations plus by-name overflow (`ext`) for catch bindings and
/// anything `eval` hoists outside the static layout. A name lives in at
/// most one of the two.
#[derive(Debug, Clone)]
pub struct DScope {
    /// The function whose activation this scope belongs to (for the
    /// closure-written flush policy; catch scopes inherit their frame's).
    pub(crate) owner: FuncId,
    /// Whether this is a function activation carrying the static slot
    /// layout of `owner` (catch scopes are ext-only).
    pub(crate) activation: bool,
    /// Locals indexed by the owner's [`mujs_ir::Function::locals`] layout.
    pub(crate) slots: Vec<(Value, SlotAnn)>,
    /// Bindings outside the static layout.
    pub(crate) ext: HashMap<Sym, (Value, SlotAnn)>,
    pub(crate) parent: Option<ScopeId>,
    /// Nearest enclosing activation (catch scopes are transparent to slot
    /// addressing).
    pub(crate) fn_parent: Option<ScopeId>,
    /// Captured scopes can be written by callees (closures), so heap
    /// flushes must invalidate them; never-captured scopes are immune —
    /// the paper's "local variables cannot possibly be written by any
    /// called function".
    pub(crate) captured: bool,
}

/// An activation record of the instrumented machine.
#[derive(Debug)]
pub struct DFrame {
    /// The executing function.
    pub func: FuncId,
    /// Scope for named lookups (`None` ⇒ global object).
    pub scope: Option<ScopeId>,
    /// The frame's own activation scope — the fixed base of slot
    /// addressing while `scope` moves through catch scopes.
    pub activation: Option<ScopeId>,
    /// Temporaries with flags.
    pub temps: Vec<DValue>,
    /// The `this` binding.
    pub this_val: DValue,
    /// This activation's calling context.
    pub ctx: CtxId,
    /// Per-site occurrence counters (must match the concrete machine's),
    /// indexed by the statement's dense per-function index.
    pub occurrences: Vec<u32>,
    /// Unique id for temp-write logging across frame lifetimes.
    pub serial: u64,
}

/// Per-object analysis state kept outside the shared [`Object`] struct.
#[derive(Debug, Clone, Copy)]
pub struct ObjExtra {
    /// Epoch at creation; a record created before the last flush is open.
    pub created_epoch: u64,
    /// Set by stores with indeterminate property names (rule ŜTO) and by
    /// deletions under indeterminate control.
    pub forced_open: bool,
    /// Determinacy of the prototype link (from the `F.prototype` slot the
    /// object was constructed with).
    pub proto_det: Det,
}

/// Where a scope binding lives: a static local slot or an ext entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKey {
    /// Index into the activation's slot vector.
    Slot(u32),
    /// A by-name overflow binding.
    Ext(Sym),
}

/// One undoable/markable mutation.
#[derive(Debug)]
pub enum LogEntry {
    /// A property write or delete; `old == None` means the property did
    /// not exist before.
    Prop {
        /// Receiver.
        obj: ObjId,
        /// Key.
        key: Sym,
        /// Previous slot.
        old: Option<(Value, SlotAnn)>,
    },
    /// A variable write.
    Var {
        /// Owning scope.
        scope: ScopeId,
        /// Where in the scope the binding lives.
        key: VarKey,
        /// Previous binding (a variable write never creates a binding —
        /// declaration handles that — but eval hoisting can).
        old: Option<(Value, SlotAnn)>,
    },
    /// A temp write in some activation.
    Temp {
        /// The activation's serial.
        frame: u64,
        /// Temp index.
        idx: u32,
        /// Previous value.
        old: DValue,
    },
    /// A record's open flag transition.
    Opened {
        /// The record.
        obj: ObjId,
        /// Previous flag.
        was: bool,
    },
}

/// A write-log region (one per active Figure 9 conditional rule).
#[derive(Debug, Default)]
pub struct LogFrame {
    pub(crate) entries: Vec<LogEntry>,
}

/// Instrumented observation for the soundness harness.
#[derive(Debug, Clone, PartialEq)]
pub struct DObservation {
    /// Program point.
    pub point: StmtId,
    /// Calling context.
    pub ctx: CtxId,
    /// Observed annotated value.
    pub value: DValue,
}

/// Native model signature.
pub type DNativeFn = fn(&mut DMachine<'_>, DValue, &[DValue]) -> Result<DValue, DErr>;

/// Well-known constructor objects.
#[derive(Debug, Clone, Copy, Default)]
pub struct DSpecials {
    pub(crate) array_ctor: Option<ObjId>,
    pub(crate) error_ctor: Option<ObjId>,
    pub(crate) object_ctor: Option<ObjId>,
    pub(crate) eval_fn: Option<ObjId>,
}

/// The instrumented determinacy machine.
pub struct DMachine<'p> {
    /// The program (mutable: `eval` appends chunks).
    pub prog: &'p mut Program,
    pub(crate) heap: Vec<Object<SlotAnn>>,
    pub(crate) extras: Vec<ObjExtra>,
    pub(crate) scopes: Vec<DScope>,
    pub(crate) global: ObjId,
    /// Built-in prototype objects.
    pub protos: Protos,
    pub(crate) specials: DSpecials,
    pub(crate) natives: Vec<(&'static str, DNativeFn)>,
    /// The emulated document, if installed.
    pub doc: Option<Document>,
    /// Registered event handlers.
    pub events: EventRegistry<ObjId>,
    pub(crate) dom_nodes: HashMap<mujs_dom::document::NodeId, ObjId>,
    pub(crate) dom_document_obj: Option<ObjId>,
    pub(crate) dom_element_proto: Option<ObjId>,
    pub(crate) rng: StdRng,
    pub(crate) now: f64,
    /// The global epoch counter; incrementing it is the O(1) heap flush.
    pub(crate) epoch: u64,
    pub(crate) steps: u64,
    pub(crate) cf_depth: u32,
    pub(crate) cf_steps: u64,
    pub(crate) next_frame_serial: u64,
    pub(crate) logs: Vec<LogFrame>,
    pub(crate) closure_writes: mujs_ir::closure_writes::ClosureWrites,
    pub(crate) cw_funcs_len: usize,
    /// Analysis configuration.
    pub cfg: AnalysisConfig,
    /// Run statistics (flush counts feed Table 1).
    pub stats: AnalysisStats,
    /// Captured output.
    pub output: Vec<String>,
    /// Interned contexts.
    pub ctxs: ContextTable,
    /// The fact database.
    pub facts: FactDb,
    /// Observations for the soundness harness (real execution only, no
    /// counterfactual hits).
    pub observations: Vec<DObservation>,
    pub(crate) setup_mode: bool,
    /// Wall-clock point after which the run stops with
    /// [`AnalysisStatus::Deadline`], from `cfg.deadline_ms` (measured from
    /// machine construction, so stdlib setup counts toward the budget).
    pub(crate) deadline: Option<std::time::Instant>,
    /// External cancellation, polled at statement boundaries.
    pub(crate) cancel: Option<CancelToken>,
    /// Live statement counter shared with the supervisor; written at every
    /// poll so it stays meaningful even if the machine later panics.
    pub(crate) progress: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    /// Cumulative heap cells allocated: objects plus newly created
    /// property slots. Monotone (slot deletes and counterfactual undos do
    /// not decrement), so `cfg.mem_cell_budget` bounds total allocation
    /// work rather than instantaneous residency — which is what keeps a
    /// runaway allocation loop from exhausting the host.
    pub(crate) cells_allocated: u64,
    /// Fault-injection state (testing only).
    #[cfg(feature = "fault-inject")]
    pub(crate) faults: Option<crate::supervisor::FaultState>,
    /// Set by the injected allocation fault; the next poll reports
    /// [`AnalysisStatus::MemLimit`].
    #[cfg(feature = "fault-inject")]
    pub(crate) forced_memfail: bool,
}

impl<'p> DMachine<'p> {
    /// Creates a machine and installs the standard-library models.
    pub fn new(prog: &'p mut Program, cfg: AnalysisConfig) -> Self {
        let mut heap = Vec::new();
        let mut extras = Vec::new();
        let mut alloc = |class: ObjClass, proto: Option<ObjId>| {
            let id = ObjId(heap.len() as u32);
            heap.push(Object::new(class, proto));
            extras.push(ObjExtra {
                created_epoch: BUILTIN_EPOCH,
                forced_open: false,
                proto_det: Det::D,
            });
            id
        };
        let object = alloc(ObjClass::Plain, None);
        let function = alloc(ObjClass::Plain, Some(object));
        let array = alloc(ObjClass::Plain, Some(object));
        let string = alloc(ObjClass::Plain, Some(object));
        let number = alloc(ObjClass::Plain, Some(object));
        let boolean = alloc(ObjClass::Plain, Some(object));
        let error = alloc(ObjClass::Plain, Some(object));
        let global = alloc(ObjClass::Plain, Some(object));
        let max_facts = cfg.max_facts;
        let deadline = cfg
            .deadline_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let mut m = DMachine {
            prog,
            heap,
            extras,
            scopes: Vec::new(),
            global,
            protos: Protos {
                object,
                function,
                array,
                string,
                number,
                boolean,
                error,
            },
            specials: DSpecials::default(),
            natives: Vec::new(),
            doc: None,
            events: EventRegistry::new(),
            dom_nodes: HashMap::new(),
            dom_document_obj: None,
            dom_element_proto: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            now: 1.6e12,
            epoch: 0,
            steps: 0,
            cf_depth: 0,
            cf_steps: 0,
            next_frame_serial: 0,
            logs: Vec::new(),
            closure_writes: mujs_ir::closure_writes::ClosureWrites::default(),
            cw_funcs_len: 0,
            cfg,
            stats: AnalysisStats::default(),
            output: Vec::new(),
            ctxs: ContextTable::new(),
            facts: FactDb::new(max_facts),
            observations: Vec::new(),
            setup_mode: true,
            deadline,
            cancel: None,
            progress: None,
            cells_allocated: 0,
            #[cfg(feature = "fault-inject")]
            faults: None,
            #[cfg(feature = "fault-inject")]
            forced_memfail: false,
        };
        crate::natives::install_models(&mut m);
        m.setup_mode = false;
        m.refresh_closure_writes();
        m
    }

    /// Installs supervision hooks (cancellation, progress, fault plan).
    /// Call before [`DMachine::run`]; the drivers do this automatically.
    pub fn install_hooks(&mut self, hooks: &RunHooks) {
        self.cancel = hooks.cancel.clone();
        self.progress = hooks.progress.clone();
        #[cfg(feature = "fault-inject")]
        {
            self.faults = hooks.faults.clone().map(crate::supervisor::FaultState::new);
        }
    }

    /// Checks the cooperative stop conditions — cancellation, wall-clock
    /// deadline, heap-cell budget — and publishes progress. Called from
    /// the step loop every `cfg.poll_interval` statements; each stop
    /// reason preserves the sound fact prefix exactly like the flush cap.
    pub(crate) fn poll_budgets(&mut self) -> Result<(), DErr> {
        if let Some(p) = &self.progress {
            p.store(self.steps, std::sync::atomic::Ordering::Relaxed);
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(DErr::Stop(AnalysisStatus::Cancelled));
        }
        #[cfg(feature = "fault-inject")]
        let deadline_suppressed = self.faults.as_ref().is_some_and(|f| f.plan.ignore_deadline);
        #[cfg(not(feature = "fault-inject"))]
        let deadline_suppressed = false;
        if let Some(dl) = self.deadline {
            if !deadline_suppressed && std::time::Instant::now() >= dl {
                return Err(DErr::Stop(AnalysisStatus::Deadline));
            }
        }
        let over_budget = self
            .cfg
            .mem_cell_budget
            .is_some_and(|b| self.cells_allocated > b);
        #[cfg(feature = "fault-inject")]
        let over_budget = over_budget || self.forced_memfail;
        if over_budget {
            return Err(DErr::Stop(AnalysisStatus::MemLimit));
        }
        Ok(())
    }

    /// Recomputes the closure-written-variable set; must be called after
    /// `eval` appends new functions to the program.
    pub(crate) fn refresh_closure_writes(&mut self) {
        if self.prog.funcs.len() != self.cw_funcs_len {
            self.closure_writes = mujs_ir::closure_writes::ClosureWrites::compute(self.prog);
            self.cw_funcs_len = self.prog.funcs.len();
        }
    }

    // ---------------------------------------------------------- accessors

    /// The global (`window`) object.
    pub fn global(&self) -> ObjId {
        self.global
    }

    /// Statements executed (including counterfactual ones).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current epoch (number of heap flushes so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether execution is currently counterfactual.
    pub fn in_counterfactual(&self) -> bool {
        self.cf_depth > 0
    }

    /// Borrows an object.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn obj(&self, id: ObjId) -> &Object<SlotAnn> {
        &self.heap[id.0 as usize]
    }

    /// Mutably borrows an object (bypasses logging; analysis internals
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn obj_mut(&mut self, id: ObjId) -> &mut Object<SlotAnn> {
        &mut self.heap[id.0 as usize]
    }

    /// Allocates an object; its record is closed as of the current epoch.
    pub fn alloc(&mut self, class: ObjClass, proto: Option<ObjId>, proto_det: Det) -> ObjId {
        self.cells_allocated += 1;
        #[cfg(feature = "fault-inject")]
        if let Some(fs) = self.faults.as_mut() {
            fs.allocs += 1;
            if fs.plan.alloc_fail_at == Some(fs.allocs) {
                self.forced_memfail = true;
            }
        }
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Object::new(class, proto));
        self.extras.push(ObjExtra {
            created_epoch: if self.setup_mode {
                BUILTIN_EPOCH
            } else {
                self.epoch
            },
            forced_open: false,
            proto_det,
        });
        id
    }

    /// Whether the record is open (unknown properties may exist in other
    /// executions). Setup-created objects (globals, prototypes) count as
    /// created at epoch 0: their *slots* survive flushes via the sentinel
    /// epoch, but once any flush has happened an unknown callee may have
    /// added properties, so absent-property reads become indeterminate.
    pub fn is_open(&self, id: ObjId) -> bool {
        let e = &self.extras[id.0 as usize];
        let created = if e.created_epoch == BUILTIN_EPOCH {
            0
        } else {
            e.created_epoch
        };
        e.forced_open || created < self.epoch
    }

    /// The determinacy of the object's prototype link.
    pub fn proto_det(&self, id: ObjId) -> Det {
        self.extras[id.0 as usize].proto_det
    }

    /// Draws from the seeded RNG (`Math.random`) — must match the
    /// concrete machine's stream for soundness testing.
    pub fn random(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// `Date.now` tick.
    pub fn now_tick(&mut self) -> f64 {
        self.now += 1.0 + self.rng.gen::<f64>() * 10.0;
        self.now
    }

    // ------------------------------------------------------------ flushes

    /// The heap flush: one epoch increment invalidates every non-builtin
    /// property slot and every captured-scope variable (§4).
    pub fn flush_heap(&mut self) -> Result<(), DErr> {
        self.epoch += 1;
        self.stats.heap_flushes += 1;
        if let Some(cap) = self.cfg.flush_cap {
            if self.stats.heap_flushes > cap {
                return Err(DErr::Stop(AnalysisStatus::FlushCapReached));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------- slots

    fn slot_flushable(ann: &SlotAnn) -> bool {
        ann.epoch != BUILTIN_EPOCH
    }

    /// Effective determinacy of a property slot right now.
    pub fn prop_slot_det(&self, ann: &SlotAnn) -> Det {
        ann.effective(self.epoch, Self::slot_flushable(ann))
    }

    /// Reads an own property with its effective determinacy; absent
    /// properties yield `undefined` flagged by the record's openness.
    pub fn own_prop_s(&self, obj: ObjId, key: Sym) -> DValue {
        match self.heap[obj.0 as usize].props.get(key) {
            Some(Slot { value, ann }) => DValue {
                v: value.clone(),
                d: self.prop_slot_det(ann),
            },
            None => {
                if self.is_open(obj) {
                    DValue::indet(Value::Undefined)
                } else {
                    DValue::det(Value::Undefined)
                }
            }
        }
    }

    /// [`DMachine::own_prop_s`] by name. A never-interned name cannot be
    /// an existing key, so it reads as absent.
    pub fn own_prop(&self, obj: ObjId, key: &str) -> DValue {
        match self.prog.interner.get(key) {
            Some(k) => self.own_prop_s(obj, k),
            None => {
                if self.is_open(obj) {
                    DValue::indet(Value::Undefined)
                } else {
                    DValue::det(Value::Undefined)
                }
            }
        }
    }

    /// Whether the object has an own (live) property.
    pub fn has_own_s(&self, obj: ObjId, key: Sym) -> bool {
        self.heap[obj.0 as usize].props.contains(key)
    }

    /// [`DMachine::has_own_s`] by name.
    pub fn has_own(&self, obj: ObjId, key: &str) -> bool {
        self.prog
            .interner
            .get(key)
            .is_some_and(|k| self.has_own_s(obj, k))
    }

    /// Writes a property slot, logging the old state for the active write
    /// regions.
    pub fn write_prop_s(&mut self, obj: ObjId, key: Sym, dv: DValue) {
        let ann = SlotAnn {
            det: dv.d,
            epoch: if self.setup_mode {
                BUILTIN_EPOCH
            } else {
                self.epoch
            },
        };
        let old = self.heap[obj.0 as usize]
            .props
            .insert(key, Slot { value: dv.v, ann })
            .map(|s| (s.value, s.ann));
        if old.is_none() {
            self.cells_allocated += 1;
        }
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Prop { obj, key, old });
        }
    }

    /// [`DMachine::write_prop_s`] by name, interning the key.
    pub fn write_prop(&mut self, obj: ObjId, key: &str, dv: DValue) {
        let key = self.prog.interner.intern(key);
        self.write_prop_s(obj, key, dv);
    }

    /// Deletes a property, logging it.
    pub fn delete_prop_s(&mut self, obj: ObjId, key: Sym) {
        let old = self.heap[obj.0 as usize]
            .props
            .remove(key)
            .map(|s| (s.value, s.ann));
        if old.is_some() {
            if let Some(top) = self.logs.last_mut() {
                top.entries.push(LogEntry::Prop { obj, key, old });
            }
        }
    }

    /// [`DMachine::delete_prop_s`] by name.
    pub fn delete_prop(&mut self, obj: ObjId, key: &str) {
        if let Some(k) = self.prog.interner.get(key) {
            self.delete_prop_s(obj, k);
        }
    }

    /// Forces a record open (indeterminate-name store, rule ŜTO) and marks
    /// all its properties indeterminate.
    pub fn open_record(&mut self, obj: ObjId) {
        let was = self.extras[obj.0 as usize].forced_open;
        self.extras[obj.0 as usize].forced_open = true;
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Opened { obj, was });
        }
        // Mark every property indeterminate (these are *marks*, not value
        // writes; counterfactual undo restores the slots wholesale via the
        // Opened + Prop entries of actual writes, so marks need no log).
        for (_, slot) in self.heap[obj.0 as usize].props.iter_mut() {
            slot.ann.det = Det::I;
        }
    }

    // -------------------------------------------------------- scope slots

    /// Creates an ext-only scope (catch blocks).
    pub(crate) fn new_scope(&mut self, parent: Option<ScopeId>, owner: FuncId) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        let fn_parent = self.nearest_activation(parent);
        self.scopes.push(DScope {
            owner,
            activation: false,
            slots: Vec::new(),
            ext: HashMap::new(),
            parent,
            fn_parent,
            captured: false,
        });
        id
    }

    /// Creates a function activation whose slot vector follows the
    /// function's static `locals` layout, every slot initialized to a
    /// determinate `undefined` at the current epoch — exactly the binding
    /// state a by-name declaration of `undefined` would produce.
    pub(crate) fn new_activation(&mut self, func: FuncId, parent: Option<ScopeId>) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        let n = self.prog.func(func).locals.len();
        let fn_parent = self.nearest_activation(parent);
        let init = SlotAnn {
            det: Det::D,
            epoch: self.epoch,
        };
        self.scopes.push(DScope {
            owner: func,
            activation: true,
            slots: vec![(Value::Undefined, init); n],
            ext: HashMap::new(),
            parent,
            fn_parent,
            captured: false,
        });
        id
    }

    /// The nearest activation scope at or above `from`.
    fn nearest_activation(&self, from: Option<ScopeId>) -> Option<ScopeId> {
        let mut cur = from;
        while let Some(sid) = cur {
            let s = &self.scopes[sid.0 as usize];
            if s.activation {
                return Some(sid);
            }
            cur = s.parent;
        }
        None
    }

    /// Position of `name` in the scope's static slot layout, if any.
    fn slot_index(&self, sid: ScopeId, name: Sym) -> Option<u32> {
        let s = &self.scopes[sid.0 as usize];
        if !s.activation {
            return None;
        }
        self.prog.func(s.owner).local_slot(name)
    }

    /// The activation scope `hops` function levels above the frame's own.
    pub(crate) fn hop_scope(&self, frame: &DFrame, hops: u32) -> Option<ScopeId> {
        let mut sid = frame.activation?;
        for _ in 0..hops {
            sid = self.scopes[sid.0 as usize].fn_parent?;
        }
        Some(sid)
    }

    pub(crate) fn mark_captured(&mut self, scope: Option<ScopeId>) {
        let mut cur = scope;
        while let Some(sid) = cur {
            let s = &mut self.scopes[sid.0 as usize];
            if s.captured {
                break;
            }
            s.captured = true;
            cur = s.parent;
        }
    }

    /// The effective determinacy of a scope binding: a flush models an
    /// unknown call, which can only have written this binding if the scope
    /// is captured *and* some closure actually assigns the name (see
    /// `mujs_ir::closure_writes`).
    fn scope_slot_det(&self, sid: ScopeId, name: Sym, ann: &SlotAnn) -> Det {
        let s = &self.scopes[sid.0 as usize];
        let flushable = Self::slot_flushable(ann)
            && s.captured
            && self.closure_writes.is_written(s.owner, name);
        ann.effective(self.epoch, flushable)
    }

    /// Reads a slot-resolved binding (already located; no name walk).
    pub(crate) fn read_slot(&self, sid: ScopeId, idx: u32, sym: Sym) -> DValue {
        let (v, ann) = &self.scopes[sid.0 as usize].slots[idx as usize];
        DValue {
            v: v.clone(),
            d: self.scope_slot_det(sid, sym, ann),
        }
    }

    /// Writes a slot-resolved binding, logging the old state.
    pub(crate) fn write_slot(&mut self, sid: ScopeId, idx: u32, dv: DValue) {
        let ann = SlotAnn {
            det: dv.d,
            epoch: self.epoch,
        };
        let old = std::mem::replace(
            &mut self.scopes[sid.0 as usize].slots[idx as usize],
            (dv.v, ann),
        );
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Var {
                scope: sid,
                key: VarKey::Slot(idx),
                old: Some(old),
            });
        }
    }

    /// Declares a binding (not logged as a write: declarations happen at
    /// activation entry, outside conditional regions; eval hoisting logs
    /// via [`DMachine::assign_var`]). Reuses the static slot when the name
    /// has one, so a name lives in exactly one place per scope.
    pub(crate) fn declare(&mut self, scope: Option<ScopeId>, name: Sym, dv: DValue) {
        match scope {
            Some(sid) => {
                let ann = SlotAnn {
                    det: dv.d,
                    epoch: self.epoch,
                };
                if let Some(i) = self.slot_index(sid, name) {
                    self.scopes[sid.0 as usize].slots[i as usize] = (dv.v, ann);
                } else {
                    self.scopes[sid.0 as usize].ext.insert(name, (dv.v, ann));
                }
            }
            None => self.write_prop_s(self.global, name, dv),
        }
    }

    /// Reads a variable through the scope chain; `None` if unbound.
    pub(crate) fn lookup_var(&self, scope: Option<ScopeId>, name: Sym) -> Option<DValue> {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some(i) = self.slot_index(sid, name) {
                return Some(self.read_slot(sid, i, name));
            }
            let s = &self.scopes[sid.0 as usize];
            if let Some((v, ann)) = s.ext.get(&name) {
                return Some(DValue {
                    v: v.clone(),
                    d: self.scope_slot_det(sid, name, ann),
                });
            }
            cur = s.parent;
        }
        if self.has_own_s(self.global, name) {
            Some(self.own_prop_s(self.global, name))
        } else {
            None
        }
    }

    /// Assigns a variable through the scope chain (creates a global when
    /// unbound), logging the write.
    pub(crate) fn assign_var(&mut self, scope: Option<ScopeId>, name: Sym, dv: DValue) {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some(i) = self.slot_index(sid, name) {
                self.write_slot(sid, i, dv);
                return;
            }
            if self.scopes[sid.0 as usize].ext.contains_key(&name) {
                let ann = SlotAnn {
                    det: dv.d,
                    epoch: self.epoch,
                };
                let old = self.scopes[sid.0 as usize].ext.insert(name, (dv.v, ann));
                if let Some(top) = self.logs.last_mut() {
                    top.entries.push(LogEntry::Var {
                        scope: sid,
                        key: VarKey::Ext(name),
                        old,
                    });
                }
                return;
            }
            cur = self.scopes[sid.0 as usize].parent;
        }
        self.write_prop_s(self.global, name, dv);
    }

    /// Writes a temp, logging it.
    pub(crate) fn write_temp(&mut self, frame: &mut DFrame, idx: u32, dv: DValue) {
        let old = std::mem::replace(&mut frame.temps[idx as usize], dv);
        if let Some(top) = self.logs.last_mut() {
            top.entries.push(LogEntry::Temp {
                frame: frame.serial,
                idx,
                old,
            });
        }
    }

    // ------------------------------------------------------- log regions

    /// Opens a write-log region.
    pub(crate) fn push_log(&mut self, _counterfactual: bool) {
        self.logs.push(LogFrame {
            entries: Vec::new(),
        });
    }

    /// Closes the current region, marking every written location
    /// indeterminate (rule ÎF1 with `d = ?`), and propagates the entries
    /// to the enclosing region.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub(crate) fn pop_log_mark(&mut self, frame: &mut DFrame) {
        let region = self.logs.pop().expect("log region open");
        for e in &region.entries {
            self.mark_entry(e, frame);
        }
        self.propagate_entries(region.entries);
    }

    /// Closes the current region, undoing every write in reverse order and
    /// marking the (restored) locations indeterminate — rule ĈNTR's
    /// `ρ̂′[vd(t̂) := ρ̂?]` / `ĥ′[pd(t̂) := ĥ?]`.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub(crate) fn pop_log_undo_mark(&mut self, frame: &mut DFrame) {
        let region = self.logs.pop().expect("log region open");
        for e in region.entries.iter().rev() {
            self.undo_entry(e, frame);
        }
        for e in &region.entries {
            self.mark_entry(e, frame);
        }
        self.propagate_entries(region.entries);
    }

    fn propagate_entries(&mut self, entries: Vec<LogEntry>) {
        if let Some(parent) = self.logs.last_mut() {
            parent.entries.extend(entries);
        }
    }

    /// Marks the location of a log entry indeterminate in the current
    /// state.
    fn mark_entry(&mut self, e: &LogEntry, frame: &mut DFrame) {
        match e {
            LogEntry::Prop { obj, key, .. } => {
                match self.heap[obj.0 as usize].props.get_mut(*key) {
                    Some(slot) => slot.ann.det = Det::I,
                    // The property is now absent (deleted in the region, or
                    // the undo removed it): other executions may have it,
                    // so the record's contents are unknown.
                    None => {
                        self.extras[obj.0 as usize].forced_open = true;
                    }
                }
            }
            LogEntry::Var { scope, key, .. } => {
                let s = &mut self.scopes[scope.0 as usize];
                match key {
                    VarKey::Slot(i) => s.slots[*i as usize].1.det = Det::I,
                    VarKey::Ext(name) => {
                        if let Some((_, ann)) = s.ext.get_mut(name) {
                            ann.det = Det::I;
                        }
                    }
                }
            }
            LogEntry::Temp { frame: fs, idx, .. } => {
                if *fs == frame.serial {
                    frame.temps[*idx as usize].d = Det::I;
                }
            }
            LogEntry::Opened { .. } => {}
        }
    }

    /// Restores the pre-region state for one entry.
    fn undo_entry(&mut self, e: &LogEntry, frame: &mut DFrame) {
        match e {
            LogEntry::Prop { obj, key, old } => match old {
                Some((v, ann)) => {
                    self.heap[obj.0 as usize].props.insert(
                        *key,
                        Slot {
                            value: v.clone(),
                            ann: *ann,
                        },
                    );
                }
                None => {
                    self.heap[obj.0 as usize].props.remove(*key);
                }
            },
            LogEntry::Var { scope, key, old } => {
                let s = &mut self.scopes[scope.0 as usize];
                match (key, old) {
                    (VarKey::Slot(i), Some((v, ann))) => {
                        s.slots[*i as usize] = (v.clone(), *ann);
                    }
                    // A static slot always exists, so its log entries
                    // always carry the previous state.
                    (VarKey::Slot(_), None) => {}
                    (VarKey::Ext(name), Some((v, ann))) => {
                        s.ext.insert(*name, (v.clone(), *ann));
                    }
                    (VarKey::Ext(name), None) => {
                        s.ext.remove(name);
                    }
                }
            }
            LogEntry::Temp {
                frame: fs,
                idx,
                old,
            } => {
                if *fs == frame.serial {
                    frame.temps[*idx as usize] = old.clone();
                }
            }
            LogEntry::Opened { obj, was } => {
                self.extras[obj.0 as usize].forced_open = *was;
            }
        }
    }

    /// The conservative ĈNTRABORT: flush the heap and mark the static
    /// write domain of the unexecuted code indeterminate. With `eval`
    /// inside, the whole visible scope chain is poisoned.
    pub(crate) fn cntr_abort(
        &mut self,
        frame: &mut DFrame,
        blocks: &[&[mujs_ir::Stmt]],
    ) -> Result<(), DErr> {
        self.stats.cf_aborts += 1;
        self.flush_heap()?;
        for block in blocks {
            let wd = mujs_ir::vd::write_domain(block);
            if wd.contains_eval {
                self.mark_scope_chain_indet(frame.scope);
            }
            for place in &wd.places {
                match place {
                    mujs_ir::Place::Temp(t) => {
                        if let Some(slot) = frame.temps.get_mut(t.0 as usize) {
                            slot.d = Det::I;
                        }
                    }
                    // The write domain canonicalizes slot-resolved places
                    // to names, so a scope walk covers both.
                    p => {
                        if let Some(name) = p.as_var_sym() {
                            self.mark_var_indet(frame.scope, name);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn mark_var_indet(&mut self, scope: Option<ScopeId>, name: Sym) {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some(i) = self.slot_index(sid, name) {
                self.scopes[sid.0 as usize].slots[i as usize].1.det = Det::I;
                return;
            }
            let s = &mut self.scopes[sid.0 as usize];
            if let Some((_, ann)) = s.ext.get_mut(&name) {
                ann.det = Det::I;
                return;
            }
            cur = s.parent;
        }
        if let Some(slot) = self.heap[self.global.0 as usize].props.get_mut(name) {
            slot.ann.det = Det::I;
        }
    }

    fn mark_scope_chain_indet(&mut self, scope: Option<ScopeId>) {
        let mut cur = scope;
        while let Some(sid) = cur {
            let s = &mut self.scopes[sid.0 as usize];
            for (_, ann) in s.slots.iter_mut() {
                ann.det = Det::I;
            }
            for (_, (_, ann)) in s.ext.iter_mut() {
                ann.det = Det::I;
            }
            cur = s.parent;
        }
    }

    // -------------------------------------------------------- registration

    /// Registers a native model.
    pub fn register_native(&mut self, name: &'static str, f: DNativeFn) -> ObjId {
        let nid = mujs_interp::NativeId(self.natives.len() as u32);
        self.natives.push((name, f));
        let obj = self.alloc(ObjClass::Native(nid), Some(self.protos.function), Det::D);
        self.heap[obj.0 as usize].builtin = true;
        obj
    }

    /// Raw determinate property install (library setup).
    pub fn set_raw(&mut self, obj: ObjId, name: &str, v: Value) {
        self.write_prop(obj, name, DValue::det(v));
    }

    /// Raw own-property read.
    pub fn get_raw(&self, obj: ObjId, name: &str) -> Option<Value> {
        let k = self.prog.interner.get(name)?;
        self.get_raw_s(obj, k)
    }

    /// Raw own-property read by symbol.
    pub fn get_raw_s(&self, obj: ObjId, key: Sym) -> Option<Value> {
        self.heap[obj.0 as usize]
            .props
            .get(key)
            .map(|s| s.value.clone())
    }

    /// Builds and throws a fresh error object. `indet_ctl` says whether
    /// other executions might not throw here.
    pub fn throw_error(&mut self, kind: &str, msg: &str, indet_ctl: bool) -> DErr {
        let e = self.alloc(ObjClass::Plain, Some(self.protos.error), Det::D);
        self.write_prop_s(e, Sym::NAME, DValue::det(Value::Str(Rc::from(kind))));
        self.write_prop_s(e, Sym::MESSAGE, DValue::det(Value::Str(Rc::from(msg))));
        DErr::Thrown(DValue::det(Value::Object(e)), indet_ctl)
    }

    /// Renders a value for output capture (mirrors the concrete machine).
    /// Rendering streams into one buffer instead of materializing a string
    /// per array element, and stops at [`DISPLAY_BYTE_CAP`]; small-array
    /// output (all of the corpus) is byte-identical to the old eager
    /// rendering.
    pub fn display(&self, v: &Value) -> String {
        let mut out = String::new();
        self.display_into(&mut out, v);
        out
    }

    fn display_into(&self, out: &mut String, v: &Value) {
        match v {
            Value::Str(s) => out.push_str(s),
            Value::Object(id) => match &self.obj(*id).class {
                ObjClass::Array => {
                    let len = match self.get_raw_s(*id, Sym::LENGTH) {
                        Some(Value::Num(n)) => n as usize,
                        _ => 0,
                    };
                    for i in 0..len.min(100) {
                        if i > 0 {
                            out.push(',');
                        }
                        if out.len() > DISPLAY_BYTE_CAP {
                            return;
                        }
                        if let Some(item) = self.get_raw(*id, &i.to_string()) {
                            self.display_into(out, &item);
                        }
                    }
                }
                c if c.is_callable() => out.push_str("function"),
                _ => out.push_str("[object Object]"),
            },
            other => match mujs_interp::coerce::to_string(other) {
                Ok(s) => out.push_str(&s),
                Err(_) => out.push_str("[object]"),
            },
        }
    }
}
