//! Structural validation of lowered [`Program`]s.
//!
//! The IR carries several cross-cutting invariants that no single pass
//! owns: slot coordinates must agree with the frame layouts computed by
//! `mujs_ir::slots`, every `Sym` must be resolvable through the program's
//! interner, statement ids must index the side tables of the function
//! that contains them, and the `has_direct_eval` flag must not understate
//! the body (the interpreters and the slot resolver both trust it). The
//! lowering pipeline, the runtime `eval` path, and the specializer all
//! *produce* programs; this pass is the one place that checks what they
//! produced.
//!
//! The checks mirror the exact conservatism of `slots::resolve`: a
//! `Place::Slot { hops, slot, sym }` referenced from function `f` is valid
//! iff walking `hops` parents from `f` crosses only `Function`-kind frames
//! that neither declare `sym` (it would shadow) nor contain a direct
//! `eval` (it could shadow dynamically), and lands on a frame whose
//! `locals[slot]` is exactly `sym`. The definer's *own* direct eval is
//! fine — `eval("var x")` re-declares into the existing slot — which is
//! why the eval check applies to frames strictly below the definer only.

use mujs_ir::ir::{FuncId, FuncKind, Function, Place, Program, PropKey, StmtId, StmtKind, TempId};
use mujs_ir::slots::layout_locals;
use mujs_ir::Sym;

/// A single invariant violation, attributed to the function (and where
/// meaningful, the statement) it was found in.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A `Sym` is not present in the program's interner.
    SymOutOfRange {
        /// Function the symbol occurs in.
        func: FuncId,
        /// The out-of-range symbol.
        sym: Sym,
        /// Where in the function it occurs.
        what: &'static str,
    },
    /// A `FuncId` reference does not index `Program::funcs`.
    FuncOutOfRange {
        /// Function the reference occurs in.
        func: FuncId,
        /// The dangling id.
        target: FuncId,
        /// Where the reference occurs.
        what: &'static str,
    },
    /// `funcs[i].id != i` — the arena index and the stored id disagree.
    FuncIdMismatch {
        /// The arena index.
        index: u32,
        /// The id stored at that index.
        id: FuncId,
    },
    /// The parent chain starting at `func` does not terminate.
    ParentCycle {
        /// The function whose chain cycles.
        func: FuncId,
    },
    /// A statement id does not index `Program::stmt_info`.
    StmtOutOfRange {
        /// Containing function.
        func: FuncId,
        /// The out-of-range id.
        stmt: StmtId,
    },
    /// A statement occurs in the body of a function other than the one
    /// `stmt_info` records for it.
    StmtWrongFunc {
        /// The function whose body contains the statement.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The function the side table attributes it to.
        recorded: FuncId,
    },
    /// A statement's dense per-function index is out of range for the
    /// recorded function (per-frame occurrence vectors would overflow).
    StmtLocalOutOfRange {
        /// Containing function.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// Its recorded dense index.
        local: u32,
        /// The function's statement count.
        count: u32,
    },
    /// The same statement id appears twice in the program (facts keyed by
    /// program point would conflate the two sites).
    DuplicateStmt {
        /// The duplicated id.
        stmt: StmtId,
        /// Function of the first occurrence.
        first: FuncId,
        /// Function of the second occurrence.
        second: FuncId,
    },
    /// A temporary index is not within its function's frame.
    TempOutOfRange {
        /// Containing function.
        func: FuncId,
        /// The statement using the temp.
        stmt: StmtId,
        /// The out-of-range temp.
        temp: TempId,
        /// The frame's temp count.
        n_temps: u32,
    },
    /// A slot place's `hops` walk runs off the top of the parent chain.
    SlotBrokenChain {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The referenced name.
        sym: Sym,
        /// The hop count that could not be walked.
        hops: u32,
    },
    /// A slot place's chain crosses (or lands on) a frame that has no
    /// activation of its own (script or eval chunk).
    SlotNonFunctionFrame {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The referenced name.
        sym: Sym,
        /// The offending frame.
        frame: FuncId,
    },
    /// A slot index is past the end of the definer's locals.
    SlotOutOfRange {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The referenced name.
        sym: Sym,
        /// The definer frame.
        definer: FuncId,
        /// The out-of-range slot index.
        slot: u32,
    },
    /// The definer's local at the slot index is a different name.
    SlotSymMismatch {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The name the place claims.
        sym: Sym,
        /// The definer frame.
        definer: FuncId,
        /// The slot index.
        slot: u32,
    },
    /// An intermediate frame on the hops walk declares the same name —
    /// the reference would bind there, not at the claimed definer.
    SlotShadowed {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The referenced name.
        sym: Sym,
        /// The shadowing frame.
        frame: FuncId,
    },
    /// An intermediate frame on the hops walk contains a direct `eval`,
    /// which could introduce a dynamic shadow.
    SlotCrossesEval {
        /// Function containing the reference.
        func: FuncId,
        /// The statement.
        stmt: StmtId,
        /// The referenced name.
        sym: Sym,
        /// The frame with the direct eval.
        frame: FuncId,
    },
    /// The body contains a direct `eval` statement but
    /// `Function::has_direct_eval` is false — slot resolution and the
    /// write-domain logic would trust a lie.
    MissingEvalFlag {
        /// The mis-flagged function.
        func: FuncId,
    },
    /// `Function::locals` does not match the layout the frame was
    /// resolved against (`slots::layout_locals` for original functions,
    /// the original's layout for specializer clones, empty for scripts
    /// and eval chunks).
    LocalsLayoutMismatch {
        /// The mismatched function.
        func: FuncId,
    },
    /// `Function::locals` contains the same name twice — slot positions
    /// would be ambiguous.
    DuplicateLocal {
        /// The function with the duplicate.
        func: FuncId,
        /// The duplicated name.
        sym: Sym,
    },
}

impl Violation {
    /// The function the violation is attributed to.
    pub fn func(&self) -> FuncId {
        use Violation::*;
        match *self {
            SymOutOfRange { func, .. }
            | FuncOutOfRange { func, .. }
            | ParentCycle { func }
            | StmtOutOfRange { func, .. }
            | StmtWrongFunc { func, .. }
            | StmtLocalOutOfRange { func, .. }
            | TempOutOfRange { func, .. }
            | SlotBrokenChain { func, .. }
            | SlotNonFunctionFrame { func, .. }
            | SlotOutOfRange { func, .. }
            | SlotSymMismatch { func, .. }
            | SlotShadowed { func, .. }
            | SlotCrossesEval { func, .. }
            | MissingEvalFlag { func }
            | LocalsLayoutMismatch { func }
            | DuplicateLocal { func, .. } => func,
            FuncIdMismatch { index, .. } => FuncId(index),
            DuplicateStmt { second, .. } => second,
        }
    }

    /// Renders the violation with names resolved through `prog`'s
    /// interner (when the offending `Sym` is itself valid).
    pub fn describe(&self, prog: &Program) -> String {
        let name = |s: Sym| -> String {
            if (s.0 as usize) < prog.interner.len() {
                format!("`{}`", prog.interner.resolve(s))
            } else {
                format!("sym#{}", s.0)
            }
        };
        use Violation::*;
        match *self {
            SymOutOfRange { func, sym, what } => {
                format!("{func}: {what} sym#{} is not interned", sym.0)
            }
            FuncOutOfRange { func, target, what } => {
                format!("{func}: {what} references non-existent {target}")
            }
            FuncIdMismatch { index, id } => {
                format!("funcs[{index}] carries id {id}")
            }
            ParentCycle { func } => format!("{func}: parent chain does not terminate"),
            StmtOutOfRange { func, stmt } => {
                format!("{func}: {stmt} has no stmt_info entry")
            }
            StmtWrongFunc {
                func,
                stmt,
                recorded,
            } => format!("{func}: {stmt} is recorded as belonging to {recorded}"),
            StmtLocalOutOfRange {
                func,
                stmt,
                local,
                count,
            } => format!("{func}: {stmt} has dense index {local} but the function only counts {count} statements"),
            DuplicateStmt {
                stmt,
                first,
                second,
            } => format!("{stmt} appears in both {first} and {second}"),
            TempOutOfRange {
                func,
                stmt,
                temp,
                n_temps,
            } => format!("{func}: {stmt} uses {temp} but the frame has {n_temps} temps"),
            SlotBrokenChain {
                func,
                stmt,
                sym,
                hops,
            } => format!(
                "{func}: {stmt} slot reference to {} walks {hops} hops off the scope chain",
                name(sym)
            ),
            SlotNonFunctionFrame {
                func,
                stmt,
                sym,
                frame,
            } => format!(
                "{func}: {stmt} slot reference to {} crosses activation-less frame {frame}",
                name(sym)
            ),
            SlotOutOfRange {
                func,
                stmt,
                sym,
                definer,
                slot,
            } => format!(
                "{func}: {stmt} slot reference to {} indexes slot {slot} past the locals of {definer}",
                name(sym)
            ),
            SlotSymMismatch {
                func,
                stmt,
                sym,
                definer,
                slot,
            } => format!(
                "{func}: {stmt} slot reference claims {} but {definer} slot {slot} holds {}",
                name(sym),
                name(prog.func(definer).locals[slot as usize])
            ),
            SlotShadowed {
                func,
                stmt,
                sym,
                frame,
            } => format!(
                "{func}: {stmt} slot reference to {} is shadowed by a declaration in {frame}",
                name(sym)
            ),
            SlotCrossesEval {
                func,
                stmt,
                sym,
                frame,
            } => format!(
                "{func}: {stmt} slot reference to {} crosses {frame}, which has a direct eval",
                name(sym)
            ),
            MissingEvalFlag { func } => {
                format!("{func}: body contains a direct eval but has_direct_eval is false")
            }
            LocalsLayoutMismatch { func } => {
                format!("{func}: locals do not match the expected frame layout")
            }
            DuplicateLocal { func, sym } => {
                format!("{func}: locals contain {} twice", name(sym))
            }
        }
    }
}

/// Validates every structural invariant of `prog`, returning all
/// violations found (empty means the program is well-formed).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let ast = mujs_syntax::parse("function f(a) { return a + 1; }")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// assert!(mujs_analysis::validate_program(&prog).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn validate_program(prog: &Program) -> Vec<Violation> {
    let mut v = Validator {
        prog,
        n_syms: prog.interner.len() as u32,
        seen_stmt: vec![None; prog.stmt_count()],
        out: Vec::new(),
    };
    for (i, f) in prog.funcs.iter().enumerate() {
        v.function(i as u32, f);
    }
    v.out
}

/// Panics with a rendered violation list if `prog` is not well-formed.
/// This is the debug-build hook the lowering pipelines call.
pub fn assert_valid(prog: &Program) {
    let violations = validate_program(prog);
    if !violations.is_empty() {
        let rendered: Vec<String> = violations.iter().map(|x| x.describe(prog)).collect();
        panic!(
            "IR validation failed with {} violation(s):\n  {}",
            rendered.len(),
            rendered.join("\n  ")
        );
    }
}

struct Validator<'a> {
    prog: &'a Program,
    n_syms: u32,
    seen_stmt: Vec<Option<FuncId>>,
    out: Vec<Violation>,
}

impl Validator<'_> {
    fn sym(&mut self, func: FuncId, sym: Sym, what: &'static str) {
        if sym.0 >= self.n_syms {
            self.out.push(Violation::SymOutOfRange { func, sym, what });
        }
    }

    fn func_ref(&mut self, func: FuncId, target: FuncId, what: &'static str) -> bool {
        if target.0 as usize >= self.prog.funcs.len() {
            self.out
                .push(Violation::FuncOutOfRange { func, target, what });
            false
        } else {
            true
        }
    }

    fn function(&mut self, index: u32, f: &Function) {
        let fid = FuncId(index);
        if f.id != fid {
            self.out.push(Violation::FuncIdMismatch { index, id: f.id });
        }
        // Declarations and scope metadata.
        if let Some(n) = f.name {
            self.sym(fid, n, "function name");
        }
        for &p in &f.params {
            self.sym(fid, p, "parameter");
        }
        for &s in &f.decls.vars {
            self.sym(fid, s, "var declaration");
        }
        for &(n, g) in &f.decls.funcs {
            self.sym(fid, n, "hoisted function name");
            self.func_ref(fid, g, "hoisted function declaration");
        }
        for &l in &f.locals {
            self.sym(fid, l, "local slot");
        }
        if let Some(p) = f.parent {
            self.func_ref(fid, p, "parent");
        }
        if let Some(orig) = f.specialized_from {
            self.func_ref(fid, orig, "specialized_from");
        }
        self.parent_chain(fid, f);
        self.locals_layout(fid, f);
        // The eval flag may be conservatively stale-true (the specializer
        // eliminates evals without clearing it on failure paths), but it
        // must never understate the body.
        let mut has_eval = false;
        Program::walk_block(&f.body, &mut |s| {
            if matches!(s.kind, StmtKind::Eval { .. }) {
                has_eval = true;
            }
        });
        if has_eval && !f.has_direct_eval {
            self.out.push(Violation::MissingEvalFlag { func: fid });
        }
        // Statements.
        let mut stmts = Vec::new();
        Program::walk_block(&f.body, &mut |s| stmts.push(s));
        for s in stmts {
            self.stmt_id(fid, f, s.id);
            self.stmt_kind(fid, f, s.id, &s.kind);
        }
    }

    fn parent_chain(&mut self, fid: FuncId, f: &Function) {
        let mut cur = f.parent;
        let mut fuel = self.prog.funcs.len();
        while let Some(p) = cur {
            if p.0 as usize >= self.prog.funcs.len() {
                return; // already reported by func_ref
            }
            if fuel == 0 {
                self.out.push(Violation::ParentCycle { func: fid });
                return;
            }
            fuel -= 1;
            cur = self.prog.func(p).parent;
        }
    }

    fn locals_layout(&mut self, fid: FuncId, f: &Function) {
        for (i, &l) in f.locals.iter().enumerate() {
            if f.locals[..i].contains(&l) {
                self.out
                    .push(Violation::DuplicateLocal { func: fid, sym: l });
            }
        }
        let ok = match (f.kind, f.specialized_from) {
            // Scripts and eval chunks have no activation of their own.
            (FuncKind::Script, _) | (FuncKind::EvalChunk, _) => f.locals.is_empty(),
            // Clones keep the original's frame layout verbatim: the
            // specializer merges inlined-eval declarations into `decls`
            // but the activation the slots were resolved against is the
            // original's.
            (FuncKind::Function, Some(orig)) => {
                if (orig.0 as usize) < self.prog.funcs.len() {
                    f.locals == self.prog.func(orig).locals
                } else {
                    true // dangling orig already reported
                }
            }
            (FuncKind::Function, None) => f.locals == layout_locals(f),
        };
        if !ok {
            self.out.push(Violation::LocalsLayoutMismatch { func: fid });
        }
    }

    fn stmt_id(&mut self, fid: FuncId, f: &Function, id: StmtId) {
        if id.0 as usize >= self.prog.stmt_count() {
            self.out.push(Violation::StmtOutOfRange {
                func: fid,
                stmt: id,
            });
            return;
        }
        let recorded = self.prog.func_of(id);
        if recorded != f.id {
            self.out.push(Violation::StmtWrongFunc {
                func: fid,
                stmt: id,
                recorded,
            });
        }
        let local = self.prog.local_of(id);
        let count = self.prog.stmt_count_of(recorded);
        if local >= count {
            self.out.push(Violation::StmtLocalOutOfRange {
                func: fid,
                stmt: id,
                local,
                count,
            });
        }
        match self.seen_stmt[id.0 as usize] {
            Some(first) => self.out.push(Violation::DuplicateStmt {
                stmt: id,
                first,
                second: fid,
            }),
            None => self.seen_stmt[id.0 as usize] = Some(fid),
        }
    }

    fn stmt_kind(&mut self, fid: FuncId, f: &Function, id: StmtId, kind: &StmtKind) {
        kind.for_each_place(&mut |p| match *p {
            Place::Temp(t) => {
                if t.0 >= f.n_temps {
                    self.out.push(Violation::TempOutOfRange {
                        func: fid,
                        stmt: id,
                        temp: t,
                        n_temps: f.n_temps,
                    });
                }
            }
            Place::Named(s) => {
                if s.0 >= self.n_syms {
                    self.out.push(Violation::SymOutOfRange {
                        func: fid,
                        sym: s,
                        what: "named place",
                    });
                }
            }
            Place::Slot { hops, slot, sym } => self.slot(fid, id, hops, slot, sym),
        });
        match kind {
            StmtKind::Closure { func, .. } => {
                self.func_ref(fid, *func, "closure");
            }
            StmtKind::GetProp { key, .. }
            | StmtKind::SetProp { key, .. }
            | StmtKind::DeleteProp { key, .. } => {
                if let PropKey::Static(s) = key {
                    self.sym(fid, *s, "static property key");
                }
            }
            StmtKind::TypeofName { name, .. } => self.sym(fid, *name, "typeof operand"),
            StmtKind::Try {
                catch: Some((s, _)),
                ..
            } => self.sym(fid, *s, "catch binding"),
            _ => {}
        }
    }

    /// Mirror of `slots::resolve`: the coordinate must be exactly what
    /// the resolver would have produced.
    fn slot(&mut self, fid: FuncId, stmt: StmtId, hops: u32, slot: u32, sym: Sym) {
        self.sym(fid, sym, "slot place");
        if sym.0 >= self.n_syms {
            return;
        }
        let n = self.prog.funcs.len();
        let mut cur = fid;
        for walked in 0..hops {
            if walked as usize > n {
                // Longer than any acyclic parent chain could be; the
                // cycle itself is reported separately.
                self.out.push(Violation::SlotBrokenChain {
                    func: fid,
                    stmt,
                    sym,
                    hops,
                });
                return;
            }
            let frame = self.prog.func(cur);
            if frame.kind != FuncKind::Function {
                self.out.push(Violation::SlotNonFunctionFrame {
                    func: fid,
                    stmt,
                    sym,
                    frame: cur,
                });
                return;
            }
            if frame.locals.contains(&sym) {
                self.out.push(Violation::SlotShadowed {
                    func: fid,
                    stmt,
                    sym,
                    frame: cur,
                });
                return;
            }
            if frame.has_direct_eval {
                self.out.push(Violation::SlotCrossesEval {
                    func: fid,
                    stmt,
                    sym,
                    frame: cur,
                });
                return;
            }
            match frame.parent {
                Some(p) if (p.0 as usize) < n => cur = p,
                _ => {
                    self.out.push(Violation::SlotBrokenChain {
                        func: fid,
                        stmt,
                        sym,
                        hops,
                    });
                    return;
                }
            }
        }
        let definer = self.prog.func(cur);
        if definer.kind != FuncKind::Function {
            self.out.push(Violation::SlotNonFunctionFrame {
                func: fid,
                stmt,
                sym,
                frame: cur,
            });
            return;
        }
        if slot as usize >= definer.locals.len() {
            self.out.push(Violation::SlotOutOfRange {
                func: fid,
                stmt,
                sym,
                definer: cur,
                slot,
            });
            return;
        }
        if definer.locals[slot as usize] != sym {
            self.out.push(Violation::SlotSymMismatch {
                func: fid,
                stmt,
                sym,
                definer: cur,
                slot,
            });
        }
    }
}
