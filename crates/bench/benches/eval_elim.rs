//! §5.2 pipeline cost: full analyze → specialize runs over representative
//! eval benchmarks (one per outcome category).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;
use mujs_specialize::SpecConfig;

fn pipeline(b: &mujs_corpus::evalbench::EvalBenchmark) -> usize {
    let mut h = determinacy::DetHarness::from_src(&b.src).expect("parses");
    let mut out = if b.needs_dom {
        h.analyze_dom(AnalysisConfig::default(), b.doc(), &b.plan())
    } else {
        h.analyze(AnalysisConfig::default())
    };
    let spec = mujs_specialize::specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    spec.report.evals_eliminated
}

fn bench(c: &mut Criterion) {
    let picks = ["concat-ivymap", "forin-dispatch", "bounded-loop", "dom-arg"];
    let suite = mujs_corpus::evalbench::all();
    let mut g = c.benchmark_group("eval_elim_pipeline");
    g.sample_size(10);
    for name in picks {
        let b = suite.iter().find(|b| b.name == name).expect("exists");
        g.bench_with_input(BenchmarkId::from_parameter(name), b, |bench, b| {
            bench.iter(|| pipeline(b))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
