//! Deeper semantics: eval-chunk scoping, prototype mutation visibility,
//! and constructor edge cases.

use mujs_interp::driver::run_src;

fn out(src: &str) -> Vec<String> {
    run_src(src).expect("parses and runs")
}

#[test]
fn eval_defined_functions_are_callable_later() {
    assert_eq!(
        out("eval(\"function g(x) { return x * 2; }\"); console.log(g(21));"),
        vec!["42"]
    );
}

#[test]
fn eval_sees_and_mutates_enclosing_locals() {
    let src = r#"
function f() {
  var a = 1;
  eval("a = a + 10;");
  return a;
}
console.log(f());
"#;
    assert_eq!(out(src), vec!["11"]);
}

#[test]
fn nested_eval() {
    assert_eq!(out("console.log(eval(\"eval('2 + 3') * 2\"));"), vec!["10"]);
}

#[test]
fn eval_of_non_string_returns_value() {
    assert_eq!(out("console.log(eval(42));"), vec!["42"]);
}

#[test]
fn eval_syntax_error_throws_catchable() {
    let src = r#"
try { eval("var ="); console.log("no"); }
catch (e) { console.log("caught", e.name); }
"#;
    assert_eq!(out(src), vec!["caught SyntaxError"]);
}

#[test]
fn prototype_mutation_visible_to_existing_instances() {
    let src = r#"
function F() {}
var a = new F();
F.prototype.m = function() { return "late"; };
console.log(a.m());
"#;
    assert_eq!(out(src), vec!["late"]);
}

#[test]
fn own_property_shadows_prototype() {
    let src = r#"
function F() {}
F.prototype.v = 1;
var a = new F();
a.v = 2;
var b = new F();
console.log(a.v, b.v);
delete a.v;
console.log(a.v);
"#;
    assert_eq!(out(src), vec!["2 1", "1"]);
}

#[test]
fn two_level_prototype_chain() {
    let src = r#"
function A() {}
A.prototype.who = function() { return "A"; };
function B() {}
B.prototype = new A();
var b = new B();
console.log(b.who(), b instanceof B, b instanceof A);
"#;
    assert_eq!(out(src), vec!["A true true"]);
}

#[test]
fn constructor_without_args_parses_and_runs() {
    assert_eq!(
        out("function F() { this.x = 9; } var o = new F; console.log(o.x);"),
        vec!["9"]
    );
}

#[test]
fn builtin_constructors() {
    assert_eq!(
        out("var a = new Array(3); console.log(a.length);"),
        vec!["3"]
    );
    assert_eq!(
        out("var e = new Error(\"boom\"); console.log(e.message, e.name);"),
        vec!["boom Error"]
    );
    assert_eq!(
        out("var o = new Object(); o.k = 1; console.log(o.k);"),
        vec!["1"]
    );
}

#[test]
fn error_objects_catchable_with_instanceof() {
    let src = r#"
try { throw new Error("x"); }
catch (e) { console.log(e instanceof Error); }
"#;
    assert_eq!(out(src), vec!["true"]);
}

#[test]
fn this_in_eval_matches_caller() {
    let src = r#"
var o = { v: 5, m: function() { return eval("this.v"); } };
console.log(o.m());
"#;
    assert_eq!(out(src), vec!["5"]);
}

#[test]
fn global_functions_visible_across_eval_boundary() {
    assert_eq!(
        out("function h() { return 7; } console.log(eval(\"h()\"));"),
        vec!["7"]
    );
}

#[test]
fn string_number_boolean_wrappers_as_calls() {
    assert_eq!(
        out("console.log(String(12), Number(\"3\"), Boolean(\"\"), Boolean(\"x\"));"),
        vec!["12 3 false true"]
    );
}

#[test]
fn window_props_and_typeof_interaction() {
    assert_eq!(
        out("console.log(typeof window.missing, typeof window.Math);"),
        vec!["undefined object"]
    );
}
