//! Scheduler-level chaos: a seed-deterministic fault plan for the job
//! pool, compiled only under the `fault-inject` feature.
//!
//! The core crate's `FaultPlan` injects faults *inside* one analysis run
//! (native panics, allocation failures). This plan injects faults in the
//! *scheduler* around runs: it kills attempts as if the worker died
//! mid-job, drops or delays progress-event sends, and truncates
//! checkpoint writes. Every decision is a pure function of
//! `(seed, coordinates)` — the same plan replays the same faults — so the
//! chaos equivalence suite can assert the headline invariant: for any
//! fault schedule built from *retryable* faults, the final batch report
//! is byte-identical to the fault-free run, at any worker count.

use crate::retry::splitmix64;

/// What should happen to the nth event send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop the event (the listener never sees it).
    Drop,
    /// Sleep this many milliseconds, then deliver.
    Delay(u64),
}

/// A deterministic scheduler fault schedule.
///
/// Percentages are per-decision probabilities driven by
/// [`splitmix64`][crate::retry] over the seed and the decision's
/// coordinates (job index and attempt for kills, a global sequence number
/// for events), so a plan is exactly reproducible and independent of
/// thread interleaving.
#[derive(Debug, Clone)]
pub struct SchedulerFaultPlan {
    /// Root seed; every decision mixes it with its coordinates.
    pub seed: u64,
    /// Percent chance `[0, 100]` that a given (job, attempt) is killed
    /// mid-flight (surfaces to the pool exactly like a worker panic).
    pub kill_pct: u8,
    /// Kill only attempts `<= kill_max_attempt`; `0` disables kills.
    /// Keeping this below the retry policy's `max_attempts` guarantees a
    /// killed job always has a live attempt left — the *retryable
    /// schedule* precondition of the equivalence suite.
    pub kill_max_attempt: u32,
    /// Percent chance an event send is dropped.
    pub drop_event_pct: u8,
    /// Percent chance an event send is delayed (checked after drop).
    pub delay_event_pct: u8,
    /// Delay duration for delayed events, in milliseconds.
    pub delay_event_ms: u64,
    /// Truncate every nth checkpoint write mid-file (simulates a crash
    /// during the temp-file write; the atomic rename must never publish
    /// the torn file). `None` disables truncation.
    pub truncate_checkpoint_every: Option<u64>,
}

impl SchedulerFaultPlan {
    /// A moderately hostile schedule derived from `seed`: kills roughly
    /// 40% of first and second attempts, perturbs 20% of event sends, and
    /// leaves checkpoints alone. All faults are retryable under a policy
    /// with three or more attempts.
    pub fn from_seed(seed: u64) -> Self {
        SchedulerFaultPlan {
            seed,
            kill_pct: 40,
            kill_max_attempt: 2,
            drop_event_pct: 10,
            delay_event_pct: 10,
            delay_event_ms: 2,
            truncate_checkpoint_every: None,
        }
    }

    /// Whether the plan kills `attempt` (1-indexed) of `job`.
    pub fn kill_job(&self, job: usize, attempt: u32) -> bool {
        if attempt > self.kill_max_attempt {
            return false;
        }
        let x = splitmix64(
            self.seed
                ^ (job as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        (x % 100) < u64::from(self.kill_pct)
    }

    /// The fate of the `n`th event send (global sequence order).
    pub fn event_fate(&self, n: u64) -> EventFate {
        let x = splitmix64(self.seed ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        if (x % 100) < u64::from(self.drop_event_pct) {
            return EventFate::Drop;
        }
        if ((x >> 32) % 100) < u64::from(self.delay_event_pct) {
            return EventFate::Delay(self.delay_event_ms);
        }
        EventFate::Deliver
    }

    /// Whether the `n`th checkpoint write (1-indexed) is truncated
    /// mid-file.
    pub fn truncate_checkpoint(&self, n: u64) -> bool {
        match self.truncate_checkpoint_every {
            Some(every) if every > 0 => n.is_multiple_of(every),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = SchedulerFaultPlan::from_seed(7);
        let q = SchedulerFaultPlan::from_seed(7);
        for job in 0..32 {
            for attempt in 1..4 {
                assert_eq!(p.kill_job(job, attempt), q.kill_job(job, attempt));
            }
        }
        for n in 0..256 {
            assert_eq!(p.event_fate(n), q.event_fate(n));
        }
    }

    #[test]
    fn kills_respect_the_attempt_ceiling() {
        let p = SchedulerFaultPlan {
            kill_pct: 100,
            kill_max_attempt: 2,
            ..SchedulerFaultPlan::from_seed(1)
        };
        assert!(p.kill_job(0, 1));
        assert!(p.kill_job(0, 2));
        assert!(!p.kill_job(0, 3), "attempt 3 is past the ceiling");
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = SchedulerFaultPlan::from_seed(1);
        let b = SchedulerFaultPlan::from_seed(2);
        let diverged = (0..64usize).any(|j| a.kill_job(j, 1) != b.kill_job(j, 1));
        assert!(diverged);
    }

    #[test]
    fn checkpoint_truncation_schedule() {
        let mut p = SchedulerFaultPlan::from_seed(3);
        assert!(!p.truncate_checkpoint(1));
        p.truncate_checkpoint_every = Some(2);
        assert!(!p.truncate_checkpoint(1));
        assert!(p.truncate_checkpoint(2));
        assert!(p.truncate_checkpoint(4));
    }
}
