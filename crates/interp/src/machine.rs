//! The concrete big-step interpreter — the trace semantics of Figure 8,
//! extended to the full muJS subset (prototype chains, `this`, exceptions,
//! `eval`, DOM bindings).
//!
//! The machine evaluates the structured IR directly. Exceptions propagate
//! through `Result`; the other abrupt completions travel in [`Flow`].

use crate::coerce::{self, CoerceError};
use crate::context::{ContextTable, CtxId};
use crate::values::{NativeId, ObjClass, ObjId, Object, ScopeId, Slot, Value};
use mujs_dom::document::Document;
use mujs_dom::events::EventRegistry;
use mujs_ir::ir::{FuncKind, Place, PropKey, StmtKind};
use mujs_ir::{Block, FuncId, Program, Stmt, StmtId, Sym, TempId};
use mujs_syntax::ast::Lit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Fatal outcomes of a run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// An uncaught JavaScript exception.
    Thrown(Value),
    /// The configured step budget was exhausted.
    StepLimit,
    /// `return`/`break`/`continue` escaped its legal context (e.g. a
    /// `return` inside eval code).
    IllegalCompletion,
    /// The run was cancelled through [`InterpOptions::cancel`].
    Cancelled,
    /// The wall-clock deadline ([`InterpOptions::deadline_ms`]) elapsed.
    Deadline,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Thrown(v) => write!(f, "uncaught exception: {}", v.kind_str()),
            RunError::StepLimit => write!(f, "step limit exceeded"),
            RunError::IllegalCompletion => write!(f, "illegal abrupt completion"),
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::Deadline => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

/// Non-exceptional completions of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `return v`.
    Return(Value),
}

/// Configuration of a run.
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Seed for `Math.random` (the analysis' canonical indeterminate
    /// input); re-randomize across runs to explore executions.
    pub seed: u64,
    /// Statement budget; exceeded ⇒ [`RunError::StepLimit`].
    pub max_steps: u64,
    /// Record per-statement `(point, context, value)` observations for the
    /// soundness harness.
    pub record_observations: bool,
    /// Cap on recorded observations.
    pub max_observations: usize,
    /// Cooperative cancellation flag, polled every
    /// [`InterpOptions::poll_interval`] statements; setting it makes the
    /// run stop with [`RunError::Cancelled`] at a statement boundary.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Wall-clock budget in milliseconds, measured from machine
    /// construction; elapsing ⇒ [`RunError::Deadline`].
    pub deadline_ms: Option<u64>,
    /// Statements between cancellation/deadline polls (clamped to ≥ 1).
    pub poll_interval: u64,
    /// Record a [`HeapTrace`] of abstracted heap effects at the configured
    /// sites (the dynamic-shortcut summarizer's data source). `None` (the
    /// default) records nothing and changes no behavior.
    pub trace: Option<TraceConfig>,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            seed: 0xD5EA51DE,
            max_steps: 20_000_000,
            record_observations: false,
            max_observations: 2_000_000,
            cancel: None,
            deadline_ms: None,
            poll_interval: 1024,
            trace: None,
        }
    }
}

/// Which program points the heap trace records events at.
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Statement ids whose define / property-write / call events are
    /// recorded.
    pub points: std::collections::HashSet<StmtId>,
    /// Functions whose `return` values are recorded.
    pub funcs: std::collections::HashSet<FuncId>,
    /// Cap on distinct recorded events; exceeding it sets
    /// [`HeapTrace::truncated`] and stops recording (allocation-site
    /// tagging continues, so already-recorded events stay well-formed).
    pub max_events: usize,
}

/// The abstraction of a concrete heap value, resolved *at record time*
/// (when the machine still knows every object's allocation provenance).
/// Mirrors the points-to analysis' abstract object domain: site-allocated
/// objects, closures, per-function `.prototype` records, the global, and
/// an opaque bucket for everything the analysis does not model (natives,
/// DOM values, stdlib-internal allocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceAbs {
    /// The global (`window`) object.
    Global,
    /// A closure of the function.
    Closure(FuncId),
    /// The fresh `.prototype` object created with each closure.
    ProtoOf(FuncId),
    /// An object allocated at the statement (`{}`/`[]` literals, `for-in`
    /// key arrays, `new F` results).
    Alloc(StmtId),
    /// Unmodeled: native functions and their results, DOM values.
    Opaque,
}

/// One recorded call through a trace point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCall {
    /// The call/new site.
    pub site: StmtId,
    /// The user-code callee; `None` for native/opaque callees (whose
    /// object arguments escape the modeled world).
    pub callee: Option<FuncId>,
    /// The observed `this` abstraction, recorded only when the site
    /// passes an explicit receiver (mirrors the solver's wiring).
    pub this: Option<TraceAbs>,
    /// Argument abstractions (`None` = primitive).
    pub args: Vec<Option<TraceAbs>>,
    /// Whether the site is a `new`.
    pub is_new: bool,
    /// For `new`: the constructed object's prototype-chain parent.
    pub proto: Option<TraceAbs>,
}

/// Deduplicated, abstracted heap events of one concrete run — everything
/// the dynamic-shortcut summarizer needs to distill a region's effects
/// into points-to tuples. Event vectors are in first-occurrence order;
/// consumers sort before use.
#[derive(Debug, Default)]
pub struct HeapTrace {
    /// `(site, value)` for every object value a recorded statement wrote
    /// into its destination place.
    pub defines: Vec<(StmtId, TraceAbs)>,
    /// `(site, base, key, value)` for every object value a recorded
    /// `SetProp` stored (concrete key, post-coercion).
    pub writes: Vec<(StmtId, TraceAbs, Sym, TraceAbs)>,
    /// Calls executed at recorded call/new sites.
    pub calls: Vec<TraceCall>,
    /// `(function, value)` for every object value a traced function
    /// returned.
    pub rets: Vec<(FuncId, TraceAbs)>,
    /// The event cap was hit; the trace is incomplete and must not be
    /// used for summarization.
    pub truncated: bool,
}

impl HeapTrace {
    /// Total recorded (distinct) events.
    pub fn len(&self) -> usize {
        self.defines.len() + self.writes.len() + self.calls.len() + self.rets.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dedup state backing [`HeapTrace`] recording.
#[derive(Debug, Default)]
struct TraceState {
    out: HeapTrace,
    seen_defines: std::collections::HashSet<(StmtId, TraceAbs)>,
    seen_writes: std::collections::HashSet<(StmtId, TraceAbs, Sym, TraceAbs)>,
    seen_calls: std::collections::HashSet<TraceCall>,
    seen_rets: std::collections::HashSet<(FuncId, TraceAbs)>,
    /// Allocation provenance: site-allocated objects and closure
    /// `.prototype` records. Objects absent here abstract to
    /// [`TraceAbs::Opaque`].
    tags: HashMap<ObjId, TraceAbs>,
}

/// One recorded definition event: statement `point` under calling context
/// `ctx` wrote `value` into its destination.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The program point.
    pub point: StmtId,
    /// The interned calling context.
    pub ctx: CtxId,
    /// The written value (object ids refer to this machine's heap).
    pub value: Value,
}

/// A lexical scope: slot-addressed locals plus by-name overflow bindings
/// and the parent link. `parent == None` means the global object
/// terminates the chain.
///
/// Function activations carry `func` and a `slots` vector laid out by the
/// owning [`mujs_ir::Function::locals`]; slot-resolved places index it
/// directly. Catch scopes (and any binding outside the static layout,
/// e.g. introduced by `eval`) live in `ext`. A name is stored in at most
/// one of the two.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Owning function for activation scopes; `None` for catch scopes.
    func: Option<FuncId>,
    /// The activation's locals, indexed by the static layout.
    slots: Vec<Value>,
    /// Bindings outside the static layout.
    ext: HashMap<Sym, Value>,
    parent: Option<ScopeId>,
    /// Nearest enclosing activation scope (catch scopes skipped); slot
    /// coordinates with `hops ≥ 1` climb this chain.
    fn_parent: Option<ScopeId>,
    /// Set when a closure captures this scope (used by the instrumented
    /// machine's flush policy; tracked here for API parity).
    pub captured: bool,
}

/// An activation record.
#[derive(Debug)]
pub struct Frame {
    /// The function being executed.
    pub func: FuncId,
    /// Scope for named lookups (`None` ⇒ global object only).
    pub scope: Option<ScopeId>,
    /// The frame's own activation scope — the base of slot addressing.
    /// Stays fixed while `scope` moves through catch scopes.
    pub activation: Option<ScopeId>,
    /// Temporary slots.
    pub temps: Vec<Value>,
    /// The `this` binding.
    pub this_val: Value,
    /// Calling context of this activation.
    pub ctx: CtxId,
    /// Per-site dynamic occurrence counters within this activation,
    /// indexed by the statement's dense per-function index.
    pub occurrences: Vec<u32>,
}

/// Built-in prototype objects.
#[derive(Debug, Clone, Copy)]
pub struct Protos {
    /// `Object.prototype`
    pub object: ObjId,
    /// `Function.prototype`
    pub function: ObjId,
    /// `Array.prototype`
    pub array: ObjId,
    /// `String.prototype`
    pub string: ObjId,
    /// `Number.prototype`
    pub number: ObjId,
    /// `Boolean.prototype`
    pub boolean: ObjId,
    /// `Error.prototype`
    pub error: ObjId,
}

/// Well-known constructor objects needing special `new` behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct Specials {
    /// `Array`
    pub array_ctor: Option<ObjId>,
    /// `Error`
    pub error_ctor: Option<ObjId>,
    /// `Object`
    pub object_ctor: Option<ObjId>,
    /// the `eval` function value (for indirect calls)
    pub eval_fn: Option<ObjId>,
}

/// Signature of built-in functions.
pub type NativeFn = fn(&mut Interp<'_>, Value, &[Value]) -> Result<Value, RunError>;

/// The concrete interpreter.
pub struct Interp<'p> {
    /// The program (mutable: `eval` appends lowered chunks).
    pub prog: &'p mut Program,
    heap: Vec<Object<()>>,
    scopes: Vec<Scope>,
    global: ObjId,
    /// Built-in prototypes.
    pub protos: Protos,
    /// Well-known constructors.
    pub specials: Specials,
    natives: Vec<(&'static str, NativeFn)>,
    /// The emulated document, if DOM bindings are installed.
    pub doc: Option<Document>,
    /// Registered event handlers (closure object ids).
    pub events: EventRegistry<ObjId>,
    pub(crate) dom_nodes: HashMap<mujs_dom::document::NodeId, ObjId>,
    pub(crate) dom_document_obj: Option<ObjId>,
    pub(crate) dom_element_proto: Option<ObjId>,
    rng: StdRng,
    now: f64,
    steps: u64,
    opts: InterpOptions,
    /// Wall-clock stop point derived from `opts.deadline_ms`.
    deadline: Option<std::time::Instant>,
    /// Captured `console.log`/`alert` output.
    pub output: Vec<String>,
    /// Interned calling contexts.
    pub ctxs: ContextTable,
    /// Recorded observations (when enabled).
    pub observations: Vec<Observation>,
    /// Heap-trace recording state (when [`InterpOptions::trace`] is set).
    trace: Option<TraceState>,
    /// The `new` site currently being constructed (for tagging the fresh
    /// object inside [`Interp::construct`]); saved/restored across nested
    /// constructions.
    trace_new_site: Option<StmtId>,
}

impl<'p> Interp<'p> {
    /// Creates a machine over `prog` and installs the standard library
    /// globals.
    pub fn new(prog: &'p mut Program, opts: InterpOptions) -> Self {
        let mut heap = Vec::new();
        let mut alloc = |class: ObjClass, proto: Option<ObjId>| {
            let id = ObjId(heap.len() as u32);
            heap.push(Object::new(class, proto));
            id
        };
        let object = alloc(ObjClass::Plain, None);
        let function = alloc(ObjClass::Plain, Some(object));
        let array = alloc(ObjClass::Plain, Some(object));
        let string = alloc(ObjClass::Plain, Some(object));
        let number = alloc(ObjClass::Plain, Some(object));
        let boolean = alloc(ObjClass::Plain, Some(object));
        let error = alloc(ObjClass::Plain, Some(object));
        let global = alloc(ObjClass::Plain, Some(object));
        let mut interp = Interp {
            prog,
            heap,
            scopes: Vec::new(),
            global,
            protos: Protos {
                object,
                function,
                array,
                string,
                number,
                boolean,
                error,
            },
            specials: Specials::default(),
            natives: Vec::new(),
            doc: None,
            events: EventRegistry::new(),
            dom_nodes: HashMap::new(),
            dom_document_obj: None,
            dom_element_proto: None,
            rng: StdRng::seed_from_u64(opts.seed),
            now: 1.6e12,
            steps: 0,
            deadline: opts
                .deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            trace: opts.trace.as_ref().map(|_| TraceState::default()),
            trace_new_site: None,
            opts,
            output: Vec::new(),
            ctxs: ContextTable::new(),
            observations: Vec::new(),
        };
        crate::natives::install_stdlib(&mut interp);
        interp
    }

    // ------------------------------------------------------------ plumbing

    /// The global (`window`) object.
    pub fn global(&self) -> ObjId {
        self.global
    }

    /// Number of statements executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Allocates a heap object.
    pub fn alloc(&mut self, class: ObjClass, proto: Option<ObjId>) -> ObjId {
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Object::new(class, proto));
        id
    }

    /// Borrows an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid heap address.
    pub fn obj(&self, id: ObjId) -> &Object<()> {
        &self.heap[id.0 as usize]
    }

    /// Mutably borrows an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid heap address.
    pub fn obj_mut(&mut self, id: ObjId) -> &mut Object<()> {
        &mut self.heap[id.0 as usize]
    }

    /// Number of heap objects.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Registers a native function and wraps it in a callable object.
    pub fn register_native(&mut self, name: &'static str, f: NativeFn) -> ObjId {
        let nid = NativeId(self.natives.len() as u32);
        self.natives.push((name, f));
        let obj = self.alloc(ObjClass::Native(nid), Some(self.protos.function));
        self.obj_mut(obj).builtin = true;
        obj
    }

    /// Sets `obj.name = value` directly (no array/DOM magic); used while
    /// building the standard library.
    pub fn set_raw(&mut self, obj: ObjId, name: &str, value: Value) {
        let key = self.prog.interner.intern(name);
        self.set_raw_s(obj, key, value);
    }

    /// [`Interp::set_raw`] with a pre-interned key.
    pub fn set_raw_s(&mut self, obj: ObjId, key: Sym, value: Value) {
        self.obj_mut(obj).props.insert(key, Slot { value, ann: () });
    }

    /// Reads `obj.name` directly (own properties only).
    pub fn get_raw(&self, obj: ObjId, name: &str) -> Option<Value> {
        // An un-interned name cannot be a key of any property table.
        let key = self.prog.interner.get(name)?;
        self.get_raw_s(obj, key)
    }

    /// [`Interp::get_raw`] with a pre-interned key.
    pub fn get_raw_s(&self, obj: ObjId, key: Sym) -> Option<Value> {
        self.obj(obj).props.get(key).map(|s| s.value.clone())
    }

    /// Throws a fresh error object with the given message.
    pub fn throw_error(&mut self, kind: &str, msg: &str) -> RunError {
        let e = self.alloc(ObjClass::Plain, Some(self.protos.error));
        self.set_raw(e, "name", Value::Str(Rc::from(kind)));
        self.set_raw(e, "message", Value::Str(Rc::from(msg)));
        RunError::Thrown(Value::Object(e))
    }

    fn coerce_err(&mut self, _e: CoerceError) -> RunError {
        self.throw_error("TypeError", "cannot convert object to primitive")
    }

    /// Draws from the seeded RNG (`Math.random`).
    pub fn random(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Monotonic clock for `Date.now` (advances each call; indeterminate
    /// input for the analysis).
    pub fn now(&mut self) -> f64 {
        self.now += 1.0 + self.rng.gen::<f64>() * 10.0;
        self.now
    }

    // ------------------------------------------------------------- scopes

    /// Creates an ext-only scope (catch blocks).
    fn new_scope(&mut self, parent: Option<ScopeId>) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        let fn_parent = self.nearest_activation(parent);
        self.scopes.push(Scope {
            func: None,
            slots: Vec::new(),
            ext: HashMap::new(),
            parent,
            fn_parent,
            captured: false,
        });
        id
    }

    /// Creates a function activation with its slot vector laid out by the
    /// function's static `locals`, all initialized to `undefined`.
    fn new_activation(&mut self, func: FuncId, parent: Option<ScopeId>) -> ScopeId {
        let id = ScopeId(self.scopes.len() as u32);
        let n = self.prog.func(func).locals.len();
        let fn_parent = self.nearest_activation(parent);
        self.scopes.push(Scope {
            func: Some(func),
            slots: vec![Value::Undefined; n],
            ext: HashMap::new(),
            parent,
            fn_parent,
            captured: false,
        });
        id
    }

    /// The nearest activation scope at or above `from` (catch scopes are
    /// transparent to slot addressing).
    fn nearest_activation(&self, from: Option<ScopeId>) -> Option<ScopeId> {
        let mut cur = from;
        while let Some(sid) = cur {
            let s = &self.scopes[sid.0 as usize];
            if s.func.is_some() {
                return Some(sid);
            }
            cur = s.parent;
        }
        None
    }

    /// Position of `name` in the scope's slot layout, if it is a static
    /// local of the owning function.
    fn slot_of(&self, sid: ScopeId, name: Sym) -> Option<u32> {
        let f = self.scopes[sid.0 as usize].func?;
        self.prog.func(f).local_slot(name)
    }

    fn declare(&mut self, scope: Option<ScopeId>, name: Sym, value: Value) {
        match scope {
            Some(sid) => {
                // Reuse the static slot when the name has one, so a name
                // lives in exactly one place per scope.
                if let Some(i) = self.slot_of(sid, name) {
                    self.scopes[sid.0 as usize].slots[i as usize] = value;
                } else {
                    self.scopes[sid.0 as usize].ext.insert(name, value);
                }
            }
            None => {
                let g = self.global;
                self.obj_mut(g).props.insert(name, Slot { value, ann: () });
            }
        }
    }

    fn lookup(&self, scope: Option<ScopeId>, name: Sym) -> Option<Value> {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some(i) = self.slot_of(sid, name) {
                return Some(self.scopes[sid.0 as usize].slots[i as usize].clone());
            }
            let s = &self.scopes[sid.0 as usize];
            if let Some(v) = s.ext.get(&name) {
                return Some(v.clone());
            }
            cur = s.parent;
        }
        self.get_raw_s(self.global, name)
    }

    /// Assigns `name`, walking the scope chain; creates a global if the
    /// name is unbound anywhere (sloppy-mode JS).
    fn assign(&mut self, scope: Option<ScopeId>, name: Sym, value: Value) {
        let mut cur = scope;
        while let Some(sid) = cur {
            if let Some(i) = self.slot_of(sid, name) {
                self.scopes[sid.0 as usize].slots[i as usize] = value;
                return;
            }
            let s = &mut self.scopes[sid.0 as usize];
            if let Some(slot) = s.ext.get_mut(&name) {
                *slot = value;
                return;
            }
            cur = s.parent;
        }
        let g = self.global;
        self.obj_mut(g).props.insert(name, Slot { value, ann: () });
    }

    /// The activation scope `hops` function levels above the frame's own.
    fn hop_scope(&self, frame: &Frame, hops: u32) -> Option<ScopeId> {
        let mut sid = frame.activation?;
        for _ in 0..hops {
            sid = self.scopes[sid.0 as usize].fn_parent?;
        }
        Some(sid)
    }

    /// Marks every scope from `scope` outward as captured.
    fn mark_captured(&mut self, scope: Option<ScopeId>) {
        let mut cur = scope;
        while let Some(sid) = cur {
            let s = &mut self.scopes[sid.0 as usize];
            if s.captured {
                break;
            }
            s.captured = true;
            cur = s.parent;
        }
    }

    // ------------------------------------------------------------- frames

    fn read_place(&mut self, frame: &Frame, place: &Place) -> Result<Value, RunError> {
        match place {
            Place::Temp(TempId(i)) => Ok(frame.temps[*i as usize].clone()),
            Place::Named(name) => match self.lookup(frame.scope, *name) {
                Some(v) => Ok(v),
                None => Err(self.ref_error(*name)),
            },
            Place::Slot { hops, slot, sym } => match self.hop_scope(frame, *hops) {
                Some(sid) => Ok(self.scopes[sid.0 as usize].slots[*slot as usize].clone()),
                // Defensive: code running without an activation (shouldn't
                // happen for slot-resolved bodies) falls back to by-name.
                None => match self.lookup(frame.scope, *sym) {
                    Some(v) => Ok(v),
                    None => Err(self.ref_error(*sym)),
                },
            },
        }
    }

    fn ref_error(&mut self, name: Sym) -> RunError {
        let name = self.prog.interner.resolve(name).to_owned();
        self.throw_error("ReferenceError", &format!("{name} is not defined"))
    }

    fn write_place(&mut self, frame: &mut Frame, place: &Place, value: Value) {
        match place {
            Place::Temp(TempId(i)) => frame.temps[*i as usize] = value,
            Place::Named(name) => self.assign(frame.scope, *name, value),
            Place::Slot { hops, slot, sym } => match self.hop_scope(frame, *hops) {
                Some(sid) => self.scopes[sid.0 as usize].slots[*slot as usize] = value,
                None => self.assign(frame.scope, *sym, value),
            },
        }
    }

    fn observe(&mut self, frame: &Frame, point: StmtId, value: &Value) {
        if self.opts.record_observations && self.observations.len() < self.opts.max_observations {
            self.observations.push(Observation {
                point,
                ctx: frame.ctx,
                value: value.clone(),
            });
        }
    }

    fn define(
        &mut self,
        frame: &mut Frame,
        point: StmtId,
        dst: &Place,
        value: Value,
    ) -> Result<(), RunError> {
        self.observe(frame, point, &value);
        if self.trace.is_some() {
            self.trace_define(point, &value);
        }
        self.write_place(frame, dst, value);
        Ok(())
    }

    // ------------------------------------------------------- heap tracing

    /// Takes the recorded heap trace, ending recording. `None` when
    /// tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<HeapTrace> {
        self.trace.take().map(|t| t.out)
    }

    /// Whether events at `point` are recorded.
    fn trace_point(&self, point: StmtId) -> bool {
        self.opts
            .trace
            .as_ref()
            .is_some_and(|c| c.points.contains(&point))
    }

    /// Tags an object's allocation provenance (always on while tracing,
    /// regardless of the point filter: objects allocated anywhere can flow
    /// into recorded events).
    fn trace_tag(&mut self, obj: ObjId, tag: TraceAbs) {
        if let Some(t) = self.trace.as_mut() {
            t.tags.insert(obj, tag);
        }
    }

    /// The record-time abstraction of a value; `None` for primitives.
    fn trace_abs(&self, v: &Value) -> Option<TraceAbs> {
        match v {
            Value::Object(id) => Some(self.trace_abs_obj(*id)),
            _ => None,
        }
    }

    fn trace_abs_obj(&self, id: ObjId) -> TraceAbs {
        if id == self.global {
            return TraceAbs::Global;
        }
        if let ObjClass::Function { func, .. } = &self.obj(id).class {
            return TraceAbs::Closure(*func);
        }
        self.trace
            .as_ref()
            .and_then(|t| t.tags.get(&id))
            .copied()
            .unwrap_or(TraceAbs::Opaque)
    }

    /// Checks the event cap; trips `truncated` when full.
    fn trace_room(&mut self) -> bool {
        let cap = self.opts.trace.as_ref().map_or(0, |c| c.max_events);
        let Some(t) = self.trace.as_mut() else {
            return false;
        };
        if t.out.truncated {
            return false;
        }
        if t.out.len() >= cap {
            t.out.truncated = true;
            return false;
        }
        true
    }

    fn trace_define(&mut self, point: StmtId, value: &Value) {
        if !self.trace_point(point) {
            return;
        }
        let Some(abs) = self.trace_abs(value) else {
            return;
        };
        if !self.trace_room() {
            return;
        }
        let t = self.trace.as_mut().expect("room implies state");
        if t.seen_defines.insert((point, abs)) {
            t.out.defines.push((point, abs));
        }
    }

    fn trace_write(&mut self, site: StmtId, base: &Value, key: Sym, value: &Value) {
        if !self.trace_point(site) {
            return;
        }
        let (Some(b), Some(v)) = (self.trace_abs(base), self.trace_abs(value)) else {
            return;
        };
        if !self.trace_room() {
            return;
        }
        let t = self.trace.as_mut().expect("room implies state");
        if t.seen_writes.insert((site, b, key, v)) {
            t.out.writes.push((site, b, key, v));
        }
    }

    fn trace_call_event(&mut self, ev: TraceCall) {
        if !self.trace_room() {
            return;
        }
        let t = self.trace.as_mut().expect("room implies state");
        if t.seen_calls.insert(ev.clone()) {
            t.out.calls.push(ev);
        }
    }

    /// Tags an object allocated on behalf of an enclosing `new` site.
    fn trace_construct_tag(&mut self, obj: ObjId) {
        if let Some(site) = self.trace_new_site {
            self.trace_tag(obj, TraceAbs::Alloc(site));
        }
    }

    /// Records the call event for the innermost in-flight `new` site.
    fn trace_construct_event(
        &mut self,
        callee_func: Option<FuncId>,
        args: &[Value],
        proto: Option<TraceAbs>,
    ) {
        let Some(site) = self.trace_new_site else {
            return;
        };
        if self.trace.is_none() || !self.trace_point(site) {
            return;
        }
        let args_abs = args.iter().map(|a| self.trace_abs(a)).collect();
        self.trace_call_event(TraceCall {
            site,
            callee: callee_func,
            this: None,
            args: args_abs,
            is_new: true,
            proto,
        });
    }

    fn trace_ret(&mut self, func: FuncId, value: &Value) {
        if !self
            .opts
            .trace
            .as_ref()
            .is_some_and(|c| c.funcs.contains(&func))
        {
            return;
        }
        let Some(abs) = self.trace_abs(value) else {
            return;
        };
        if !self.trace_room() {
            return;
        }
        let t = self.trace.as_mut().expect("room implies state");
        if t.seen_rets.insert((func, abs)) {
            t.out.rets.push((func, abs));
        }
    }

    // ---------------------------------------------------------- execution

    /// Runs the entry script to completion.
    ///
    /// # Errors
    ///
    /// Uncaught exceptions, step-limit exhaustion, or illegal completions.
    pub fn run(&mut self) -> Result<(), RunError> {
        let entry = self.prog.entry().expect("program has an entry");
        let f = self.prog.func_rc(entry);
        debug_assert_eq!(f.kind, FuncKind::Script);
        // Script declarations go to the global object.
        for &v in &f.decls.vars {
            if self.get_raw_s(self.global, v).is_none() {
                self.declare(None, v, Value::Undefined);
            }
        }
        for &(name, fid) in &f.decls.funcs {
            let clos = self.make_closure(fid, None);
            self.declare(None, name, Value::Object(clos));
        }
        let mut frame = Frame {
            func: entry,
            scope: None,
            activation: None,
            temps: vec![Value::Undefined; f.n_temps as usize],
            this_val: Value::Object(self.global),
            ctx: CtxId::ROOT,
            occurrences: vec![0; self.prog.stmt_count_of(entry) as usize],
        };
        match self.exec_block(&mut frame, &f.body)? {
            Flow::Normal => Ok(()),
            _ => Err(RunError::IllegalCompletion),
        }
    }

    /// Creates a closure object over `env` with its fresh `.prototype`.
    pub fn make_closure(&mut self, func: FuncId, env: Option<ScopeId>) -> ObjId {
        self.mark_captured(env);
        let clos = self.alloc(ObjClass::Function { func, env }, Some(self.protos.function));
        let proto = self.alloc(ObjClass::Plain, Some(self.protos.object));
        self.trace_tag(proto, TraceAbs::ProtoOf(func));
        self.set_raw_s(proto, Sym::CONSTRUCTOR, Value::Object(clos));
        self.set_raw_s(clos, Sym::PROTOTYPE, Value::Object(proto));
        let f = self.prog.func(func);
        let nparams = f.params.len() as f64;
        let name = f.name;
        self.set_raw_s(clos, Sym::LENGTH, Value::Num(nparams));
        if let Some(n) = name {
            let text = self.prog.interner.name(n).clone();
            self.set_raw_s(clos, Sym::NAME, Value::Str(text));
        }
        clos
    }

    fn exec_block(&mut self, frame: &mut Frame, block: &Block) -> Result<Flow, RunError> {
        for stmt in block {
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, RunError> {
        self.steps += 1;
        if self.steps > self.opts.max_steps {
            return Err(RunError::StepLimit);
        }
        if self.steps.is_multiple_of(self.opts.poll_interval.max(1)) {
            if let Some(c) = &self.opts.cancel {
                if c.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(RunError::Cancelled);
                }
            }
            if let Some(dl) = self.deadline {
                if std::time::Instant::now() >= dl {
                    return Err(RunError::Deadline);
                }
            }
        }
        let id = stmt.id;
        match &stmt.kind {
            StmtKind::Const { dst, lit } => {
                let v = lit_value(lit);
                self.define(frame, id, dst, v)?;
            }
            StmtKind::Copy { dst, src } => {
                let v = self.read_place(frame, src)?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::Closure { dst, func } => {
                let env = frame.scope;
                let clos = self.make_closure(*func, env);
                self.define(frame, id, dst, Value::Object(clos))?;
            }
            StmtKind::NewObject { dst, is_array } => {
                let o = if *is_array {
                    let a = self.alloc(ObjClass::Array, Some(self.protos.array));
                    self.set_raw(a, "length", Value::Num(0.0));
                    a
                } else {
                    self.alloc(ObjClass::Plain, Some(self.protos.object))
                };
                self.trace_tag(o, TraceAbs::Alloc(id));
                self.define(frame, id, dst, Value::Object(o))?;
            }
            StmtKind::GetProp { dst, obj, key } => {
                let o = self.read_place(frame, obj)?;
                let k = self.key_sym(frame, key)?;
                let v = self.get_prop(&o, k)?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::SetProp { obj, key, val } => {
                let o = self.read_place(frame, obj)?;
                let k = self.key_sym(frame, key)?;
                let v = self.read_place(frame, val)?;
                if self.trace.is_some() {
                    self.trace_write(id, &o, k, &v);
                }
                self.set_prop(&o, k, v)?;
            }
            StmtKind::DeleteProp { dst, obj, key } => {
                let o = self.read_place(frame, obj)?;
                let k = self.key_sym(frame, key)?;
                if let Value::Object(oid) = o {
                    self.obj_mut(oid).props.remove(k);
                }
                self.define(frame, id, dst, Value::Bool(true))?;
            }
            StmtKind::BinOp { dst, op, lhs, rhs } => {
                let a = self.read_place(frame, lhs)?;
                let b = self.read_place(frame, rhs)?;
                let v = coerce::bin_op(*op, &a, &b).map_err(|e| self.coerce_err(e))?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::UnOp { dst, op, src } => {
                let a = self.read_place(frame, src)?;
                let ov = self.typeof_override(&a);
                let v = coerce::un_op(*op, &a, ov).map_err(|e| self.coerce_err(e))?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                let f = self.read_place(frame, callee)?;
                let this = match this_arg {
                    Some(p) => self.read_place(frame, p)?,
                    None => Value::Object(self.global),
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.read_place(frame, a)?);
                }
                let ctx = self.enter_site(frame, id);
                if self.trace.is_some() && self.trace_point(id) {
                    if let Value::Object(fo) = &f {
                        let callee_func = match &self.obj(*fo).class {
                            ObjClass::Function { func, .. } => Some(Some(*func)),
                            ObjClass::Native(_) => Some(None),
                            _ => None,
                        };
                        if let Some(callee_func) = callee_func {
                            let this_abs = if this_arg.is_some() {
                                self.trace_abs(&this)
                            } else {
                                None
                            };
                            let args_abs = argv.iter().map(|a| self.trace_abs(a)).collect();
                            self.trace_call_event(TraceCall {
                                site: id,
                                callee: callee_func,
                                this: this_abs,
                                args: args_abs,
                                is_new: false,
                                proto: None,
                            });
                        }
                    }
                }
                let v = self.call_value(&f, this, &argv, ctx)?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::New { dst, callee, args } => {
                let f = self.read_place(frame, callee)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.read_place(frame, a)?);
                }
                let ctx = self.enter_site(frame, id);
                let saved_site = self.trace_new_site;
                if self.trace.is_some() {
                    self.trace_new_site = Some(id);
                }
                let v = self.construct(&f, &argv, ctx);
                self.trace_new_site = saved_site;
                let v = v?;
                self.define(frame, id, dst, v)?;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.read_place(frame, cond)?;
                let blk = if coerce::to_boolean(&c) {
                    then_blk
                } else {
                    else_blk
                };
                return self.exec_block(frame, blk);
            }
            StmtKind::Loop {
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
            } => {
                let mut first = true;
                loop {
                    if *check_cond_first || !first {
                        match self.exec_block(frame, cond_blk)? {
                            Flow::Normal => {}
                            other => return Ok(other),
                        }
                        let c = self.read_place(frame, cond)?;
                        if !coerce::to_boolean(&c) {
                            break;
                        }
                    }
                    first = false;
                    match self.exec_block(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    match self.exec_block(frame, update)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
            }
            StmtKind::Breakable { body } => match self.exec_block(frame, body)? {
                Flow::Normal | Flow::Break => {}
                other => return Ok(other),
            },
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                let mut result = self.exec_block(frame, block);
                if let (Err(RunError::Thrown(exn)), Some((name, handler))) = (&result, catch) {
                    let exn = exn.clone();
                    // The catch variable lives in its own little scope.
                    let saved = frame.scope;
                    let cscope = self.new_scope(saved);
                    self.declare(Some(cscope), *name, exn);
                    frame.scope = Some(cscope);
                    result = self.exec_block(frame, handler);
                    frame.scope = saved;
                }
                if let Some(fin) = finally {
                    let fin_flow = self.exec_block(frame, fin)?;
                    if fin_flow != Flow::Normal {
                        return Ok(fin_flow); // finally overrides
                    }
                }
                return result;
            }
            StmtKind::Return { arg } => {
                let v = match arg {
                    Some(p) => self.read_place(frame, p)?,
                    None => Value::Undefined,
                };
                if self.trace.is_some() {
                    self.trace_ret(frame.func, &v);
                }
                return Ok(Flow::Return(v));
            }
            StmtKind::Break => return Ok(Flow::Break),
            StmtKind::Continue => return Ok(Flow::Continue),
            StmtKind::Throw { arg } => {
                let v = self.read_place(frame, arg)?;
                return Err(RunError::Thrown(v));
            }
            StmtKind::LoadThis { dst } => {
                let v = frame.this_val.clone();
                self.define(frame, id, dst, v)?;
            }
            StmtKind::TypeofName { dst, name } => {
                let v = match self.lookup(frame.scope, *name) {
                    Some(v) => {
                        let ov = self.typeof_override(&v);
                        coerce::un_op(mujs_ir::UnOp::Typeof, &v, ov)
                            .map_err(|e| self.coerce_err(e))?
                    }
                    None => Value::Str(Rc::from("undefined")),
                };
                self.define(frame, id, dst, v)?;
            }
            StmtKind::HasProp { dst, key, obj } => {
                let k = self.read_place(frame, key)?;
                let k = coerce::to_string(&k).map_err(|e| self.coerce_err(e))?;
                let k = self.prog.interner.intern_rc(&k);
                let o = self.read_place(frame, obj)?;
                let Value::Object(oid) = o else {
                    return Err(self.throw_error("TypeError", "'in' requires an object"));
                };
                let has = self.has_prop_chain(oid, k);
                self.define(frame, id, dst, Value::Bool(has))?;
            }
            StmtKind::InstanceOf { dst, val, ctor } => {
                let v = self.read_place(frame, val)?;
                let c = self.read_place(frame, ctor)?;
                let Value::Object(cid) = c else {
                    return Err(self.throw_error("TypeError", "instanceof requires a function"));
                };
                if !self.obj(cid).class.is_callable() {
                    return Err(self.throw_error("TypeError", "instanceof requires a function"));
                }
                let proto = self.get_raw_s(cid, Sym::PROTOTYPE);
                let mut result = false;
                if let (Value::Object(mut o), Some(Value::Object(p))) = (v, proto) {
                    let mut fuel = 10_000;
                    while let Some(next) = self.obj(o).proto {
                        if next == p {
                            result = true;
                            break;
                        }
                        o = next;
                        fuel -= 1;
                        if fuel == 0 {
                            break;
                        }
                    }
                }
                self.define(frame, id, dst, Value::Bool(result))?;
            }
            StmtKind::EnumProps { dst, obj } => {
                let o = self.read_place(frame, obj)?;
                let keys = self.enum_props(&o);
                let arr = self.alloc(ObjClass::Array, Some(self.protos.array));
                self.trace_tag(arr, TraceAbs::Alloc(id));
                self.set_raw_s(arr, Sym::LENGTH, Value::Num(keys.len() as f64));
                for (i, k) in keys.into_iter().enumerate() {
                    let text = self.prog.interner.name(k).clone();
                    let slot = self.prog.interner.intern_index(i);
                    self.set_raw_s(arr, slot, Value::Str(text));
                }
                self.define(frame, id, dst, Value::Object(arr))?;
            }
            StmtKind::Eval { dst, arg } => {
                let a = self.read_place(frame, arg)?;
                let ctx = self.enter_site(frame, id);
                let v = self.eval_direct(frame, &a, ctx)?;
                self.define(frame, id, dst, v)?;
            }
        }
        Ok(Flow::Normal)
    }

    /// Allocates this activation's next occurrence of `site` and interns
    /// the child context.
    fn enter_site(&mut self, frame: &mut Frame, site: StmtId) -> CtxId {
        let local = self.prog.local_of(site) as usize;
        if local >= frame.occurrences.len() {
            // The function grew after this frame was created (possible only
            // through exotic re-entrancy); keep counting correctly.
            frame.occurrences.resize(local + 1, 0);
        }
        let this_occ = frame.occurrences[local];
        frame.occurrences[local] += 1;
        self.ctxs.child(frame.ctx, site, this_occ)
    }

    fn key_sym(&mut self, frame: &Frame, key: &PropKey) -> Result<Sym, RunError> {
        match key {
            PropKey::Static(name) => Ok(*name),
            PropKey::Dynamic(p) => {
                let v = self.read_place_imm(frame, p)?;
                let s = coerce::to_string(&v).map_err(|e| self.coerce_err(e))?;
                Ok(self.prog.interner.intern_rc(&s))
            }
        }
    }

    fn read_place_imm(&mut self, frame: &Frame, place: &Place) -> Result<Value, RunError> {
        match place {
            Place::Temp(TempId(i)) => Ok(frame.temps[*i as usize].clone()),
            Place::Named(name) => match self.lookup(frame.scope, *name) {
                Some(v) => Ok(v),
                None => Err(self.ref_error(*name)),
            },
            Place::Slot { hops, slot, sym } => match self.hop_scope(frame, *hops) {
                Some(sid) => Ok(self.scopes[sid.0 as usize].slots[*slot as usize].clone()),
                None => match self.lookup(frame.scope, *sym) {
                    Some(v) => Ok(v),
                    None => Err(self.ref_error(*sym)),
                },
            },
        }
    }

    fn typeof_override(&self, v: &Value) -> Option<&'static str> {
        match v {
            Value::Object(id) if self.obj(*id).class.is_callable() => Some("function"),
            _ => None,
        }
    }

    fn has_prop_chain(&self, mut obj: ObjId, key: Sym) -> bool {
        let mut fuel = 10_000;
        loop {
            if self.obj(obj).props.contains(key) {
                return true;
            }
            match self.obj(obj).proto {
                Some(p) if fuel > 0 => {
                    obj = p;
                    fuel -= 1;
                }
                _ => return false,
            }
        }
    }

    // ------------------------------------------------------- property ops

    /// Full property read: primitives, DOM interception, prototype chain.
    ///
    /// # Errors
    ///
    /// `TypeError` on `null`/`undefined` bases.
    pub fn get_prop(&mut self, base: &Value, key: Sym) -> Result<Value, RunError> {
        match base {
            Value::Undefined | Value::Null => {
                let key = self.prog.interner.resolve(key).to_owned();
                Err(self.throw_error(
                    "TypeError",
                    &format!("cannot read property '{key}' of {}", base.kind_str()),
                ))
            }
            Value::Str(s) => {
                if key == Sym::LENGTH {
                    return Ok(Value::Num(s.chars().count() as f64));
                }
                if let Ok(idx) = self.prog.interner.resolve(key).parse::<usize>() {
                    return Ok(match s.chars().nth(idx) {
                        Some(c) => Value::Str(Rc::from(c.to_string().as_str())),
                        None => Value::Undefined,
                    });
                }
                Ok(self.proto_lookup(self.protos.string, key))
            }
            Value::Num(_) => Ok(self.proto_lookup(self.protos.number, key)),
            Value::Bool(_) => Ok(self.proto_lookup(self.protos.boolean, key)),
            Value::Object(oid) => {
                if let Some(v) = self.dom_get_hook(*oid, key) {
                    return Ok(v);
                }
                let mut cur = *oid;
                let mut fuel = 10_000;
                loop {
                    if let Some(slot) = self.obj(cur).props.get(key) {
                        return Ok(slot.value.clone());
                    }
                    match self.obj(cur).proto {
                        Some(p) if fuel > 0 => {
                            cur = p;
                            fuel -= 1;
                        }
                        _ => return Ok(Value::Undefined),
                    }
                }
            }
        }
    }

    fn proto_lookup(&self, start: ObjId, key: Sym) -> Value {
        let mut cur = start;
        let mut fuel = 10_000;
        loop {
            if let Some(slot) = self.obj(cur).props.get(key) {
                return slot.value.clone();
            }
            match self.obj(cur).proto {
                Some(p) if fuel > 0 => {
                    cur = p;
                    fuel -= 1;
                }
                _ => return Value::Undefined,
            }
        }
    }

    /// Full property write (array length maintenance, DOM interception).
    ///
    /// # Errors
    ///
    /// `TypeError` on `null`/`undefined` bases. Writes to other primitives
    /// are silently ignored (sloppy-mode JS).
    pub fn set_prop(&mut self, base: &Value, key: Sym, value: Value) -> Result<(), RunError> {
        match base {
            Value::Undefined | Value::Null => {
                let key = self.prog.interner.resolve(key).to_owned();
                Err(self.throw_error(
                    "TypeError",
                    &format!("cannot set property '{key}' of {}", base.kind_str()),
                ))
            }
            Value::Object(oid) => {
                if self.dom_set_hook(*oid, key, &value) {
                    return Ok(());
                }
                let is_array = self.obj(*oid).class == ObjClass::Array;
                if is_array {
                    if key == Sym::LENGTH {
                        self.array_set_length(*oid, &value);
                        return Ok(());
                    }
                    if let Some(idx) = array_index(self.prog.interner.resolve(key)) {
                        let len = match self.get_raw_s(*oid, Sym::LENGTH) {
                            Some(Value::Num(n)) => n,
                            _ => 0.0,
                        };
                        if (idx as f64) >= len {
                            self.set_raw_s(*oid, Sym::LENGTH, Value::Num(idx as f64 + 1.0));
                        }
                    }
                }
                self.obj_mut(*oid)
                    .props
                    .insert(key, Slot { value, ann: () });
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn array_set_length(&mut self, arr: ObjId, value: &Value) {
        let new_len = coerce::to_number(value).unwrap_or(0.0).max(0.0).trunc();
        let old_len = match self.get_raw_s(arr, Sym::LENGTH) {
            Some(Value::Num(n)) => n,
            _ => 0.0,
        };
        if new_len < old_len {
            let doomed: Vec<Sym> = self
                .obj(arr)
                .props
                .keys()
                .filter(|&k| {
                    array_index(self.prog.interner.resolve(k))
                        .is_some_and(|i| (i as f64) >= new_len)
                })
                .collect();
            for k in doomed {
                self.obj_mut(arr).props.remove(k);
            }
        }
        self.set_raw_s(arr, Sym::LENGTH, Value::Num(new_len));
    }

    /// Enumerable keys for `for-in`: own properties (minus hidden ones),
    /// then prototype-chain properties of non-builtin objects.
    pub fn enum_props(&self, base: &Value) -> Vec<Sym> {
        let Value::Object(oid) = base else {
            return Vec::new();
        };
        let mut out: Vec<Sym> = Vec::new();
        let mut seen: std::collections::HashSet<Sym> = std::collections::HashSet::new();
        let mut cur = Some(*oid);
        let mut fuel = 10_000;
        while let Some(id) = cur {
            let o = self.obj(id);
            if !o.builtin {
                for k in o.props.keys() {
                    if self.hidden_from_enum(o, k) {
                        continue;
                    }
                    if seen.insert(k) {
                        out.push(k);
                    }
                }
            }
            cur = o.proto;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
        }
        out
    }

    fn hidden_from_enum(&self, o: &Object<()>, key: Sym) -> bool {
        match &o.class {
            ObjClass::Array => key == Sym::LENGTH,
            ObjClass::Function { .. } | ObjClass::Native(_) => {
                key == Sym::PROTOTYPE || key == Sym::LENGTH || key == Sym::NAME
            }
            _ => false,
        }
    }

    // -------------------------------------------------------------- calls

    /// Calls a value. `ctx` is the callee's calling context.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-callables; whatever the body throws.
    pub fn call_value(
        &mut self,
        callee: &Value,
        this: Value,
        args: &[Value],
        ctx: CtxId,
    ) -> Result<Value, RunError> {
        let Value::Object(fid) = callee else {
            return Err(self.throw_error("TypeError", "value is not a function"));
        };
        match self.obj(*fid).class.clone() {
            ObjClass::Function { func, env } => {
                self.call_function(func, env, Some(*fid), this, args, ctx)
            }
            ObjClass::Native(nid) => {
                let f = self.natives[nid.0 as usize].1;
                f(self, this, args)
            }
            _ => Err(self.throw_error("TypeError", "value is not a function")),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call_function(
        &mut self,
        func: FuncId,
        env: Option<ScopeId>,
        self_obj: Option<ObjId>,
        this: Value,
        args: &[Value],
        ctx: CtxId,
    ) -> Result<Value, RunError> {
        let f = self.prog.func_rc(func);
        let scope = self.new_activation(func, env);
        for (i, &p) in f.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(Value::Undefined);
            self.declare(Some(scope), p, v);
        }
        // `arguments` array.
        let args_arr = self.alloc(ObjClass::Array, Some(self.protos.array));
        self.set_raw_s(args_arr, Sym::LENGTH, Value::Num(args.len() as f64));
        for (i, v) in args.iter().enumerate() {
            let slot = self.prog.interner.intern_index(i);
            self.set_raw_s(args_arr, slot, v.clone());
        }
        self.declare(Some(scope), Sym::ARGUMENTS, Value::Object(args_arr));
        // Static locals are pre-initialized to `undefined` by the slot
        // layout; only names outside it (e.g. specializer-added after
        // layout) still need declaring.
        for &v in &f.decls.vars {
            if self.slot_of(scope, v).is_none()
                && !self.scopes[scope.0 as usize].ext.contains_key(&v)
            {
                self.declare(Some(scope), v, Value::Undefined);
            }
        }
        for &(name, nested) in &f.decls.funcs {
            let clos = self.make_closure(nested, Some(scope));
            self.declare(Some(scope), name, Value::Object(clos));
        }
        if f.bind_self {
            if let (Some(name), Some(clos)) = (f.name, self_obj) {
                // The self-binding loses to any like-named declaration.
                let shadowed = name == Sym::ARGUMENTS
                    || f.params.contains(&name)
                    || f.decls.vars.contains(&name)
                    || f.decls.funcs.iter().any(|&(n, _)| n == name);
                if !shadowed {
                    self.declare(Some(scope), name, Value::Object(clos));
                }
            }
        }
        let mut frame = Frame {
            func,
            scope: Some(scope),
            activation: Some(scope),
            temps: vec![Value::Undefined; f.n_temps as usize],
            this_val: this,
            ctx,
            occurrences: vec![0; self.prog.stmt_count_of(func) as usize],
        };
        match self.exec_block(&mut frame, &f.body)? {
            Flow::Normal => Ok(Value::Undefined),
            Flow::Return(v) => Ok(v),
            Flow::Break | Flow::Continue => Err(RunError::IllegalCompletion),
        }
    }

    /// `new F(args)`.
    ///
    /// # Errors
    ///
    /// `TypeError` for non-constructables; whatever the body throws.
    pub fn construct(
        &mut self,
        callee: &Value,
        args: &[Value],
        ctx: CtxId,
    ) -> Result<Value, RunError> {
        let Value::Object(fid) = callee else {
            return Err(self.throw_error("TypeError", "value is not a constructor"));
        };
        // Special built-in constructors.
        if Some(*fid) == self.specials.array_ctor {
            let arr = self.alloc(ObjClass::Array, Some(self.protos.array));
            self.trace_construct_tag(arr);
            self.trace_construct_event(None, args, None);
            if args.len() == 1 {
                if let Value::Num(n) = args[0] {
                    self.set_raw(arr, "length", Value::Num(n.trunc()));
                    return Ok(Value::Object(arr));
                }
            }
            self.set_raw(arr, "length", Value::Num(args.len() as f64));
            for (i, v) in args.iter().enumerate() {
                let slot = self.prog.interner.intern_index(i);
                self.set_raw_s(arr, slot, v.clone());
            }
            return Ok(Value::Object(arr));
        }
        if Some(*fid) == self.specials.object_ctor {
            let o = self.alloc(ObjClass::Plain, Some(self.protos.object));
            self.trace_construct_tag(o);
            self.trace_construct_event(None, args, None);
            return Ok(Value::Object(o));
        }
        if Some(*fid) == self.specials.error_ctor {
            let e = self.alloc(ObjClass::Plain, Some(self.protos.error));
            self.trace_construct_tag(e);
            self.trace_construct_event(None, args, None);
            let msg = match args.first() {
                Some(v) => coerce::to_string(v).unwrap_or_else(|_| Rc::from("[object]")),
                None => Rc::from(""),
            };
            self.set_raw(e, "message", Value::Str(msg));
            self.set_raw(e, "name", Value::Str(Rc::from("Error")));
            return Ok(Value::Object(e));
        }
        let class = self.obj(*fid).class.clone();
        match class {
            ObjClass::Function { func, env } => {
                let proto = match self.get_raw(*fid, "prototype") {
                    Some(Value::Object(p)) => p,
                    _ => self.protos.object,
                };
                let this_obj = self.alloc(ObjClass::Plain, Some(proto));
                self.trace_construct_tag(this_obj);
                if self.trace.is_some() {
                    let proto_abs = self.trace_abs_obj(proto);
                    self.trace_construct_event(Some(func), args, Some(proto_abs));
                }
                let r =
                    self.call_function(func, env, Some(*fid), Value::Object(this_obj), args, ctx)?;
                Ok(match r {
                    Value::Object(_) => r,
                    _ => Value::Object(this_obj),
                })
            }
            ObjClass::Native(nid) => {
                // Generic natives used with `new`: call with a fresh object.
                let this_obj = self.alloc(ObjClass::Plain, Some(self.protos.object));
                self.trace_construct_tag(this_obj);
                self.trace_construct_event(None, args, None);
                let f = self.natives[nid.0 as usize].1;
                let r = f(self, Value::Object(this_obj), args)?;
                Ok(match r {
                    Value::Object(_) => r,
                    _ => Value::Object(this_obj),
                })
            }
            _ => Err(self.throw_error("TypeError", "value is not a constructor")),
        }
    }

    // --------------------------------------------------------------- eval

    /// Direct `eval` in the caller's scope. Non-string arguments are
    /// returned unchanged (as in JS).
    fn eval_direct(
        &mut self,
        frame: &mut Frame,
        arg: &Value,
        ctx: CtxId,
    ) -> Result<Value, RunError> {
        let Value::Str(src) = arg else {
            return Ok(arg.clone());
        };
        let parsed = match mujs_syntax::parse(src) {
            Ok(p) => p,
            Err(e) => {
                return Err(self.throw_error("SyntaxError", &e.to_string()));
            }
        };
        let chunk = mujs_ir::lower_chunk(self.prog, &parsed, FuncKind::EvalChunk, Some(frame.func));
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(self.prog);
        self.run_eval_chunk(frame, chunk, ctx)
    }

    /// Runs an eval chunk in the caller's scope; used for both direct and
    /// (with a global pseudo-frame) indirect eval.
    pub(crate) fn run_eval_chunk(
        &mut self,
        frame: &mut Frame,
        chunk: FuncId,
        ctx: CtxId,
    ) -> Result<Value, RunError> {
        let f = self.prog.func_rc(chunk);
        // Hoist the chunk's declarations into the caller's scope.
        for &v in &f.decls.vars {
            if self.lookup(frame.scope, v).is_none() {
                self.declare(frame.scope, v, Value::Undefined);
            }
        }
        for &(name, nested) in &f.decls.funcs {
            let clos = self.make_closure(nested, frame.scope);
            self.assign(frame.scope, name, Value::Object(clos));
        }
        let mut eframe = Frame {
            func: chunk,
            scope: frame.scope,
            activation: frame.activation,
            temps: vec![Value::Undefined; f.n_temps as usize],
            this_val: frame.this_val.clone(),
            ctx,
            occurrences: vec![0; self.prog.stmt_count_of(chunk) as usize],
        };
        match self.exec_block(&mut eframe, &f.body)? {
            Flow::Normal => Ok(eframe.temps.first().cloned().unwrap_or(Value::Undefined)),
            _ => Err(RunError::IllegalCompletion),
        }
    }

    /// Calls a closure object as an event handler or test hook, from the
    /// root context.
    pub fn call_closure_by_id(
        &mut self,
        clos: ObjId,
        this: Value,
        args: &[Value],
    ) -> Result<Value, RunError> {
        self.call_value(&Value::Object(clos), this, args, CtxId::ROOT)
    }

    /// Renders a value for `console.log`/`alert` capture.
    pub fn display(&self, v: &Value) -> String {
        match v {
            Value::Str(s) => s.to_string(),
            Value::Object(id) => match &self.obj(*id).class {
                ObjClass::Array => {
                    let len = match self.obj(*id).props.get(Sym::LENGTH) {
                        Some(Slot {
                            value: Value::Num(n),
                            ..
                        }) => *n as usize,
                        _ => 0,
                    };
                    let items: Vec<String> = (0..len.min(100))
                        .map(|i| {
                            self.prog
                                .interner
                                .get(&i.to_string())
                                .and_then(|k| self.obj(*id).props.get(k))
                                .map(|s| self.display(&s.value))
                                .unwrap_or_default()
                        })
                        .collect();
                    items.join(",")
                }
                c if c.is_callable() => "function".to_owned(),
                _ => "[object Object]".to_owned(),
            },
            other => coerce::to_string(other)
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "[object]".to_owned()),
        }
    }
}

/// Converts an AST literal to a runtime value.
pub fn lit_value(lit: &Lit) -> Value {
    match lit {
        Lit::Num(n) => Value::Num(*n),
        Lit::Str(s) => Value::Str(s.clone()),
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Null => Value::Null,
        Lit::Undefined => Value::Undefined,
    }
}

/// Whether `key` is a canonical array index.
pub fn array_index(key: &str) -> Option<u32> {
    if key.is_empty() || (key.len() > 1 && key.starts_with('0')) {
        return None;
    }
    key.parse::<u32>().ok()
}
