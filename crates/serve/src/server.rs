//! The daemon: connection handling, admission, and the cold-path bridge
//! into the jobs layer.
//!
//! Each connection (TCP socket or the process's stdin/stdout pipe) is a
//! line loop: parse a request, dispatch, write the frames it produces.
//! Analyze requests run on a single-worker [`JobPool`] spawned per
//! request — the pool supplies the deep parser stack, panic isolation,
//! the wedge watchdog, and the [`JobEvent`] stream the protocol forwards
//! as progress frames — while the pipeline inside the job consults the
//! shared [`StageCache`], so a warm request costs three cache probes and
//! no recomputation.
//!
//! Admission reuses the batch [`AdmissionController`] unchanged: a
//! request declaring more heap cells than the server-wide budget is
//! admitted at the budget and reported (and keyed!) as degraded — the
//! reduced budget changes the analysis, so it must change the facts
//! stage key too, which falls out of hashing the *effective* config.

use crate::cache::{CacheConfig, StageCache};
use crate::proto::{
    bye_line, error_line, event_line, parse_request, pong_line, result_line, stats_line,
    AnalyzeRequest, Request,
};
use crate::stage::{execute, Executed, PipelineCounters, StageRequest};
use mujs_jobs::admission::Admission;
use mujs_jobs::{AdmissionController, JobCtx, JobPool, JobVerdict};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Daemon-wide options.
#[derive(Debug, Default)]
pub struct ServeOptions {
    /// Stage-cache sizing and persistence.
    pub cache: CacheConfig,
    /// Server-wide declared-memory budget (heap cells) for admission
    /// control; `None` admits everything at full budget.
    pub mem_budget_cells: Option<u64>,
    /// Watchdog grace: requests with a deadline are wedged (cancelled and
    /// failed) at `deadline_ms + grace`. `None` disables the watchdog.
    pub watchdog_grace_ms: Option<u64>,
    /// Solver threads for PTA stages (0 and 1 both mean sequential).
    /// Purely an execution knob: results — and therefore stage keys and
    /// cached artifacts — are identical for every value, so operators
    /// can retune it across restarts without cold-starting the cache.
    pub pta_threads: usize,
    /// Server-wide default specializer context-depth bound for PTA
    /// stages. Unlike `pta_threads` this changes results, so it is part
    /// of the stage keys. A request's own `spec_depth` overrides it; an
    /// `inject` request ignores it (injection and specialization are
    /// mutually exclusive ways to consume the facts).
    pub spec_depth: Option<usize>,
    /// Server-wide default for shortcut mode (concrete-replay region
    /// summaries feeding PTA stages). Changes results, so it reaches the
    /// stage keys; requests can also ask per-request, and a request
    /// carrying `spec_depth` ignores the default (summaries name
    /// functions of the unspecialized program).
    pub shortcuts: bool,
    /// Solver shards for PTA stages (0 keeps the solver default). Like
    /// `pta_threads`, purely an execution knob — never part of stage
    /// keys, so operators can retune it across restarts without
    /// cold-starting the cache.
    pub pta_shards: usize,
}

struct Inner {
    cache: StageCache,
    counters: PipelineCounters,
    admission: Option<AdmissionController>,
    watchdog_grace_ms: Option<u64>,
    pta_threads: usize,
    spec_depth: Option<usize>,
    shortcuts: bool,
    pta_shards: usize,
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
    shutdown: AtomicBool,
}

/// The analysis service. Clone-free sharing via [`Server::serve`]'s
/// per-connection threads; all state lives behind one `Arc`.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// A server over `opts` with an empty (or disk-restored) cache.
    pub fn new(opts: ServeOptions) -> Self {
        Server {
            inner: Arc::new(Inner {
                cache: StageCache::new(opts.cache),
                counters: PipelineCounters::default(),
                admission: opts.mem_budget_cells.map(AdmissionController::new),
                watchdog_grace_ms: opts.watchdog_grace_ms,
                pta_threads: opts.pta_threads,
                spec_depth: opts.spec_depth,
                shortcuts: opts.shortcuts,
                pta_shards: opts.pta_shards,
                requests: AtomicU64::new(0),
                responses: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// The shared stage cache (exposed for tests and pre-warming).
    pub fn cache(&self) -> &StageCache {
        &self.inner.cache
    }

    /// The shared pipeline counters.
    pub fn counters(&self) -> &PipelineCounters {
        &self.inner.counters
    }

    /// Whether a shutdown request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The full counter snapshot served to `stats` requests.
    pub fn stats_value(&self) -> Value {
        let num = |a: &AtomicU64| Value::Num(a.load(Ordering::Relaxed) as f64);
        Value::Object(vec![
            (
                "server".to_owned(),
                Value::Object(vec![
                    ("requests".to_owned(), num(&self.inner.requests)),
                    ("responses".to_owned(), num(&self.inner.responses)),
                    ("errors".to_owned(), num(&self.inner.errors)),
                    ("degraded".to_owned(), num(&self.inner.degraded)),
                ]),
            ),
            ("cache".to_owned(), self.inner.cache.stats()),
            ("pipeline".to_owned(), self.inner.counters.to_value()),
        ])
    }

    /// Runs one connection's line loop to completion. Returns `Ok(true)`
    /// when the peer requested daemon shutdown.
    ///
    /// # Errors
    ///
    /// I/O errors reading requests or writing frames; protocol errors are
    /// answered in-band (an `error` frame), never surfaced here.
    pub fn handle_stream(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            self.inner.requests.fetch_add(1, Ordering::Relaxed);
            match parse_request(&line) {
                Err(e) => {
                    self.inner.errors.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{}", error_line(&Value::Null, &e))?;
                }
                Ok(Request::Ping(id)) => {
                    self.inner.responses.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{}", pong_line(&id))?;
                }
                Ok(Request::Stats(id)) => {
                    self.inner.responses.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{}", stats_line(&id, &self.stats_value()))?;
                }
                Ok(Request::Shutdown(id)) => {
                    self.inner.responses.fetch_add(1, Ordering::Relaxed);
                    self.inner.shutdown.store(true, Ordering::SeqCst);
                    writeln!(writer, "{}", bye_line(&id))?;
                    writer.flush()?;
                    return Ok(true);
                }
                Ok(Request::Analyze(req)) => {
                    self.handle_analyze(&req, &mut writer)?;
                }
            }
            writer.flush()?;
        }
        Ok(false)
    }

    /// Runs (or serves) one analyze request, streaming its frames.
    fn handle_analyze(&self, req: &AnalyzeRequest, writer: &mut impl Write) -> std::io::Result<()> {
        let adm = match &self.inner.admission {
            Some(c) => c.admit(req.effective_config().mem_cell_budget),
            None => Admission {
                reserved: 0,
                granted: None,
                degraded: false,
            },
        };
        let mut cfg = req.effective_config();
        if adm.degraded {
            cfg.mem_cell_budget = adm.granted;
            self.inner.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let status_label = if adm.degraded {
            "degraded"
        } else {
            "completed"
        };
        // The request's own depth wins; the server-wide default applies
        // only to requests that don't inject (the protocol layer already
        // rejects a request asking for both).
        let spec_depth = req.spec_depth.or(if req.inject {
            None
        } else {
            self.inner.spec_depth
        });
        // Same precedence for shortcut mode: the request can ask, the
        // server-wide default fills in otherwise, and a specializing
        // request never takes the default (the protocol layer already
        // rejects a request asking for both explicitly).
        let shortcuts = req.shortcuts || (self.inner.shortcuts && spec_depth.is_none());
        let stage_req = StageRequest {
            src: req.src.clone(),
            cfg,
            seeds: req.effective_seeds(),
            pta_budget: req.pta_budget,
            inject: req.inject,
            spec_depth,
            shortcuts,
            pta_threads: self.inner.pta_threads,
            pta_shards: self.inner.pta_shards,
        };

        let (tx, rx) = mpsc::channel();
        let inner = &self.inner;
        let grace = self.inner.watchdog_grace_ms;
        let deadline = stage_req.cfg.deadline_ms;
        let verdict = std::thread::scope(|s| {
            let stage_req = &stage_req;
            let handle = s.spawn(move || {
                // The pool lives (and dies) inside this thread: dropping it
                // when the batch finishes closes the event channel, which
                // ends the forwarding loop below.
                let pool = JobPool::new(1).with_events(tx);
                let job = move |ctx: &JobCtx| -> Executed {
                    if let (Some(grace), Some(deadline)) = (grace, deadline) {
                        ctx.arm_watchdog(deadline.saturating_add(grace));
                    }
                    execute(
                        stage_req,
                        status_label,
                        req.include_facts,
                        &req.name,
                        &inner.cache,
                        &inner.counters,
                        &ctx.cancel,
                        &|detail| ctx.progress(detail),
                    )
                };
                let mut verdicts = pool.run(vec![(req.name.clone(), job)]);
                verdicts.pop().expect("one job submitted")
            });
            // Forward the event stream as progress frames while the job
            // runs. A broken pipe stops writing but keeps draining so the
            // job side never sees the difference.
            let mut write_err = None;
            if adm.degraded {
                let line = event_line(
                    &mujs_jobs::JobEvent::Degraded {
                        job: 0,
                        label: req.name.clone(),
                        granted_cells: adm.granted.unwrap_or_default(),
                    },
                    &req.id,
                );
                if let Err(e) = writeln!(writer, "{line}") {
                    write_err = Some(e);
                }
            }
            for ev in rx {
                if write_err.is_none() {
                    if let Err(e) = writeln!(writer, "{}", event_line(&ev, &req.id)) {
                        write_err = Some(e);
                    }
                }
            }
            let verdict = handle.join().expect("pool thread never panics");
            match write_err {
                Some(e) => Err(e),
                None => Ok(verdict),
            }
        });
        if let Some(c) = &self.inner.admission {
            c.release(adm);
        }
        let verdict = verdict?;
        let line = match verdict {
            JobVerdict::Done(executed) => {
                self.inner.responses.fetch_add(1, Ordering::Relaxed);
                result_line(&req.id, &executed.cached, &executed.report)
            }
            JobVerdict::Panicked(p) => {
                self.inner.errors.fetch_add(1, Ordering::Relaxed);
                error_line(&req.id, &format!("panicked: {p}"))
            }
            JobVerdict::Wedged => {
                self.inner.errors.fetch_add(1, Ordering::Relaxed);
                error_line(&req.id, "wedged: exceeded watchdog budget")
            }
            JobVerdict::Cancelled => {
                self.inner.errors.fetch_add(1, Ordering::Relaxed);
                error_line(&req.id, "cancelled")
            }
        };
        writeln!(writer, "{line}")
    }

    /// Accepts connections until a peer sends `shutdown`, handling each
    /// on its own thread. Returns once every in-flight connection has
    /// drained.
    ///
    /// # Errors
    ///
    /// Fatal accept errors; per-connection I/O errors only end that
    /// connection.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        std::thread::scope(|s| {
            for stream in listener.incoming() {
                if self.is_shutting_down() {
                    break;
                }
                let stream = match stream {
                    Ok(st) => st,
                    Err(e) => return Err(e),
                };
                s.spawn(move || {
                    let _ = self.handle_connection(stream, addr);
                });
            }
            Ok(())
        })
    }

    fn handle_connection(
        &self,
        stream: TcpStream,
        addr: std::net::SocketAddr,
    ) -> std::io::Result<()> {
        // Frames are small line-delimited writes; without this, Nagle's
        // algorithm batches them against the peer's delayed ACK and every
        // warm round-trip eats ~40ms per frame.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let shutdown = self.handle_stream(reader, stream)?;
        if shutdown {
            // Unblock the accept loop so `serve` can observe the flag and
            // return instead of waiting for a connection that never comes.
            let _ = TcpStream::connect(addr);
        }
        Ok(())
    }
}
