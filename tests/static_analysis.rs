//! Integration of the static analysis layer with the dynamic pipeline:
//!
//! * **Soundness cross-check** — a fact the intraprocedural constant
//!   propagation proves statically determinate must agree with every
//!   determinate fact the *dynamic* analysis records at the same program
//!   point. (The converse inclusion — every static-det point is
//!   dynamic-det — does not hold in general: counterfactual aborts make
//!   the dynamic analysis conservatively indeterminate at points a static
//!   analysis can still decide, e.g. `c ? 1 : 1`.)
//! * **Validator acceptance** — every program shape the real pipeline
//!   produces (freshly lowered, post-run with eval chunks, specialized)
//!   passes the structural validator.
//! * **Injection parity** — fact injection into the PTA recovers the
//!   precision of the specializing (source-rewriting) pipeline.
//! * **Provenance transparency** — blame tracking is an observer:
//!   turning it on changes no points-to result (export bytes are
//!   identical), and injected tuples are attributed to the `injected`
//!   blame kind so root-cause reports separate paper-mechanism precision
//!   from residual imprecision.

use determinacy::{AnalysisConfig, Fact, FactDb, FactKind, FactValue};
use mujs_analysis::{analyze_program, validate_program, StaticFacts};
use mujs_corpus::{evalbench, jquery_like};
use mujs_ir::Program;
use mujs_pta::{PtaConfig, PtaStatus};
use mujs_specialize::SpecConfig;

/// JavaScript truthiness of a recorded dynamic fact value (dynamic `Cond`
/// facts store the raw condition value; the static analysis stores the
/// branch it folds to).
fn truthy(v: &FactValue) -> bool {
    match v {
        FactValue::Undefined | FactValue::Null => false,
        FactValue::Bool(b) => *b,
        FactValue::Num(n) => *n != 0.0 && !n.is_nan(),
        FactValue::Str(s) => !s.is_empty(),
        FactValue::Closure(_) | FactValue::Object(_) => true,
    }
}

/// Checks every statically determinate fact against the dynamic DB and
/// returns how many (point, context) pairs were actually compared.
fn assert_agreement(label: &str, sf: &StaticFacts, db: &FactDb) -> usize {
    let mut compared = 0;
    for (&point, key) in &sf.prop_keys {
        for (ctx, fact) in db.at_point(FactKind::PropKey, point) {
            if let Fact::Det(v) = fact {
                compared += 1;
                assert_eq!(
                    v,
                    &FactValue::Str(key.clone()),
                    "{label}: static key {key:?} at {point:?} disagrees with \
                     dynamic fact {v:?} in ctx {ctx:?}"
                );
            }
        }
    }
    for (&point, &callee) in &sf.callees {
        for (ctx, fact) in db.at_point(FactKind::Callee, point) {
            if let Fact::Det(v) = fact {
                compared += 1;
                assert_eq!(
                    v,
                    &FactValue::Closure(callee),
                    "{label}: static callee {callee:?} at {point:?} disagrees \
                     with dynamic fact {v:?} in ctx {ctx:?}"
                );
            }
        }
    }
    for (&point, &branch) in &sf.conds {
        for (ctx, fact) in db.at_point(FactKind::Cond, point) {
            if let Fact::Det(v) = fact {
                compared += 1;
                assert_eq!(
                    truthy(v),
                    branch,
                    "{label}: static branch {branch} at {point:?} disagrees \
                     with dynamic condition {v:?} in ctx {ctx:?}"
                );
            }
        }
    }
    compared
}

fn assert_valid_clean(label: &str, prog: &Program) {
    let violations = validate_program(prog);
    assert!(
        violations.is_empty(),
        "{label}: {} violations, first: {}",
        violations.len(),
        violations[0].describe(prog)
    );
}

#[test]
fn static_facts_agree_with_dynamic_facts_across_corpus() {
    let mut compared = 0usize;
    for v in jquery_like::all_versions() {
        let mut h = determinacy::DetHarness::from_src(&v.src).expect("corpus parses");
        let out = h.analyze_dom(AnalysisConfig::default(), v.doc.clone(), &v.plan);
        // Analyze *after* the run so runtime-lowered eval chunks are
        // covered too.
        let sf = analyze_program(&h.program);
        compared += assert_agreement(&format!("table1/{}", v.version), &sf, &out.facts);
    }
    for b in evalbench::all().iter().filter(|b| b.runnable) {
        let Ok(mut h) = determinacy::DetHarness::from_src(&b.src) else {
            continue;
        };
        let out = h.analyze_dom(AnalysisConfig::default(), b.doc(), &b.plan());
        let sf = analyze_program(&h.program);
        compared += assert_agreement(&format!("evalbench/{}", b.name), &sf, &out.facts);
    }
    // The check must not be vacuous: the corpus yields overlapping points.
    assert!(
        compared > 0,
        "no static fact ever coincided with a dynamic fact"
    );
}

#[test]
fn static_facts_agree_on_example_scripts() {
    let mut compared = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir("examples/js")
        .expect("examples/js exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "js"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("example reads");
        let mut h = determinacy::DetHarness::from_src(&src).expect("example parses");
        let out = h.analyze(AnalysisConfig::default());
        let sf = analyze_program(&h.program);
        compared += assert_agreement(&path.display().to_string(), &sf, &out.facts);
    }
    let _ = compared; // examples are small; agreement alone is the point
}

#[test]
fn statically_derived_keys_match_a_dynamic_run() {
    // A focused overlap case: the key is both statically derivable
    // (constant concat) and dynamically recorded.
    let src = "function f() { var o = {}; var k = \"a\" + \"b\"; o[k] = 1; return o[k]; } f();";
    let mut h = determinacy::DetHarness::from_src(src).unwrap();
    let out = h.analyze(AnalysisConfig::default());
    let sf = analyze_program(&h.program);
    assert!(
        sf.prop_keys.values().any(|k| &**k == "ab"),
        "static analysis derives the concat key"
    );
    let compared = assert_agreement("concat-key", &sf, &out.facts);
    assert!(compared >= 2, "both accesses must be cross-checked");
}

#[test]
fn counterfactual_conservatism_is_one_directional() {
    // `c ? 1 : 1` joins to the constant 1 statically, but the dynamic
    // analysis may only ever see it indeterminate (CNTRABORT). The
    // soundness contract is one-directional: dynamic-Det ⇒ agrees with
    // static; static-det does NOT imply dynamic-det. This program must
    // therefore pass the agreement check trivially (no Det dynamic facts
    // at the statically determinate points is fine).
    let src = "function g(c) { var x; if (c) { x = 1; } else { x = 1; } return x; } \
               g(Math.random() < 0.5);";
    let mut h = determinacy::DetHarness::from_src(src).unwrap();
    let out = h.analyze(AnalysisConfig::default());
    let sf = analyze_program(&h.program);
    assert_agreement("cntrabort", &sf, &out.facts);
}

#[test]
fn validator_accepts_all_pipeline_stages_across_corpus() {
    for v in jquery_like::all_versions() {
        let label = format!("table1/{}", v.version);
        let mut h = determinacy::DetHarness::from_src(&v.src).expect("corpus parses");
        assert_valid_clean(&format!("{label} (lowered)"), &h.program);
        let mut out = h.analyze_dom(AnalysisConfig::default(), v.doc.clone(), &v.plan);
        assert_valid_clean(&format!("{label} (post-run)"), &h.program);
        let spec = mujs_specialize::specialize(
            &h.program,
            &out.facts,
            &mut out.ctxs,
            &SpecConfig::default(),
        );
        assert_valid_clean(&format!("{label} (specialized)"), &spec.program);
    }
    for b in evalbench::all().iter().filter(|b| b.runnable) {
        let Ok(mut h) = determinacy::DetHarness::from_src(&b.src) else {
            continue;
        };
        let label = format!("evalbench/{}", b.name);
        assert_valid_clean(&format!("{label} (lowered)"), &h.program);
        let mut out = h.analyze_dom(AnalysisConfig::default(), b.doc(), &b.plan());
        assert_valid_clean(&format!("{label} (post-run)"), &h.program);
        let spec = mujs_specialize::specialize(
            &h.program,
            &out.facts,
            &mut out.ctxs,
            &SpecConfig::default(),
        );
        assert_valid_clean(&format!("{label} (specialized)"), &spec.program);
    }
}

#[test]
fn injected_pta_matches_specialized_precision() {
    // The Figure 3 accessor pattern: dynamic keys defeat the baseline;
    // both consumers of determinacy facts (source rewriting and solver
    // injection) must recover the monomorphic call graph.
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
function defAccessors(prop) {
  Rectangle.prototype["get" + prop] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop] = function setter(v) { this[prop] = v; };
}
defAccessors("Width");
defAccessors("Height");
var r = new Rectangle(20, 30);
r.getWidth();
"#;
    let mut h = determinacy::DetHarness::from_src(src).unwrap();
    let mut out = h.analyze(AnalysisConfig::default());
    let mut prog = h.program;
    let facts = determinacy::injectable_facts(&out.facts, &mut prog);
    assert!(
        !facts.is_empty(),
        "the accessor writes yield injectable keys"
    );

    let baseline = mujs_pta::solve(&prog, &PtaConfig::default());
    let injected = mujs_pta::solve(
        &prog,
        &PtaConfig {
            facts: Some(facts),
            ..Default::default()
        },
    );
    let spec =
        mujs_specialize::specialize(&prog, &out.facts, &mut out.ctxs, &SpecConfig::default());
    let specialized = mujs_pta::solve(&spec.program, &PtaConfig::default());

    assert_eq!(injected.status, PtaStatus::Completed);
    if specialized.status == PtaStatus::Completed {
        assert_eq!(injected.status, PtaStatus::Completed);
    }
    let pb = baseline.precision(&prog);
    let pi = injected.precision(&prog);
    let ps = specialized.precision(&spec.program);
    assert!(
        pi.poly_sites < pb.poly_sites,
        "injection removes polymorphism: {pi:?} vs baseline {pb:?}"
    );
    assert!(
        pi.poly_sites <= ps.poly_sites,
        "injection at least matches specialization: {pi:?} vs {ps:?}"
    );
    assert_eq!(
        pi.reachable_funcs, ps.reachable_funcs,
        "both fact consumers reach the same canonical functions"
    );
}

/// The Figure 3 accessor source shared by the provenance tests below.
const ACCESSOR_SRC: &str = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
function defAccessors(prop) {
  Rectangle.prototype["get" + prop] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop] = function setter(v) { this[prop] = v; };
}
defAccessors("Width");
defAccessors("Height");
var r = new Rectangle(20, 30);
r.getWidth();
"#;

/// Runs the dynamic analysis and returns the lowered program with its
/// injectable facts (computed once, cloned per solve).
fn accessor_program() -> (Program, mujs_pta::InjectedFacts) {
    let mut h = determinacy::DetHarness::from_src(ACCESSOR_SRC).unwrap();
    let out = h.analyze(AnalysisConfig::default());
    let mut prog = h.program;
    let facts = determinacy::injectable_facts(&out.facts, &mut prog);
    assert!(!facts.is_empty(), "accessor writes yield injectable facts");
    (prog, facts)
}

#[test]
fn provenance_is_invisible_in_injecting_exports() {
    // Blame tracking must be a pure observer of the injecting solve: the
    // points-to relation — and therefore the canonical export bytes —
    // must not move when it is switched on, whatever thread count the
    // provenance path forces internally.
    let (prog, facts) = accessor_program();
    let solve = |provenance: bool| {
        mujs_pta::solve(
            &prog,
            &PtaConfig {
                facts: Some(facts.clone()),
                provenance,
                ..Default::default()
            },
        )
    };
    let off = solve(false);
    let on = solve(true);
    assert_eq!(off.status, on.status);
    assert!(!off.has_blame(), "provenance off records no blame");
    assert!(on.has_blame(), "provenance on records blame");
    assert_eq!(
        off.export_json(),
        on.export_json(),
        "provenance changed the injecting solve's points-to export"
    );
    assert_eq!(off.export_blame_json(), None);
}

#[test]
fn injected_tuples_carry_the_injected_blame_kind() {
    let (prog, facts) = accessor_program();
    let r = mujs_pta::solve(
        &prog,
        &PtaConfig {
            facts: Some(facts),
            provenance: true,
            ..Default::default()
        },
    );
    let hist = r.blame_histogram();
    assert!(
        hist.iter().any(|(c, n)| c.kind() == "injected" && *n > 0),
        "no tuple was blamed on an injected fact: {hist:?}"
    );
    // The blame report surfaces the same split: injected tuples are
    // counted apart from both precise and imprecise ones.
    let report = mujs_analysis::blame_report(&prog, &r, 5).expect("provenance solve has blame");
    assert!(
        report.injected_tuples > 0,
        "report must count injected tuples: {report:?}"
    );
    assert!(report.total_tuples >= report.precise_tuples + report.injected_tuples);
}
