//! Behavioral tests of the instrumented semantics: determinacy
//! propagation, conditionals, counterfactual execution, heap flushes,
//! eval, and the paper's Figure 2 worked example.

use determinacy::driver::{AnalysisOutcome, DetHarness};
use determinacy::{AnalysisConfig, AnalysisStatus, Fact, FactDb, FactKind, FactValue, TripFact};
use mujs_interp::context::CtxId;
use mujs_ir::ir::StmtKind;
use mujs_ir::{Program, StmtId};

fn analyze(src: &str) -> (DetHarness, AnalysisOutcome) {
    analyze_cfg(src, AnalysisConfig::default())
}

fn analyze_cfg(src: &str, cfg: AnalysisConfig) -> (DetHarness, AnalysisOutcome) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let out = h.analyze(cfg);
    (h, out)
}

/// Statement ids of `Copy` statements assigning the named variable.
fn assignments_of(prog: &Program, name: &str) -> Vec<StmtId> {
    let Some(sym) = prog.interner.get(name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for f in &prog.funcs {
        Program::walk_block(&f.body, &mut |s| {
            if let StmtKind::Copy { dst, .. } = &s.kind {
                if dst.as_var_sym() == Some(sym) {
                    out.push(s.id);
                }
            }
        });
    }
    out
}

/// The merged define-facts (across all contexts) for assignments to `name`.
fn facts_for_var(h: &DetHarness, db: &FactDb, name: &str) -> Vec<Fact> {
    let mut out = Vec::new();
    for point in assignments_of(&h.program, name) {
        for (_, f) in db.at_point(FactKind::Define, point) {
            out.push(f.clone());
        }
    }
    out
}

fn assert_var_det(h: &DetHarness, out: &AnalysisOutcome, name: &str, expect: FactValue) {
    let fs = facts_for_var(h, &out.facts, name);
    assert!(!fs.is_empty(), "no facts for {name}");
    for f in fs {
        match f {
            Fact::Det(v) => assert!(v.same(&expect), "{name}: expected {expect}, got {v}"),
            Fact::Indet => panic!("{name}: expected determinate {expect}, got ?"),
        }
    }
}

fn assert_var_indet(h: &DetHarness, out: &AnalysisOutcome, name: &str) {
    let fs = facts_for_var(h, &out.facts, name);
    assert!(!fs.is_empty(), "no facts for {name}");
    assert!(
        fs.iter().all(|f| matches!(f, Fact::Indet)),
        "{name}: expected ?, got {fs:?}"
    );
}

#[test]
fn constants_are_determinate() {
    let (h, out) = analyze("var a = 1 + 2; var b = \"x\" + \"y\";");
    assert_eq!(out.status, AnalysisStatus::Completed);
    assert_var_det(&h, &out, "a", FactValue::Num(3.0));
    assert_var_det(&h, &out, "b", FactValue::Str("xy".into()));
}

#[test]
fn math_random_is_indeterminate_and_propagates() {
    let (h, out) = analyze("var r = Math.random(); var s = r * 100; var t = 5;");
    assert_var_indet(&h, &out, "r");
    assert_var_indet(&h, &out, "s");
    assert_var_det(&h, &out, "t", FactValue::Num(5.0));
}

#[test]
fn indet_hook_is_indeterminate() {
    let (h, out) = analyze("var x = __indet(42); var y = x + 1;");
    assert_var_indet(&h, &out, "x");
    assert_var_indet(&h, &out, "y");
}

#[test]
fn determinate_property_reads() {
    let (h, out) = analyze("var o = { f: 23 }; var v = o.f; var w = o.missing;");
    assert_var_det(&h, &out, "v", FactValue::Num(23.0));
    // Closed record: a missing property is determinately undefined.
    assert_var_det(&h, &out, "w", FactValue::Undefined);
}

#[test]
fn indeterminate_property_value() {
    let (h, out) = analyze("var o = { f: Math.random() }; var v = o.f;");
    assert_var_indet(&h, &out, "v");
}

#[test]
fn dynamic_key_write_opens_record() {
    let src = r#"
var o = { a: 1 };
var k = __indet("a");
o[k] = 2;
var v = o.a;       // property written under an indeterminate name
var w = o.other;   // record is now open: absence is unknowable
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "v");
    assert_var_indet(&h, &out, "w");
}

#[test]
fn determinate_condition_executes_normally() {
    let src = r#"
var c = true;
var x = 0;
if (c) { x = 1; } else { x = 2; }
var y = x;
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "y", FactValue::Num(1.0));
}

#[test]
fn indeterminate_true_branch_marks_writes_after() {
    // The paper's second checkf call: the branch runs, facts *inside* are
    // determinate, but writes are indeterminate after the merge.
    let src = r#"
var c = __indet(true);
var inside = 0;
var x = 0;
if (c) { inside = 42; x = 1; }
var after = x;
"#;
    let (h, out) = analyze(src);
    // Fact recorded inside the branch (at its write) is determinate.
    let fs = facts_for_var(&h, &out.facts, "inside");
    assert!(
        fs.iter()
            .any(|f| matches!(f, Fact::Det(v) if v.same(&FactValue::Num(42.0)))),
        "inside-branch fact should be determinate: {fs:?}"
    );
    // But the value read after the merge is indeterminate.
    assert_var_indet(&h, &out, "after");
}

#[test]
fn counterfactual_execution_undoes_and_marks() {
    // Condition is indeterminate false: the branch must be explored
    // counterfactually, its writes undone, and the written locations
    // marked indeterminate.
    let src = r#"
var c = __indet(false);
var x = 5;
var witness = 0;
if (c) { x = 99; witness = 1; }
var after_x = x;
console.log(x);
"#;
    let (h, out) = analyze(src);
    // Undo happened: the concrete value is still 5 (visible in output).
    assert_eq!(out.output, vec!["5"]);
    // Marking happened: x is indeterminate after the conditional.
    assert_var_indet(&h, &out, "after_x");
    assert!(out.stats.counterfactuals >= 1);
}

#[test]
fn counterfactual_keeps_unwritten_locations_determinate() {
    let src = r#"
var c = __indet(false);
var x = 5;
var untouched = 7;
if (c) { x = 99; }
var a = x;
var b = untouched;
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "a");
    assert_var_det(&h, &out, "b", FactValue::Num(7.0));
}

#[test]
fn counterfactual_heap_writes_are_undone() {
    let src = r#"
var c = __indet(false);
var o = { g: 1, h: true };
if (c) { o.g = 99; }
var g = o.g;
var hh = o.h;
console.log(o.g);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.output, vec!["1"]);
    assert_var_indet(&h, &out, "g");
    // z.h stays determinate (§2.1's z.h example).
    assert_var_det(&h, &out, "hh", FactValue::Bool(true));
}

#[test]
fn counterfactual_disabled_falls_back_to_abort() {
    let src = r#"
var c = __indet(false);
var o = { g: 1 };
if (c) { o.g = 99; }
var g = o.g;
"#;
    let cfg = AnalysisConfig {
        counterfactual: false,
        ..Default::default()
    };
    let (h, out) = analyze_cfg(src, cfg);
    assert_var_indet(&h, &out, "g");
    assert!(out.stats.heap_flushes >= 1, "CNTRABORT must flush");
    assert_eq!(out.stats.counterfactuals, 0);
}

#[test]
fn nested_counterfactual_depth_cutoff() {
    let src = r#"
var a = __indet(false);
var b = __indet(false);
var x = 0;
if (a) { if (b) { x = 1; } }
"#;
    let cfg = AnalysisConfig {
        cf_depth_k: 1,
        ..Default::default()
    };
    let (_, out) = analyze_cfg(src, cfg);
    // The inner counterfactual exceeds k=1 and aborts with a flush.
    assert!(out.stats.cf_aborts >= 1);
    assert!(out.stats.heap_flushes >= 1);
}

#[test]
fn indeterminate_callee_flushes_heap() {
    // Figure 2 line 21: `(y.f > 50 ? checkf : setg)(x, 72)`.
    let src = r#"
function f(p, v) { p.g = v; }
function g(p, v) { p.g = v + 1; }
var o = { f: 23 };
var which = __indet(true) ? f : g;
which(o, 72);
var after = o.f;
"#;
    let (h, out) = analyze(src);
    assert!(out.stats.heap_flushes >= 1);
    // Even o.f (untouched by the call) is conservatively indeterminate.
    assert_var_indet(&h, &out, "after");
}

#[test]
fn locals_survive_heap_flush() {
    // "x and y need not be made indeterminate, since they are local
    // variables and cannot possibly be written by any called function."
    let src = r#"
function run() {
  var local = 7;
  __opaque();
  var after = local;
  return after;
}
run();
"#;
    let (h, out) = analyze(src);
    assert!(out.stats.heap_flushes >= 1);
    assert_var_det(&h, &out, "after", FactValue::Num(7.0));
}

#[test]
fn captured_locals_do_not_survive_flush() {
    let src = r#"
function run() {
  var shared = 7;
  var touch = function() { shared = 8; };
  __opaque();
  var after = shared;
  return touch;
}
run();
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "after");
}

#[test]
fn globals_do_not_survive_flush() {
    let src = r#"
var g = 7;
__opaque();
var after = g;
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "after");
}

#[test]
fn figure2_worked_example() {
    // The full Figure 2 program; line numbers in this literal match the
    // comments.
    let src = r#"(function() {
  function checkf(p) {
    if (p.f < 32)
      setg(p, 42);
  }
  function setg(r, v) {
    r.g = v;
  }
  var x = { f: 23 },
      y = { f: Math.random() * 100 },
      xf1 = x.f,
      yf1 = y.f;
  checkf(x);
  var xf2 = x.f, xg2 = x.g;
  checkf(y);
  var yg = y.g;
  (y.f > 50 ? checkf : setg)(x, 72);
  var xg3 = x.g;
  var z = { f: x.g - 16, h: true };
  checkf(z);
  var zh = z.h;
})();
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.status, AnalysisStatus::Completed);
    // J x.f K = 23, J y.f K = ?
    assert_var_det(&h, &out, "xf1", FactValue::Num(23.0));
    assert_var_indet(&h, &out, "yf1");
    // After the determinate-condition call: J x.f K = 23, J x.g K = 42.
    assert_var_det(&h, &out, "xf2", FactValue::Num(23.0));
    assert_var_det(&h, &out, "xg2", FactValue::Num(42.0));
    // After the indeterminate-condition call: J y.g K = ?.
    assert_var_indet(&h, &out, "yg");
    // After the indeterminate call: J x.g K = ? and a flush happened.
    assert_var_indet(&h, &out, "xg3");
    assert!(out.stats.heap_flushes >= 1);
    // z.h: f is indeterminate (from flushed x.g) but h stays determinate
    // inside this run... z is created after the flush, so its record is
    // closed and h was written determinately.
    assert_var_det(&h, &out, "zh", FactValue::Bool(true));
}

#[test]
fn qualified_facts_distinguish_call_sites() {
    // J p.f < 32 K 16→4 = true but the merged fact across call sites is ?.
    let src = r#"
function checkf(p) {
  var cond = p.f < 32;
  if (cond) { p.g = 42; }
}
var x = { f: 23 };
var y = { f: 40 };
checkf(x);
checkf(y);
"#;
    let (h, out) = analyze(src);
    let points = assignments_of(&h.program, "cond");
    assert_eq!(points.len(), 1);
    let per_ctx: Vec<(CtxId, Fact)> = out
        .facts
        .at_point(FactKind::Define, points[0])
        .map(|(c, f)| (c, f.clone()))
        .collect();
    // Two distinct contexts with different determinate values.
    assert_eq!(per_ctx.len(), 2);
    let mut vals: Vec<Option<bool>> = per_ctx
        .iter()
        .map(|(_, f)| f.value().and_then(|v| v.as_bool()))
        .collect();
    vals.sort();
    assert_eq!(vals, vec![Some(false), Some(true)]);
}

#[test]
fn facts_survive_after_flush_degrades_future_reads() {
    let src = r#"
var early = 1 + 1;   // recorded before any flush
__opaque();
var late = 1 + 1;    // constant: still determinate
var reread = early;  // reading the flushed global: indeterminate
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "early", FactValue::Num(2.0));
    assert_var_det(&h, &out, "late", FactValue::Num(2.0));
    assert_var_indet(&h, &out, "reread");
}

#[test]
fn loop_trip_counts_recorded() {
    let src = r#"
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) { var p = props[i]; }
"#;
    let (h, out) = analyze(src);
    let trips: Vec<TripFact> = out.facts.iter_trips().map(|(_, _, t)| t).collect();
    assert!(
        trips.contains(&TripFact::Exact(2)),
        "expected a 2-trip loop fact, got {trips:?}"
    );
    let _ = h;
}

#[test]
fn indeterminate_loop_bound_is_unknown() {
    let src = r#"
var n = __indet(3);
for (var i = 0; i < n; i++) { }
"#;
    let (_, out) = analyze(src);
    let trips: Vec<TripFact> = out.facts.iter_trips().map(|(_, _, t)| t).collect();
    assert!(trips.contains(&TripFact::Unknown));
}

#[test]
fn loop_writes_marked_after_indeterminate_guard() {
    let src = r#"
var n = __indet(2);
var acc = 0;
for (var i = 0; i < n; i++) { acc = acc + 1; }
var after = acc;
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "after");
}

#[test]
fn determinate_loop_keeps_writes_determinate() {
    let src = r#"
var acc = 0;
for (var i = 0; i < 3; i++) { acc = acc + 1; }
var after = acc;
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "after", FactValue::Num(3.0));
}

#[test]
fn eval_arg_facts_recorded() {
    // Figure 4's pattern: the eval argument is a determinate concatenation.
    let src = r#"
var id = "pc.sy.banner.tcck.";
var code = "ivymap['" + id + "']";
var ivymap = {};
var r = eval(code);
"#;
    let (h, out) = analyze(src);
    let mut eval_facts: Vec<Fact> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::EvalArg)
        .map(|(_, _, _, f)| f.clone())
        .collect();
    assert_eq!(eval_facts.len(), 1);
    match eval_facts.pop().unwrap() {
        Fact::Det(FactValue::Str(s)) => {
            assert_eq!(&*s, "ivymap['pc.sy.banner.tcck.']");
        }
        other => panic!("expected determinate string, got {other:?}"),
    }
    let _ = h;
}

#[test]
fn indeterminate_eval_flushes() {
    let src = r#"
var code = __indet("1 + 1");
var r = eval(code);
var x = 5;
"#;
    let (h, out) = analyze(src);
    assert!(out.stats.heap_flushes >= 1);
    assert_var_indet(&h, &out, "r");
    assert_var_det(&h, &out, "x", FactValue::Num(5.0));
}

#[test]
fn eval_code_is_recursively_analyzed() {
    let src = r#"
var r = eval("var inner = 2 + 3; inner");
var s = r + 1;
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "s", FactValue::Num(6.0));
    // Facts were recorded inside the eval chunk too.
    assert_var_det(&h, &out, "inner", FactValue::Num(5.0));
}

#[test]
fn callee_facts_identify_closures() {
    let src = r#"
function f() { return 1; }
var r = f();
"#;
    let (_, out) = analyze(src);
    let callees: Vec<&Fact> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::Callee)
        .map(|(_, _, _, f)| f)
        .collect();
    assert!(callees
        .iter()
        .any(|f| matches!(f, Fact::Det(FactValue::Closure(_)))));
}

#[test]
fn cond_facts_recorded_per_context() {
    // Figure 1's monomorphic-call-site insight: under each call site the
    // typeof test is determinate (with different values).
    let src = r#"
function $(selector) {
  if (typeof selector === "string") { return 1; }
  else { if (typeof selector === "function") { return 2; } else { return 3; } }
}
$("css");
$(function() {});
"#;
    let (_, out) = analyze(src);
    let cond_facts: Vec<(CtxId, Fact)> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::Cond)
        .map(|(_, _, c, f)| (c, f.clone()))
        .collect();
    // Every conditional fact is determinate under its full context.
    assert!(!cond_facts.is_empty());
    assert!(cond_facts.iter().all(|(_, f)| f.is_det()));
}

#[test]
fn flush_cap_stops_analysis() {
    let src = r#"
for (var i = 0; i < 100; i++) { __opaque(); }
"#;
    let cfg = AnalysisConfig {
        flush_cap: Some(10),
        ..Default::default()
    };
    let (_, out) = analyze_cfg(src, cfg);
    assert_eq!(out.status, AnalysisStatus::FlushCapReached);
    assert!(out.stats.heap_flushes >= 10);
}

#[test]
fn early_return_under_indeterminate_control() {
    // Other executions may not return: the function's suffix must be
    // accounted for (counterfactually), and the return value marked.
    let src = r#"
function f() {
  var local = 1;
  if (__indet(true)) { return 10; }
  local = 2;
  return 20;
}
var r = f();
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "r");
    assert!(out.stats.counterfactuals >= 1);
}

#[test]
fn early_return_with_determinate_control_stays_precise() {
    let src = r#"
function f() {
  if (true) { return 10; }
  return 20;
}
var r = f();
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "r", FactValue::Num(10.0));
}

#[test]
fn indeterminate_break_aborts_loop_precision() {
    let src = r#"
var acc = 0;
for (var i = 0; i < 10; i++) {
  if (__indet(false)) { break; }
  acc = acc + 1;
}
var after = acc;
"#;
    let (h, out) = analyze(src);
    // The break did not fire concretely, but the counterfactual explores
    // it; acc is written inside a tainted region.
    assert_var_indet(&h, &out, "after");
}

#[test]
fn throw_under_indeterminate_control_taints_handler() {
    let src = r#"
var caught = 0;
try {
  if (__indet(true)) { throw "boom"; }
  caught = 1;
} catch (e) {
  caught = 2;
}
var after = caught;
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "after");
}

#[test]
fn determinate_throw_keeps_handler_precise() {
    let src = r#"
var caught = 0;
try {
  throw 42;
} catch (e) {
  caught = e;
}
var after = caught;
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "after", FactValue::Num(42.0));
}

#[test]
fn output_matches_concrete_interpreter() {
    // Counterfactual execution must not leak output.
    let src = r#"
var c = __indet(false);
if (c) { console.log("ghost"); }
console.log("real");
"#;
    let (_, out) = analyze(src);
    assert_eq!(out.output, vec!["real"]);
}

#[test]
fn for_in_over_determinate_object() {
    let src = r#"
var o = { a: 1, b: 2 };
var ks = "";
for (var k in o) { ks = ks + k; }
var after = ks;
"#;
    let (h, out) = analyze(src);
    assert_var_det(&h, &out, "after", FactValue::Str("ab".into()));
}

#[test]
fn for_in_over_open_record_is_indeterminate() {
    let src = r#"
var o = { a: 1 };
o[__indet("a")] = 2;
var ks = "";
for (var k in o) { ks = ks + k; }
var after = ks;
"#;
    let (h, out) = analyze(src);
    assert_var_indet(&h, &out, "after");
}

#[test]
fn figure3_string_computation_facts() {
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
String.prototype.cap = function() { return this[0].toUpperCase() + this.substr(1); };
function defAccessors(prop) {
  var name = "get" + prop.cap();
  Rectangle.prototype[name] = function() { return this[prop]; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
"#;
    let (h, out) = analyze(src);
    assert_eq!(out.status, AnalysisStatus::Completed);
    // Under each loop-iteration context, `name` is determinate with the
    // expected string — the key fact enabling §2.2's specialization.
    let points = assignments_of(&h.program, "name");
    assert_eq!(points.len(), 1);
    let vals: Vec<Option<String>> = out
        .facts
        .at_point(FactKind::Define, points[0])
        .map(|(_, f)| f.value().and_then(|v| v.as_str()).map(str::to_owned))
        .collect();
    assert_eq!(vals.len(), 2, "one fact per occurrence-qualified context");
    assert!(vals.contains(&Some("getWidth".to_owned())));
    assert!(vals.contains(&Some("getHeight".to_owned())));
}

#[test]
fn observations_skip_counterfactual_hits() {
    let src = r#"
var c = __indet(false);
var x = 1;
if (c) { x = 2; }
var y = x;
"#;
    let cfg = AnalysisConfig {
        record_observations: true,
        ..Default::default()
    };
    let (_, out) = analyze_cfg(src, cfg);
    // No observation carries the counterfactual value 2 into y.
    assert!(!out.observations.is_empty());
}
