//! The validator must accept everything the real pipeline produces —
//! including the slot-resolution edge cases around `eval` and shadowing
//! — and reject seeded mutations of each invariant.

use mujs_analysis::{validate_program, Violation};
use mujs_ir::ir::{FuncId, FuncKind, Place, Program, StmtKind, TempId};
use mujs_ir::lower::{lower_chunk, lower_program};
use mujs_ir::Sym;
use mujs_syntax::parse;

fn lower(src: &str) -> Program {
    lower_program(&parse(src).unwrap())
}

fn assert_clean(prog: &Program) {
    let violations = validate_program(prog);
    assert!(
        violations.is_empty(),
        "expected a clean program, got: {:?}",
        violations
            .iter()
            .map(|v| v.describe(prog))
            .collect::<Vec<_>>()
    );
}

/// Finds the first statement (depth-first) in `f` matching `pred` and
/// applies `mutate` to it.
fn mutate_stmt(
    prog: &mut Program,
    func: FuncId,
    pred: impl Fn(&StmtKind) -> bool,
    mutate: impl Fn(&mut StmtKind),
) {
    let f = prog.func_mut(func);
    let mut done = false;
    fn walk(
        block: &mut [mujs_ir::Stmt],
        pred: &impl Fn(&StmtKind) -> bool,
        mutate: &impl Fn(&mut StmtKind),
        done: &mut bool,
    ) {
        for s in block {
            if *done {
                return;
            }
            if pred(&s.kind) {
                mutate(&mut s.kind);
                *done = true;
                return;
            }
            match &mut s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, pred, mutate, done);
                    walk(else_blk, pred, mutate, done);
                }
                StmtKind::Loop {
                    cond_blk,
                    body,
                    update,
                    ..
                } => {
                    walk(cond_blk, pred, mutate, done);
                    walk(body, pred, mutate, done);
                    walk(update, pred, mutate, done);
                }
                StmtKind::Breakable { body } => walk(body, pred, mutate, done),
                StmtKind::Try {
                    block,
                    catch,
                    finally,
                } => {
                    walk(block, pred, mutate, done);
                    if let Some((_, b)) = catch {
                        walk(b, pred, mutate, done);
                    }
                    if let Some(b) = finally {
                        walk(b, pred, mutate, done);
                    }
                }
                _ => {}
            }
        }
    }
    walk(&mut f.body, &pred, &mutate, &mut done);
    assert!(done, "mutation target not found");
}

fn func_named(p: &Program, name: &str) -> FuncId {
    p.funcs
        .iter()
        .find(|f| f.name.is_some_and(|s| p.interner.resolve(s) == name))
        .unwrap()
        .id
}

fn first_slot_stmt(p: &Program, func: FuncId) -> bool {
    let mut found = false;
    Program::walk_block(&p.func(func).body, &mut |s| {
        s.kind.for_each_place(&mut |pl| {
            if matches!(pl, Place::Slot { .. }) {
                found = true;
            }
        });
    });
    found
}

// ---------------------------------------------------------------------
// Acceptance: everything the real pipeline produces is clean.
// ---------------------------------------------------------------------

#[test]
fn accepts_plain_programs() {
    assert_clean(&lower("var x = 1; function f(a) { return a + x; } f(2);"));
}

#[test]
fn accepts_control_flow_and_try() {
    assert_clean(&lower(
        "function f(n) { var acc = 0; \
         for (var i = 0; i < n; i = i + 1) { \
           try { if (i % 2) { continue; } acc = acc + i; } \
           catch (e) { break; } finally { acc = acc + 0; } } \
         return acc; } f(10);",
    ));
}

#[test]
fn accepts_direct_eval_scopes() {
    // The definer's own eval keeps its hop-0 slots; a nested function
    // below the definer loses resolution — both shapes must validate.
    assert_clean(&lower(
        "function f() { var x = 1; eval(\"x = 2\"); return x; } \
         function g() { var y = 1; function h() { eval(\"y\"); return y; } return h(); }",
    ));
}

#[test]
fn accepts_shadowing_across_hops() {
    assert_clean(&lower(
        "function a(v) { function b(v) { function c() { return v; } return c; } \
         return b(v); } a(1);",
    ));
}

#[test]
fn accepts_catch_poisoned_closures() {
    assert_clean(&lower(
        "function f() { var c = 1; try { g(); } catch (c) { \
         var k = function q() { return c; }; } return c; }",
    ));
}

#[test]
fn accepts_runtime_lowered_chunks() {
    // Chunks lowered into an existing program, as the interpreters do
    // for direct eval at runtime.
    let mut p = lower("function host() { var x = 1; return x; }");
    let host = func_named(&p, "host");
    let chunk = parse("var mk = function inner(a) { return a + x; }; mk(1);").unwrap();
    lower_chunk(&mut p, &chunk, FuncKind::EvalChunk, Some(host));
    assert_clean(&p);
}

#[test]
fn accepts_deeply_nested_functions() {
    // Deep lexical nesting exercises with_parser_stack and long hop
    // chains.
    let mut src = String::from("function f0() { var v0 = 0; ");
    for i in 1..40 {
        src.push_str(&format!("function f{i}() {{ var v{i} = v{} + 1; ", i - 1));
    }
    src.push_str("var leaf = v0;");
    for _ in 0..40 {
        src.push_str(" }");
    }
    let p = mujs_syntax::with_parser_stack(|| lower(&src));
    assert_clean(&p);
}

// ---------------------------------------------------------------------
// Rejection: seeded mutations of each invariant are caught.
// ---------------------------------------------------------------------

/// Rewrites the first `Place::Slot` found anywhere in `func`'s body.
fn mutate_first_slot(prog: &mut Program, func: FuncId, f: impl Fn(&mut u32, &mut u32)) {
    let done = std::cell::Cell::new(false);
    mutate_stmt(
        prog,
        func,
        |k| {
            let mut has = false;
            k.for_each_place(&mut |p| has |= matches!(p, Place::Slot { .. }));
            has
        },
        |k| {
            k.for_each_place_mut(&mut |p| {
                if done.get() {
                    return;
                }
                if let Place::Slot { hops, slot, .. } = p {
                    f(hops, slot);
                    done.set(true);
                }
            });
        },
    );
}

#[test]
fn rejects_out_of_range_slot_index() {
    let mut p = lower("function f(a) { return a; }");
    let f = func_named(&p, "f");
    assert!(first_slot_stmt(&p, f));
    mutate_first_slot(&mut p, f, |_, slot| *slot = 99);
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::SlotOutOfRange { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_absurd_hop_count() {
    let mut p = lower("function f(a) { return a; }");
    let f = func_named(&p, "f");
    mutate_first_slot(&mut p, f, |hops, _| *hops = 1_000_000);
    let v = validate_program(&p);
    // The walk trips on the very first frame (the name is declared
    // right there, so any hops > 0 is shadowed) — and could never
    // complete anyway.
    assert!(
        v.iter().any(|x| matches!(
            x,
            Violation::SlotBrokenChain { .. }
                | Violation::SlotNonFunctionFrame { .. }
                | Violation::SlotShadowed { .. }
        )),
        "got {v:?}"
    );
}

#[test]
fn rejects_uninterned_sym() {
    let mut p = lower("function f(a) { return a; }");
    let f = func_named(&p, "f");
    mutate_stmt(
        &mut p,
        f,
        |k| matches!(k, StmtKind::Return { .. }),
        |k| {
            if let StmtKind::Return { arg: Some(pl) } = k {
                *pl = Place::Named(Sym(9999));
            }
        },
    );
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::SymOutOfRange { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_dangling_closure_target() {
    let mut p = lower("var k = function f() { return 1; };");
    let entry = p.entry().unwrap();
    mutate_stmt(
        &mut p,
        entry,
        |k| matches!(k, StmtKind::Closure { .. }),
        |k| {
            if let StmtKind::Closure { func, .. } = k {
                *func = FuncId(999);
            }
        },
    );
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::FuncOutOfRange { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_out_of_range_stmt_id() {
    let mut p = lower("var x = 1;");
    let entry = p.entry().unwrap();
    let f = p.func_mut(entry);
    f.body[0].id = mujs_ir::StmtId(u32::MAX);
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::StmtOutOfRange { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_cleared_eval_flag() {
    let mut p = lower("function f() { var x = 1; eval(\"x\"); }");
    let f = func_named(&p, "f");
    p.func_mut(f).has_direct_eval = false;
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::MissingEvalFlag { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_shuffled_locals_layout() {
    let mut p = lower("function f(a, b) { var c = a + b; return c; }");
    let f = func_named(&p, "f");
    p.func_mut(f).locals.swap(0, 1);
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::LocalsLayoutMismatch { .. })),
        "got {v:?}"
    );
    // The slot places now disagree with the frame too.
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::SlotSymMismatch { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_out_of_range_temp() {
    let mut p = lower("var x = 1 + 2;");
    let entry = p.entry().unwrap();
    let n = p.func(entry).n_temps;
    mutate_stmt(
        &mut p,
        entry,
        |k| {
            matches!(
                k,
                StmtKind::Const {
                    dst: Place::Temp(_),
                    ..
                }
            )
        },
        |k| {
            if let StmtKind::Const { dst, .. } = k {
                *dst = Place::Temp(TempId(n + 7));
            }
        },
    );
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::TempOutOfRange { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_duplicated_stmt_id() {
    let mut p = lower("var x = 1; var y = 2;");
    let entry = p.entry().unwrap();
    let f = p.func_mut(entry);
    let first_id = f.body[0].id;
    f.body[1].id = first_id;
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::DuplicateStmt { .. })),
        "got {v:?}"
    );
}

#[test]
fn rejects_slot_crossing_evalful_frame() {
    // Legitimately resolved capture, then the middle frame grows a fake
    // eval flag: the chain now crosses an eval.
    let mut p = lower("function out() { var x = 1; function mid() { return x; } }");
    let mid = func_named(&p, "mid");
    assert!(first_slot_stmt(&p, mid));
    p.func_mut(mid).has_direct_eval = true;
    let v = validate_program(&p);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::SlotCrossesEval { .. })),
        "got {v:?}"
    );
}
