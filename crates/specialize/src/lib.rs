//! # mujs-specialize
//!
//! The determinacy-fact-driven program specializer of §2.2/§5.1 and the
//! eval eliminator of §2.3/§5.2: branch pruning under determinately-false
//! conditions, dynamic→static property accesses, loop unrolling under
//! determinate iteration bounds, per-context function cloning (≤ 4
//! levels), and replacement of `eval` calls whose argument string is
//! determinate with statically parsed, inlined code.
//!
//! Feed the output program to `mujs-pta` to reproduce the paper's *Spec*
//! configurations.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), mujs_syntax::SyntaxError> {
//! use determinacy::driver::DetHarness;
//! use mujs_specialize::{specialize, SpecConfig};
//! let mut h = DetHarness::from_src("var k = \"a\" + \"b\"; var o = {}; o[k] = 1;")?;
//! let mut out = h.analyze(Default::default());
//! let spec = specialize(&h.program, &out.facts, &mut out.ctxs, &SpecConfig::default());
//! assert_eq!(spec.report.keys_staticized, 1);
//! # Ok(())
//! # }
//! ```

pub mod spec;

pub use spec::{specialize, EvalStatus, SpecConfig, SpecReport, Specialized};
