//! Tokens produced by the lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (decimal or hexadecimal), already parsed to `f64`.
    Num(f64),
    /// String literal with escape sequences resolved.
    Str(String),
    /// Identifier (not a reserved word).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Num(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span and layout information.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
    /// Whether a line terminator occurred between the previous token and
    /// this one. Used for restricted productions and semicolon insertion.
    pub newline_before: bool,
}

macro_rules! keywords {
    ($($name:ident => $text:literal),* $(,)?) => {
        /// Reserved words of the muJS subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = concat!("`", $text, "`")] $name),*
        }

        impl Keyword {
            /// Looks up a keyword from its source text.
            pub fn lookup(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$name),)*
                    _ => None,
                }
            }

            /// The source text of this keyword.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$name => $text,)*
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Var => "var",
    Function => "function",
    Return => "return",
    If => "if",
    Else => "else",
    While => "while",
    Do => "do",
    For => "for",
    In => "in",
    Break => "break",
    Continue => "continue",
    New => "new",
    Delete => "delete",
    Typeof => "typeof",
    Void => "void",
    This => "this",
    Null => "null",
    Undefined => "undefined",
    True => "true",
    False => "false",
    Try => "try",
    Catch => "catch",
    Finally => "finally",
    Throw => "throw",
    Switch => "switch",
    Case => "case",
    Default => "default",
    Instanceof => "instanceof",
}

macro_rules! puncts {
    ($($name:ident => $text:literal),* $(,)?) => {
        /// Punctuators and operators of the muJS subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = concat!("`", $text, "`")] $name),*
        }

        impl Punct {
            /// The source text of this punctuator.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Punct::$name => $text,)*
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

puncts! {
    LBrace => "{",
    RBrace => "}",
    LParen => "(",
    RParen => ")",
    LBracket => "[",
    RBracket => "]",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    Question => "?",
    Colon => ":",
    Assign => "=",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    PercentAssign => "%=",
    AmpAssign => "&=",
    PipeAssign => "|=",
    CaretAssign => "^=",
    ShlAssign => "<<=",
    ShrAssign => ">>=",
    UShrAssign => ">>>=",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    PlusPlus => "++",
    MinusMinus => "--",
    EqEq => "==",
    NotEq => "!=",
    EqEqEq => "===",
    NotEqEq => "!==",
    Lt => "<",
    Gt => ">",
    LtEq => "<=",
    GtEq => ">=",
    AndAnd => "&&",
    OrOr => "||",
    Not => "!",
    Tilde => "~",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    Shl => "<<",
    Shr => ">>",
    UShr => ">>>",
}
