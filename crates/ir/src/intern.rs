//! Global symbol interning.
//!
//! Every identifier and static property key in a lowered [`Program`] is
//! represented as a [`Sym`] — an index into the program's [`Interner`].
//! Comparing and hashing names becomes a `u32` operation, property tables
//! can be scanned without touching string data, and the interpreters only
//! materialize the underlying `Rc<str>` at the edges (fact values, error
//! messages, JSON export), so the exported artifacts are byte-identical
//! to the pre-interning engine.
//!
//! [`Program`]: crate::ir::Program

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An interned name: an index into the owning program's [`Interner`].
///
/// `Sym` is meaningless without the interner that produced it; two syms
/// from *different* programs must never be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Declares the pre-interned well-known names: each gets a `Sym` constant
/// with a fixed index, and [`Interner::new`] seeds them in order so the
/// constants are valid for every interner.
macro_rules! well_known {
    ($(($idx:expr, $konst:ident, $text:literal)),* $(,)?) => {
        impl Sym {
            $(
                #[doc = concat!("The pre-interned name `\"", $text, "\"`.")]
                pub const $konst: Sym = Sym($idx);
            )*
        }

        /// The seed names, in index order.
        const WELL_KNOWN: &[&str] = &[$($text),*];
    };
}

well_known! {
    (0, EMPTY, ""),
    (1, LENGTH, "length"),
    (2, PROTOTYPE, "prototype"),
    (3, CONSTRUCTOR, "constructor"),
    (4, ARGUMENTS, "arguments"),
    (5, NAME, "name"),
    (6, MESSAGE, "message"),
    (7, EVAL, "eval"),
    (8, TO_STRING, "toString"),
    (9, VALUE_OF, "valueOf"),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A bidirectional `name ⇄ Sym` table.
///
/// Owned by [`Program`](crate::ir::Program); lowering interns every
/// identifier it sees, and the machines intern dynamically computed
/// property keys as they arise. Interning is append-only, so a `Sym`
/// never dangles.
#[derive(Debug, Clone)]
pub struct Interner {
    names: Vec<Rc<str>>,
    map: HashMap<Rc<str>, Sym>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// Creates an interner seeded with the well-known names.
    pub fn new() -> Self {
        let mut i = Interner {
            names: Vec::with_capacity(64),
            map: HashMap::with_capacity(64),
        };
        for (idx, text) in WELL_KNOWN.iter().enumerate() {
            let s = i.intern(text);
            debug_assert_eq!(s, Sym(idx as u32));
        }
        i
    }

    /// Interns `text`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&s) = self.map.get(text) {
            return s;
        }
        let rc: Rc<str> = Rc::from(text);
        self.push_new(rc)
    }

    /// Interns an already-shared string without copying its bytes when it
    /// is new.
    pub fn intern_rc(&mut self, text: &Rc<str>) -> Sym {
        if let Some(&s) = self.map.get(&**text) {
            return s;
        }
        self.push_new(text.clone())
    }

    fn push_new(&mut self, rc: Rc<str>) -> Sym {
        let s = Sym(self.names.len() as u32);
        self.names.push(rc.clone());
        self.map.insert(rc, s);
        s
    }

    /// The shared string behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `s` came from a different interner (index out of range).
    pub fn name(&self, s: Sym) -> &Rc<str> {
        &self.names[s.0 as usize]
    }

    /// The text behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `s` came from a different interner (index out of range).
    pub fn resolve(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }

    /// Interns the decimal rendering of `idx` (`0`, `1`, `2`, …) without
    /// allocating a `String` on the lookup path.
    ///
    /// Array-style access desugars to property keys named by element
    /// index, so the interpreters hit this for every element of every
    /// array walk; after the first visit of an index the cost is a stack
    /// buffer format plus one hash lookup.
    pub fn intern_index(&mut self, idx: usize) -> Sym {
        let mut buf = [0u8; 20];
        let mut n = idx;
        let mut at = buf.len();
        loop {
            at -= 1;
            buf[at] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        let text = std::str::from_utf8(&buf[at..]).expect("decimal digits are ASCII");
        self.intern(text)
    }

    /// Looks up a name without interning it.
    pub fn get(&self, text: &str) -> Option<Sym> {
        self.map.get(text).copied()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty (never true: well-known names are
    /// always seeded).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "foo");
    }

    #[test]
    fn well_known_constants_match_seeds() {
        let mut i = Interner::new();
        assert_eq!(i.intern("length"), Sym::LENGTH);
        assert_eq!(i.intern("prototype"), Sym::PROTOTYPE);
        assert_eq!(i.intern("constructor"), Sym::CONSTRUCTOR);
        assert_eq!(i.intern("arguments"), Sym::ARGUMENTS);
        assert_eq!(i.intern("name"), Sym::NAME);
        assert_eq!(i.intern("message"), Sym::MESSAGE);
        assert_eq!(i.intern("eval"), Sym::EVAL);
        assert_eq!(i.intern("toString"), Sym::TO_STRING);
        assert_eq!(i.intern("valueOf"), Sym::VALUE_OF);
        assert_eq!(i.intern(""), Sym::EMPTY);
    }

    #[test]
    fn intern_rc_shares_the_allocation() {
        let mut i = Interner::new();
        let rc: Rc<str> = Rc::from("shared");
        let s = i.intern_rc(&rc);
        assert!(Rc::ptr_eq(i.name(s), &rc));
    }

    #[test]
    fn intern_index_matches_string_interning() {
        let mut i = Interner::new();
        for idx in [0usize, 1, 9, 10, 42, 255, 256, 1000, usize::MAX] {
            assert_eq!(i.intern_index(idx), i.intern(&idx.to_string()));
        }
        // Idempotent, and order-independent with plain interning.
        let mut j = Interner::new();
        let a = j.intern("7");
        assert_eq!(j.intern_index(7), a);
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
    }
}
