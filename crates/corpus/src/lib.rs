//! # mujs-corpus
//!
//! The benchmark corpus for the Table 1 and §5.2 reproductions:
//!
//! * [`jquery_like`] — four generated library versions standing in for
//!   jQuery 1.0–1.3, each engineered to exhibit the trait the paper
//!   attributes that version's result to (accessor-definition loops, DOM
//!   feature detection, lazy initialization, handler storms);
//! * [`evalbench`] — 28 programs (24 runnable) standing in for the Jensen
//!   et al. eval suite, one per reported outcome category;
//! * [`workload`] — parameterized synthetic programs for the Criterion
//!   benches.
//!
//! See `DESIGN.md` §2 for why these substitutions preserve the relevant
//! behavior.

pub mod evalbench;
pub mod jquery_like;
pub mod workload;
