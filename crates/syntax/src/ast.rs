//! Abstract syntax tree for the muJS JavaScript subset.
//!
//! The subset covers the dynamic features the paper's analysis targets:
//! first-class functions and closures, object and array literals, dynamic
//! property accesses (`o[e]`), `new`/`this`/prototypes, `typeof`, `for-in`,
//! `try`/`catch`/`throw`, and `eval` (which is an ordinary identifier at this
//! level and receives its special treatment during lowering).

use crate::span::Span;
use std::fmt;
use std::rc::Rc;

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(Rc<str>),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
}

/// A binary operator (strict and loose equality, arithmetic, relational,
/// bitwise, `in`, and `instanceof`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `in`
    In,
    /// `instanceof`
    Instanceof,
}

impl BinOp {
    /// The operator's source text.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Eq => "==",
            NotEq => "!=",
            StrictEq => "===",
            StrictNotEq => "!==",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
            UShr => ">>>",
            In => "in",
            Instanceof => "instanceof",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `typeof`
    Typeof,
    /// `void`
    Void,
}

impl UnOp {
    /// The operator's source text.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Pos => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Typeof => "typeof",
            UnOp::Void => "void",
        }
    }
}

/// A short-circuiting logical operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogOp {
    /// `&&`
    And,
    /// `||`
    Or,
}

/// A compound-assignment operator (`None` in [`ExprKind::Assign`] means
/// plain `=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `&=`
    BitAnd,
    /// `|=`
    BitOr,
    /// `^=`
    BitXor,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
    /// `>>>=`
    UShr,
}

impl AssignOp {
    /// The underlying binary operator applied by the compound assignment.
    pub fn bin_op(self) -> BinOp {
        match self {
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Div => BinOp::Div,
            AssignOp::Rem => BinOp::Rem,
            AssignOp::BitAnd => BinOp::BitAnd,
            AssignOp::BitOr => BinOp::BitOr,
            AssignOp::BitXor => BinOp::BitXor,
            AssignOp::Shl => BinOp::Shl,
            AssignOp::Shr => BinOp::Shr,
            AssignOp::UShr => BinOp::UShr,
        }
    }
}

/// Property key in a member access: static `o.name` or computed `o[e]`.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberKey {
    /// `o.name`
    Static(Rc<str>),
    /// `o[e]`
    Computed(Box<Expr>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Its source location.
    pub span: Span,
}

impl Expr {
    /// Wraps `kind` with `span`.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// The shape of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A literal value.
    Lit(Lit),
    /// A variable reference.
    Ident(Rc<str>),
    /// `this`.
    This,
    /// `[e1, e2, ...]`
    Array(Vec<Expr>),
    /// `{ k1: v1, ... }`
    Object(Vec<(Rc<str>, Expr)>),
    /// `function name?(params) { body }`
    Function(Rc<Function>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// `delete o.p` / `delete o[e]`.
    Delete(Box<Expr>, MemberKey),
    /// A strict (non-short-circuiting) binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `&&` / `||` with short-circuit evaluation.
    Logical(LogOp, Box<Expr>, Box<Expr>),
    /// Assignment; `None` op means plain `=`.
    Assign(Option<AssignOp>, Box<Expr>, Box<Expr>),
    /// `++x`, `x++`, `--x`, `x--`; the `bool` is `true` for prefix.
    Update(bool, bool, Box<Expr>),
    /// `c ? t : e`
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `f(args)` — when `f` is a member expression, `this` is bound to the
    /// receiver.
    Call(Box<Expr>, Vec<Expr>),
    /// `new F(args)`
    New(Box<Expr>, Vec<Expr>),
    /// `o.p` / `o[e]`
    Member(Box<Expr>, MemberKey),
    /// Comma expression `(a, b, c)`.
    Seq(Vec<Expr>),
}

/// A function definition (declaration or expression).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function's name, if any (`function f() {}` or a named function
    /// expression).
    pub name: Option<Rc<str>>,
    /// Parameter names.
    pub params: Vec<Rc<str>>,
    /// The body's statements.
    pub body: Vec<Stmt>,
    /// Span of the whole function text.
    pub span: Span,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The guard expression, or `None` for `default`.
    pub test: Option<Expr>,
    /// The arm's statements (fall-through is resolved by the parser's
    /// desugaring into `if` chains at lowering time, so `body` here is the
    /// raw statement list).
    pub body: Vec<Stmt>,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's shape.
    pub kind: StmtKind,
    /// Its source location.
    pub span: Span,
}

impl Stmt {
    /// Wraps `kind` with `span`.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// What can initialize the first clause of a `for(;;)` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (var x = e, ...; ...)`
    Var(Vec<(Rc<str>, Option<Expr>)>),
    /// `for (e; ...)`
    Expr(Expr),
}

/// The shape of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `var x = e, y, ...;`
    Var(Vec<(Rc<str>, Option<Expr>)>),
    /// A function declaration (hoisted within its scope).
    FunctionDecl(Rc<Function>),
    /// `if (c) s1 else s2?`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) s`
    While(Expr, Box<Stmt>),
    /// `do s while (c);`
    DoWhile(Box<Stmt>, Expr),
    /// `for (init?; test?; update?) s`
    For {
        /// Loop initializer.
        init: Option<ForInit>,
        /// Loop condition (absent means `true`).
        test: Option<Expr>,
        /// Per-iteration update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (var? x in e) s`
    ForIn {
        /// Whether the loop variable was declared with `var`.
        decl: bool,
        /// The loop variable.
        var: Rc<str>,
        /// The object whose enumerable properties are iterated.
        obj: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `throw e;`
    Throw(Expr),
    /// `try { .. } catch (x) { .. } finally { .. }`
    Try {
        /// The protected block.
        block: Vec<Stmt>,
        /// Catch clause: bound variable and handler body.
        catch: Option<(Rc<str>, Vec<Stmt>)>,
        /// Finally block.
        finally: Option<Vec<Stmt>>,
    },
    /// `switch (e) { case ..: .. default: .. }`
    Switch(Expr, Vec<SwitchCase>),
    /// `{ s* }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// A complete parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Number of statements at the top level.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the program has no top-level statements.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}
