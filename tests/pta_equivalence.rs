//! Solver-equivalence suite: the delta-propagating bitset solver must be
//! observationally identical to the naive reference solver
//! (`mujs_pta::solve_reference`, the pre-optimization algorithm kept
//! verbatim as an executable spec) — and so must the epoch-sharded
//! parallel solver, for every thread count.
//!
//! "Identical" is byte-identical `export_json()` — call graph and full
//! points-to relation — at an unlimited budget, where all solvers reach
//! the same least fixpoint regardless of propagation order, cycle
//! collapsing, or parallel schedule.
//!
//! Every assertion runs a thread-count matrix (default `{1, 2, 8}`;
//! threads = 1 is the sequential delta solver, ≥ 2 the epoch-sharded
//! one). CI narrows or widens the matrix with `PTA_EQ_THREADS`, a
//! comma-separated thread list.

use mujs_pta::{solve, solve_reference, PtaConfig, PtaStatus};

fn thread_matrix() -> Vec<usize> {
    match std::env::var("PTA_EQ_THREADS") {
        Ok(s) => {
            let m: Vec<usize> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!m.is_empty(), "PTA_EQ_THREADS set but empty: {s:?}");
            m
        }
        Err(_) => vec![1, 2, 8],
    }
}

fn assert_equivalent(name: &str, prog: &mujs_ir::Program, cfg: &PtaConfig) {
    let slow = solve_reference(prog, cfg);
    assert_eq!(
        slow.status,
        PtaStatus::Completed,
        "{name}: reference solver starved at unlimited budget"
    );
    let want = slow.export_json();
    for threads in thread_matrix() {
        let fast = solve(
            prog,
            &PtaConfig {
                threads,
                ..cfg.clone()
            },
        );
        assert_eq!(
            fast.status,
            PtaStatus::Completed,
            "{name} [threads={threads}]: delta solver starved at unlimited budget"
        );
        assert_eq!(
            fast.export_json(),
            want,
            "{name} [threads={threads}]: solver disagrees with the reference \
             on call graph or points-to sets"
        );
    }
}

fn unlimited() -> PtaConfig {
    PtaConfig {
        budget: u64::MAX,
        ..Default::default()
    }
}

/// All solvers on every Table 1 corpus version, baseline and
/// determinacy-specialized programs.
#[test]
fn jquery_corpus_baseline_and_specialized_agree() {
    for v in mujs_corpus::jquery_like::all_versions() {
        let mut h = determinacy::DetHarness::from_src(&v.src).expect("corpus parses");
        let out = h.analyze_dom(
            determinacy::AnalysisConfig::default(),
            v.doc.clone(),
            &v.plan,
        );
        let mut ctxs = out.ctxs;
        let spec = mujs_specialize::specialize(
            &h.program,
            &out.facts,
            &mut ctxs,
            &mujs_specialize::SpecConfig::default(),
        );
        assert_equivalent(
            &format!("jquery-{} baseline", v.version),
            &h.program,
            &unlimited(),
        );
        assert_equivalent(
            &format!("jquery-{} specialized", v.version),
            &spec.program,
            &unlimited(),
        );
    }
}

/// All solvers across the §5.2 eval-elimination suite (every runnable
/// benchmark), covering call-heavy and eval-bearing program shapes.
#[test]
fn evalbench_suite_agrees() {
    for b in mujs_corpus::evalbench::all()
        .into_iter()
        .filter(|b| b.runnable)
    {
        let ast = mujs_syntax::parse(&b.src).expect("evalbench parses");
        let prog = mujs_ir::lower_program(&ast);
        assert_equivalent(b.name, &prog, &unlimited());
    }
}

/// Aggressive cycle collapsing (collapse scan after every — or every
/// couple of — new copy edges) must not change observable results for any
/// thread count, including on programs with real copy cycles. In the
/// epoch solver collapse passes run at barriers only, so this also pins
/// that barrier-synchronized merging agrees with the mid-worklist merging
/// of the sequential solver.
#[test]
fn aggressive_collapsing_agrees() {
    let cyclic = r#"
        function mk() { return { tag: mk }; }
        var a = mk(); var b = mk(); var c = mk();
        for (var i = 0; i < 3; i = i + 1) {
            b = a; c = b; a = c;
        }
        var sink = a.tag;
    "#;
    let mut sources: Vec<(String, String)> = vec![("copy-cycle".to_owned(), cyclic.to_owned())];
    sources.extend(mujs_corpus::evalbench::named_sources());
    for scc_interval in [1, 2] {
        let cfg = PtaConfig {
            budget: u64::MAX,
            scc_interval,
            ..Default::default()
        };
        for (name, src) in &sources {
            let ast = mujs_syntax::parse(src).expect("source parses");
            let prog = mujs_ir::lower_program(&ast);
            assert_equivalent(&format!("{name} scc={scc_interval}"), &prog, &cfg);
        }
    }
}

/// The crafted copy cycle really does exercise the merge path: with
/// frequent collapse scans, nodes get merged — in the sequential solver
/// and at the parallel solver's epoch barriers — and the result still
/// matches the reference solver (checked above); this pins that merging
/// occurred under every thread count.
#[test]
fn collapsing_merges_nodes_on_copy_cycles() {
    let src = "var a = {}; var b = a; var c = b; a = c; var d = a;";
    let ast = mujs_syntax::parse(src).expect("parses");
    let prog = mujs_ir::lower_program(&ast);
    for threads in thread_matrix() {
        let cfg = PtaConfig {
            budget: u64::MAX,
            scc_interval: 1,
            threads,
            ..Default::default()
        };
        let r = solve(&prog, &cfg);
        assert_eq!(r.status, PtaStatus::Completed);
        assert!(
            r.stats.nodes_merged > 0,
            "[threads={threads}] expected the a/b/c copy cycle to be collapsed, stats: {:?}",
            r.stats
        );
    }
    let cfg = PtaConfig {
        budget: u64::MAX,
        scc_interval: 1,
        ..Default::default()
    };
    assert_equivalent("merge-pin", &prog, &cfg);
}
