//! The epoch-sharded parallel solver: deterministic for every thread
//! count, byte-identical to the sequential solvers.
//!
//! A solve alternates two phases:
//!
//! * **Barrier (sequential).** All *structural* work happens here, on the
//!   driving thread: constraint generation for newly discovered
//!   functions, pending-constraint application, online Tarjan collapse
//!   when due, full union-find compression, cross-shard message routing,
//!   and partitioning the dirty queue into per-shard worklists (sorted,
//!   so seeding order is canonical).
//! * **Flow (parallel).** Shards cascade their delta worklists over the
//!   frozen graph ([`crate::shard::run_shard`]): sets mutate, structure
//!   does not. A shard touches only the rows of its own canonical-id
//!   range; facts for foreign nodes are buffered as messages delivered at
//!   the next barrier.
//!
//! **Why insertion order is schedule-independent.** Work is split into
//! [`crate::PtaConfig::shards`] shard tasks — a configured count,
//! independent of the thread count — and threads only *execute* shard
//! tasks (stealing indices off an atomic counter). Within an epoch no
//! shard can observe another: all shared columns a shard reads
//! (`parent`, `edges`, pending-ness, foreign messages) are frozen at the
//! barrier, and everything it writes is owner-private until the next
//! barrier. Each shard's insertion sequence is therefore a pure function
//! of the barrier state, and the barrier concatenates per-shard results
//! in fixed shard order — so the global outcome is identical whether
//! shards run on one thread or sixteen.
//!
//! **Provenance.** With [`crate::PtaConfig::provenance`] on, this driver
//! runs even at `threads: 1` (see `solve`'s dispatch): blame is assigned
//! in insertion order, and only the epoch schedule's insertion order is
//! thread-count-invariant. Blame rows ride the same move-out/move-back
//! column protocol as the sets, cross-shard blame travels precomputed in
//! each message, no flow phase ever interns a tag, and budget rollback
//! drops the blame entries of every rolled-back tuple — so
//! `export_blame_json` is byte-identical for every thread count.
//!
//! **Budget exactness.** Shards flow without a limit but record every
//! insertion in a word-granular log. At the barrier the epoch's total is
//! reconciled against the remaining budget: an overshoot rolls back an
//! exact log suffix (in reverse shard/causal order), landing on the
//! configured budget to the element — the same check-before-insert
//! semantics as the sequential solver: an exact-budget solve completes,
//! budget−1 truncates.
//!
//! At fixpoint the least solution is unique, so `export_json` is
//! byte-identical to `solve_reference` and the sequential delta solver —
//! the contract `tests/pta_equivalence.rs` pins across a thread matrix.

use crate::pts::{log_entry_count, lowest_set_bits, Pts};
use crate::shard::{run_shard, NodeView, ShardMsg, ShardState};
use crate::solver::{PtaResult, Solver};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Epochs seeding fewer than this many worklist nodes + messages run
/// their shard tasks inline on the driving thread: the task code (and
/// therefore the result) is identical, but tiny programs skip the
/// barrier wakeups entirely.
const INLINE_EPOCH_WORK: usize = 64;

/// Drives `s` to fixpoint (or budget exhaustion) with the epoch-sharded
/// algorithm. Entered when `s.cfg.threads >= 2` or `s.cfg.provenance`
/// (the dispatch in `solve`).
pub(crate) fn solve_epochs(mut s: Solver<'_>) -> PtaResult {
    s.seed_entry();
    let nshards = s.cfg.shards.max(1);
    let workers = s.cfg.threads.max(1).min(nshards);
    let mut shards: Vec<ShardState> = (0..nshards).map(|_| ShardState::new(nshards)).collect();
    let pool = EpochPool::new(workers);
    std::thread::scope(|scope| {
        let mut spawned = false;
        loop {
            // ---- barrier: structural work on the driving thread ----
            while !s.exhausted {
                let Some(f) = s.func_queue.pop_front() else {
                    break;
                };
                s.gen_function(f);
            }
            if s.exhausted {
                break;
            }
            if s.edges_since_scc >= s.cfg.scc_interval {
                s.edges_since_scc = 0;
                s.collapse_cycles();
            }
            let in_flight: usize = shards
                .iter()
                .map(|sh| sh.outbox.iter().map(Vec::len).sum::<usize>())
                .sum();
            if s.dirty.is_empty() && in_flight == 0 {
                break; // func_queue already drained: fixpoint
            }
            // Full path compression: shard ownership and the read-only
            // one-hop `find` of the flow phase both assume it.
            let n = s.nodes.len();
            for i in 0..n as u32 {
                let r = s.find(i);
                s.parent[i as usize] = r;
            }
            let chunk = n.div_ceil(nshards).max(1) as u32;
            // Route last epoch's outboxes in fixed (source, destination)
            // order; targets re-canonicalize through the fresh parent
            // table (a collapse above may have merged them).
            let mut routed: Vec<Vec<ShardMsg>> = (0..nshards).map(|_| Vec::new()).collect();
            for sh in &mut shards {
                for dest_box in &mut sh.outbox {
                    for mut m in dest_box.drain(..) {
                        m.target = s.parent[m.target as usize];
                        routed[(m.target / chunk) as usize].push(m);
                    }
                }
            }
            let mut epoch_work = 0usize;
            for (sh, inbox) in shards.iter_mut().zip(routed) {
                epoch_work += inbox.len();
                sh.inbox = inbox;
            }
            // Partition the dirty queue into per-shard worklists, sorted
            // ascending: the queue's arrival order depends on barrier
            // internals only, but sorting makes the seed order obviously
            // canonical.
            let mut candidates: Vec<u32> = Vec::new();
            while let Some(d) = s.dirty.pop_front() {
                s.on_dirty[d as usize] = false;
                let r = s.parent[d as usize];
                if !s.delta[r as usize].is_empty() {
                    candidates.push(r);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            epoch_work += candidates.len();
            for &r in &candidates {
                s.on_dirty[r as usize] = true;
                shards[(r / chunk) as usize].worklist.push_back(r);
            }
            let has_pending: Vec<bool> = s.pending.iter().map(|p| !p.is_empty()).collect();
            // ---- flow phase: sets mutate, structure is frozen ----
            // The columns move out of the solver for the phase: the view's
            // raw pointers target locals the driver provably does not
            // touch until every shard task has finished.
            let mut old = std::mem::take(&mut s.old);
            let mut delta = std::mem::take(&mut s.delta);
            let mut on_dirty = std::mem::take(&mut s.on_dirty);
            let parent = std::mem::take(&mut s.parent);
            let edges = std::mem::take(&mut s.edges);
            let prov_on = s.prov.is_some();
            let (mut blame_col, stamp_col) = match s.prov.as_mut() {
                Some(p) => (std::mem::take(&mut p.blame), std::mem::take(&mut p.stamp)),
                None => (Vec::new(), Vec::new()),
            };
            let view = NodeView {
                old: old.as_mut_ptr(),
                delta: delta.as_mut_ptr(),
                on_dirty: on_dirty.as_mut_ptr(),
                parent: parent.as_ptr(),
                edges: edges.as_ptr(),
                has_pending: has_pending.as_ptr(),
                blame: blame_col.as_mut_ptr(),
                stamp: stamp_col.as_ptr(),
                prov: prov_on,
                chunk,
                n,
            };
            if epoch_work < INLINE_EPOCH_WORK {
                for (i, sh) in shards.iter_mut().enumerate() {
                    // SAFETY: sequential execution of the shard tasks —
                    // exclusive access to everything the view targets.
                    unsafe { run_shard(&view, sh, i) };
                }
            } else {
                if !spawned {
                    pool.spawn(scope);
                    spawned = true;
                }
                pool.run_epoch(view, &mut shards);
            }
            s.old = old;
            s.delta = delta;
            s.on_dirty = on_dirty;
            s.parent = parent;
            s.edges = edges;
            if let Some(p) = s.prov.as_mut() {
                p.blame = blame_col;
                p.stamp = stamp_col;
            }
            // ---- reconcile the epoch against the budget ----
            let total: u64 = shards.iter().map(|sh| sh.added).sum();
            let remaining = s.cfg.budget - s.stats.propagations;
            if total > remaining {
                rollback(&mut s, &shards, remaining);
                s.stats.propagations = s.cfg.budget;
                s.exhausted = true;
                break;
            }
            s.stats.propagations += total;
            for sh in &mut shards {
                sh.added = 0;
                sh.log.clear();
            }
            // ---- apply pendings to the epoch's committed deltas ----
            // (Shard, commit) order mirrors the sequential solver's
            // flow-then-apply per processed node; `apply_pending` is
            // idempotent, so one-epoch lag never double-counts.
            'commits: for sh in &mut shards {
                let commits = std::mem::take(&mut sh.commits);
                for (node, d) in commits {
                    apply_commit(&mut s, node, &d);
                    if s.exhausted {
                        break 'commits;
                    }
                }
            }
            if s.exhausted {
                break;
            }
        }
        pool.shutdown();
    });
    s.finish()
}

/// Applies node `n`'s pending constraints to the objects of its committed
/// delta `d` — the barrier half of the sequential solver's `process`.
fn apply_commit(s: &mut Solver<'_>, n: u32, d: &Pts) {
    let n_pending = s.pending[n as usize].len();
    for i in 0..n_pending {
        let p = s.pending[n as usize][i].clone();
        for oid in d.iter() {
            if s.exhausted {
                return;
            }
            let o = s.objs[oid as usize].clone();
            s.apply_pending(&p, &o);
        }
    }
}

/// Truncates the epoch's insertions to exactly `keep` facts: walks the
/// concatenated per-shard logs in order, keeping the first `keep`
/// insertions and clearing everything after (each log entry's bits live
/// in the node's `delta`, or in `old` if the node was processed after the
/// insertion). Log order respects shard-local causality and cross-shard
/// effects are deferred to the next epoch (and dropped here before they
/// are ever counted), so any shard concatenation order is consistent;
/// fixed shard order makes it deterministic. Under provenance, blame
/// entries of rolled-back tuples are dropped too — an entry for a logged
/// bit was necessarily created by this epoch (the tuple's insertion was
/// its first), so the removal restores the pre-epoch blame exactly.
fn rollback(s: &mut Solver<'_>, shards: &[ShardState], mut keep: u64) {
    for sh in shards {
        for e in &sh.log {
            let c = log_entry_count(e);
            if keep >= c {
                keep -= c;
                continue;
            }
            let kept = lowest_set_bits(e.bits, keep as u32);
            keep = 0;
            let drop_bits = e.bits & !kept;
            let node = e.node as usize;
            let hit = s.delta[node].clear_bits(e.word, drop_bits);
            let rest = drop_bits & !hit;
            if rest != 0 {
                let cleared = s.old[node].clear_bits(e.word, rest);
                debug_assert_eq!(cleared, rest, "logged fact missing at rollback");
            }
            if let Some(p) = s.prov.as_mut() {
                let mut bits = drop_bits;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    p.blame[node].remove(&(e.word * 64 + b));
                }
            }
        }
    }
}

/// The epoch's unit of scheduling, published to the workers.
#[derive(Clone, Copy)]
struct Job {
    view: NodeView,
    shards: *mut ShardState,
    count: usize,
}

// SAFETY: the raw pointers are only dereferenced under the pool's
// claim-one-index-per-shard discipline while the driver waits.
unsafe impl Send for Job {}

struct Ctrl {
    epoch: u64,
    job: Option<Job>,
    active: usize,
    panicked: bool,
    shutdown: bool,
}

/// A persistent pool of shard workers, following the `mujs-jobs` pool
/// idiom (`std::thread` + mutex/condvar): workers park between epochs,
/// wake on a generation bump, steal shard indices off a shared atomic
/// counter, and signal the driver when the last one finishes. Spawning
/// per epoch would cost more than many epochs' worth of flow work.
struct EpochPool {
    workers: usize,
    ctrl: Mutex<Ctrl>,
    start: Condvar,
    done: Condvar,
    next: AtomicUsize,
}

impl EpochPool {
    fn new(workers: usize) -> Self {
        EpochPool {
            workers,
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        }
    }

    fn spawn<'scope>(&'scope self, scope: &'scope std::thread::Scope<'scope, '_>) {
        for w in 0..self.workers {
            std::thread::Builder::new()
                .name(format!("mujs-pta-shard-{w}"))
                .spawn_scoped(scope, move || self.worker())
                .expect("spawn shard worker");
        }
    }

    fn worker(&self) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut g = self.ctrl.lock().unwrap();
                loop {
                    if g.shutdown {
                        return;
                    }
                    if g.epoch > seen {
                        seen = g.epoch;
                        break g.job.expect("armed epoch carries a job");
                    }
                    g = self.start.wait(g).unwrap();
                }
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                let i = self.next.fetch_add(1, Ordering::SeqCst);
                if i >= job.count {
                    break;
                }
                // SAFETY: `fetch_add` hands index `i` to exactly one
                // worker, so this worker has exclusive access to shard
                // `i`'s state and owned rows for the rest of the epoch.
                unsafe { run_shard(&job.view, &mut *job.shards.add(i), i) };
            }));
            let mut g = self.ctrl.lock().unwrap();
            if result.is_err() {
                g.panicked = true;
            }
            g.active -= 1;
            if g.active == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Publishes one epoch's job and blocks until every shard task
    /// completed. Panics (after releasing the workers) if a worker
    /// panicked — solver state is unreliable past that point.
    fn run_epoch(&self, view: NodeView, shards: &mut [ShardState]) {
        {
            let mut g = self.ctrl.lock().unwrap();
            self.next.store(0, Ordering::SeqCst);
            g.job = Some(Job {
                view,
                shards: shards.as_mut_ptr(),
                count: shards.len(),
            });
            g.active = self.workers;
            g.panicked = false;
            g.epoch += 1;
            self.start.notify_all();
        }
        let mut g = self.ctrl.lock().unwrap();
        while g.active > 0 {
            g = self.done.wait(g).unwrap();
        }
        g.job = None;
        if g.panicked {
            g.shutdown = true;
            self.start.notify_all();
            drop(g);
            panic!("a PTA shard worker panicked");
        }
    }

    fn shutdown(&self) {
        let mut g = self.ctrl.lock().unwrap();
        g.shutdown = true;
        self.start.notify_all();
    }
}
