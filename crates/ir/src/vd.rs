//! Static write domains — the `vd(s)` function of the paper (§3.1).
//!
//! `vd(s)` is the set of variables that a statement list *may* assign,
//! excluding assignments inside nested functions (callees cannot write
//! their caller's locals). The instrumented semantics uses it in rule
//! (ĈNTRABORT): when counterfactual execution is cut off, every variable
//! in `vd` of the unexecuted branch is conservatively marked indeterminate.
//!
//! Heap effects (`pd`) cannot be bounded statically — a branch may call
//! arbitrary functions — which is exactly why (ĈNTRABORT) also flushes the
//! heap.

use crate::ir::{Place, StmtKind};
use std::collections::HashSet;

/// The statically computed write domain of a block.
#[derive(Debug, Clone, Default)]
pub struct WriteDomain {
    /// Places that may be assigned.
    pub places: HashSet<Place>,
    /// Whether the block contains a *direct* `eval`, which can declare and
    /// assign variables invisible to this analysis. Consumers must treat
    /// the entire scope chain as written when this is set.
    pub contains_eval: bool,
}

/// Computes the write domain of `block` (without descending into nested
/// functions — closures created here execute elsewhere).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// use mujs_ir::ir::Place;
/// let ast = mujs_syntax::parse("var x; if (c) { x = 1; } else { y = 2; }")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// let wd = mujs_ir::vd::write_domain(&prog.func(prog.entry().unwrap()).body);
/// assert!(wd.places.contains(&Place::Named("x".into())));
/// assert!(wd.places.contains(&Place::Named("y".into())));
/// # Ok(())
/// # }
/// ```
pub fn write_domain(block: &[crate::ir::Stmt]) -> WriteDomain {
    let mut wd = WriteDomain::default();
    collect(block, &mut wd);
    wd
}

fn collect(block: &[crate::ir::Stmt], wd: &mut WriteDomain) {
    for s in block {
        match &s.kind {
            StmtKind::Const { dst, .. }
            | StmtKind::Copy { dst, .. }
            | StmtKind::Closure { dst, .. }
            | StmtKind::NewObject { dst, .. }
            | StmtKind::GetProp { dst, .. }
            | StmtKind::DeleteProp { dst, .. }
            | StmtKind::BinOp { dst, .. }
            | StmtKind::UnOp { dst, .. }
            | StmtKind::Call { dst, .. }
            | StmtKind::New { dst, .. }
            | StmtKind::LoadThis { dst }
            | StmtKind::TypeofName { dst, .. }
            | StmtKind::HasProp { dst, .. }
            | StmtKind::InstanceOf { dst, .. }
            | StmtKind::EnumProps { dst, .. } => {
                wd.places.insert(dst.clone());
            }
            StmtKind::Eval { dst, .. } => {
                wd.places.insert(dst.clone());
                wd.contains_eval = true;
            }
            StmtKind::SetProp { .. } => {}
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect(then_blk, wd);
                collect(else_blk, wd);
            }
            StmtKind::Loop {
                cond_blk,
                body,
                update,
                ..
            } => {
                collect(cond_blk, wd);
                collect(body, wd);
                collect(update, wd);
            }
            StmtKind::Breakable { body } => collect(body, wd),
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                collect(block, wd);
                if let Some((name, b)) = catch {
                    wd.places.insert(Place::Named(name.clone()));
                    collect(b, wd);
                }
                if let Some(b) = finally {
                    collect(b, wd);
                }
            }
            StmtKind::Return { .. }
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Throw { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;
    use std::rc::Rc;

    fn wd_of(src: &str) -> WriteDomain {
        let prog = lower_program(&parse(src).unwrap());
        write_domain(&prog.func(prog.entry().unwrap()).body)
    }

    fn has_named(wd: &WriteDomain, name: &str) -> bool {
        wd.places.contains(&Place::Named(Rc::from(name)))
    }

    #[test]
    fn includes_writes_in_all_branches() {
        let wd = wd_of("if (c) { a = 1; } else { while (d) { b = 2; } }");
        assert!(has_named(&wd, "a"));
        assert!(has_named(&wd, "b"));
    }

    #[test]
    fn excludes_nested_function_writes() {
        let wd = wd_of("var f = function() { hidden = 1; };");
        assert!(!has_named(&wd, "hidden"));
        assert!(has_named(&wd, "f"));
    }

    #[test]
    fn heap_writes_are_not_variable_writes() {
        let wd = wd_of("o.p = 1;");
        assert!(!has_named(&wd, "o"));
        assert!(!has_named(&wd, "p"));
    }

    #[test]
    fn catch_variable_is_written() {
        let wd = wd_of("try { f(); } catch (e) { g(); }");
        assert!(has_named(&wd, "e"));
    }

    #[test]
    fn direct_eval_is_flagged() {
        assert!(wd_of("eval(s);").contains_eval);
        assert!(!wd_of("f(s);").contains_eval);
    }
}
