//! Primitive coercions and operators — the `J⊕K` functions of the paper's
//! Figure 8, shared verbatim by the concrete and instrumented machines so
//! that both compute identical primitive results.
//!
//! Per §4 of the paper, implicit `toString`/`valueOf` conversions of
//! objects are *not* modeled: coercing an object to a number or string
//! yields an error, surfaced by the machines as a thrown `TypeError`.

use crate::values::Value;
use mujs_ir::{BinOp, UnOp};
use std::rc::Rc;

/// Why a primitive operation could not be carried out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoerceError {
    /// An object flowed into a context requiring a primitive (the paper's
    /// prototype does not model implicit conversions either).
    ObjectToPrimitive,
}

/// `ToBoolean`.
pub fn to_boolean(v: &Value) -> bool {
    match v {
        Value::Undefined | Value::Null => false,
        Value::Bool(b) => *b,
        Value::Num(n) => *n != 0.0 && !n.is_nan(),
        Value::Str(s) => !s.is_empty(),
        Value::Object(_) => true,
    }
}

/// `ToNumber` for non-object values.
///
/// # Errors
///
/// [`CoerceError::ObjectToPrimitive`] when given an object.
pub fn to_number(v: &Value) -> Result<f64, CoerceError> {
    match v {
        Value::Undefined => Ok(f64::NAN),
        Value::Null => Ok(0.0),
        Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
        Value::Num(n) => Ok(*n),
        Value::Str(s) => Ok(str_to_number(s)),
        Value::Object(_) => Err(CoerceError::ObjectToPrimitive),
    }
}

/// String → number following JS rules for the common cases.
pub fn str_to_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return 0.0;
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| v as f64)
            .unwrap_or(f64::NAN);
    }
    if t == "Infinity" || t == "+Infinity" {
        return f64::INFINITY;
    }
    if t == "-Infinity" {
        return f64::NEG_INFINITY;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// `ToString` for non-object values.
///
/// # Errors
///
/// [`CoerceError::ObjectToPrimitive`] when given an object.
pub fn to_string(v: &Value) -> Result<Rc<str>, CoerceError> {
    match v {
        Value::Undefined => Ok(Rc::from("undefined")),
        Value::Null => Ok(Rc::from("null")),
        Value::Bool(b) => Ok(Rc::from(if *b { "true" } else { "false" })),
        Value::Num(n) => Ok(Rc::from(mujs_syntax::pretty::num_to_str(*n).as_str())),
        Value::Str(s) => Ok(s.clone()),
        Value::Object(_) => Err(CoerceError::ObjectToPrimitive),
    }
}

/// `ToInt32` (for bitwise operators).
pub fn to_int32(n: f64) -> i32 {
    if !n.is_finite() || n == 0.0 {
        return 0;
    }
    let m = n.trunc() as i64;
    (m & 0xffff_ffff) as u32 as i32
}

/// `ToUint32` (for `>>>`).
pub fn to_uint32(n: f64) -> u32 {
    to_int32(n) as u32
}

/// Strict equality (`===`).
pub fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x == y, // NaN != NaN, -0 == 0
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Object(x), Value::Object(y)) => x == y,
        _ => false,
    }
}

/// Loose equality (`==`), without object-to-primitive coercion (an object
/// is `==` only to itself).
pub fn loose_eq(a: &Value, b: &Value) -> Result<bool, CoerceError> {
    use Value::*;
    Ok(match (a, b) {
        (Undefined | Null, Undefined | Null) => true,
        (Num(_), Num(_))
        | (Str(_), Str(_))
        | (Bool(_), Bool(_))
        | (Object(_), Object(_))
        | (Undefined | Null, _)
        | (_, Undefined | Null) => strict_eq(a, b),
        (Num(x), Str(s)) => *x == str_to_number(s),
        (Str(s), Num(y)) => str_to_number(s) == *y,
        (Bool(x), _) => {
            let n = if *x { 1.0 } else { 0.0 };
            return loose_eq(&Num(n), b);
        }
        (_, Bool(y)) => {
            let n = if *y { 1.0 } else { 0.0 };
            return loose_eq(a, &Num(n));
        }
        // Object vs number/string would need ToPrimitive.
        (Object(_), _) | (_, Object(_)) => return Err(CoerceError::ObjectToPrimitive),
    })
}

/// Evaluates a binary primitive operator. Objects are only legal for the
/// equality operators.
///
/// # Errors
///
/// [`CoerceError::ObjectToPrimitive`] when an object reaches an operator
/// that needs a primitive.
pub fn bin_op(op: BinOp, a: &Value, b: &Value) -> Result<Value, CoerceError> {
    use BinOp::*;
    Ok(match op {
        Add => match (a, b) {
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                let sa = to_string(a)?;
                let sb = to_string(b)?;
                let mut s = String::with_capacity(sa.len() + sb.len());
                s.push_str(&sa);
                s.push_str(&sb);
                Value::Str(Rc::from(s.as_str()))
            }
            _ => Value::Num(to_number(a)? + to_number(b)?),
        },
        Sub => Value::Num(to_number(a)? - to_number(b)?),
        Mul => Value::Num(to_number(a)? * to_number(b)?),
        Div => Value::Num(to_number(a)? / to_number(b)?),
        Rem => Value::Num(to_number(a)? % to_number(b)?),
        Eq => Value::Bool(loose_eq(a, b)?),
        NotEq => Value::Bool(!loose_eq(a, b)?),
        StrictEq => Value::Bool(strict_eq(a, b)),
        StrictNotEq => Value::Bool(!strict_eq(a, b)),
        Lt | LtEq | Gt | GtEq => {
            let r = match (a, b) {
                (Value::Str(x), Value::Str(y)) => match op {
                    Lt => x < y,
                    LtEq => x <= y,
                    Gt => x > y,
                    GtEq => x >= y,
                    _ => unreachable!(),
                },
                _ => {
                    let x = to_number(a)?;
                    let y = to_number(b)?;
                    match op {
                        Lt => x < y,
                        LtEq => x <= y,
                        Gt => x > y,
                        GtEq => x >= y,
                        _ => unreachable!(),
                    }
                }
            };
            Value::Bool(r)
        }
        BitAnd => Value::Num((to_int32(to_number(a)?) & to_int32(to_number(b)?)) as f64),
        BitOr => Value::Num((to_int32(to_number(a)?) | to_int32(to_number(b)?)) as f64),
        BitXor => Value::Num((to_int32(to_number(a)?) ^ to_int32(to_number(b)?)) as f64),
        Shl => {
            Value::Num((to_int32(to_number(a)?).wrapping_shl(to_uint32(to_number(b)?) & 31)) as f64)
        }
        Shr => {
            Value::Num((to_int32(to_number(a)?).wrapping_shr(to_uint32(to_number(b)?) & 31)) as f64)
        }
        UShr => Value::Num(
            (to_uint32(to_number(a)?).wrapping_shr(to_uint32(to_number(b)?) & 31)) as f64,
        ),
    })
}

/// Evaluates a unary primitive operator. `typeof` needs the object class,
/// so the machines pass `typeof_override` for objects (`"function"` for
/// callables).
///
/// # Errors
///
/// [`CoerceError::ObjectToPrimitive`] for numeric operators on objects.
pub fn un_op(
    op: UnOp,
    v: &Value,
    typeof_override: Option<&'static str>,
) -> Result<Value, CoerceError> {
    Ok(match op {
        UnOp::Neg => Value::Num(-to_number(v)?),
        UnOp::Pos => Value::Num(to_number(v)?),
        UnOp::Not => Value::Bool(!to_boolean(v)),
        UnOp::BitNot => Value::Num(!to_int32(to_number(v)?) as f64),
        UnOp::Typeof => {
            let s = match v {
                Value::Undefined => "undefined",
                Value::Null => "object",
                Value::Bool(_) => "boolean",
                Value::Num(_) => "number",
                Value::Str(_) => "string",
                Value::Object(_) => typeof_override.unwrap_or("object"),
            };
            Value::Str(Rc::from(s))
        }
        UnOp::Void => Value::Undefined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::ObjId;

    #[test]
    fn boolean_coercion_table() {
        assert!(!to_boolean(&Value::Undefined));
        assert!(!to_boolean(&Value::Null));
        assert!(!to_boolean(&Value::Num(0.0)));
        assert!(!to_boolean(&Value::Num(f64::NAN)));
        assert!(!to_boolean(&Value::Str(Rc::from(""))));
        assert!(to_boolean(&Value::Num(31.4)));
        assert!(to_boolean(&Value::Str(Rc::from("0"))));
        assert!(to_boolean(&Value::Object(ObjId(0))));
    }

    #[test]
    fn string_to_number_cases() {
        assert_eq!(str_to_number("42"), 42.0);
        assert_eq!(str_to_number("  3.5 "), 3.5);
        assert_eq!(str_to_number(""), 0.0);
        assert_eq!(str_to_number("0x10"), 16.0);
        assert!(str_to_number("abc").is_nan());
    }

    #[test]
    fn add_concatenates_with_strings() {
        let r = bin_op(BinOp::Add, &"get".into(), &"Width".into()).unwrap();
        assert_eq!(r, Value::Str(Rc::from("getWidth")));
        let r = bin_op(BinOp::Add, &Value::Num(1.0), &"2".into()).unwrap();
        assert_eq!(r, Value::Str(Rc::from("12")));
        let r = bin_op(BinOp::Add, &Value::Num(1.0), &Value::Num(2.0)).unwrap();
        assert_eq!(r, Value::Num(3.0));
    }

    #[test]
    fn comparison_on_strings_is_lexicographic() {
        let r = bin_op(BinOp::Lt, &"abc".into(), &"abd".into()).unwrap();
        assert_eq!(r, Value::Bool(true));
        let r = bin_op(BinOp::Lt, &"10".into(), &Value::Num(9.0)).unwrap();
        assert_eq!(r, Value::Bool(false)); // numeric comparison
    }

    #[test]
    fn loose_and_strict_equality_disagree_across_types() {
        assert!(loose_eq(&Value::Num(1.0), &"1".into()).unwrap());
        assert!(!strict_eq(&Value::Num(1.0), &"1".into()));
        assert!(loose_eq(&Value::Null, &Value::Undefined).unwrap());
        assert!(!strict_eq(&Value::Null, &Value::Undefined));
        assert!(!loose_eq(&Value::Num(f64::NAN), &Value::Num(f64::NAN)).unwrap());
    }

    #[test]
    fn bitwise_ops_use_int32() {
        assert_eq!(
            bin_op(BinOp::BitOr, &Value::Num(2.5), &Value::Num(1.0)).unwrap(),
            Value::Num(3.0)
        );
        assert_eq!(
            bin_op(BinOp::UShr, &Value::Num(-1.0), &Value::Num(0.0)).unwrap(),
            Value::Num(4294967295.0)
        );
    }

    #[test]
    fn typeof_strings() {
        assert_eq!(
            un_op(UnOp::Typeof, &Value::Object(ObjId(0)), Some("function")).unwrap(),
            Value::Str(Rc::from("function"))
        );
        assert_eq!(
            un_op(UnOp::Typeof, &Value::Null, None).unwrap(),
            Value::Str(Rc::from("object"))
        );
    }

    #[test]
    fn objects_refuse_numeric_coercion() {
        let o = Value::Object(ObjId(1));
        assert!(bin_op(BinOp::Sub, &o, &Value::Num(1.0)).is_err());
        assert_eq!(bin_op(BinOp::StrictEq, &o, &o).unwrap(), Value::Bool(true));
    }
}
