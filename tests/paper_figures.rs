//! Integration tests reproducing the paper's worked figures end to end
//! (Figure 1, 2, 3, 4), spanning frontend → dynamic analysis →
//! specializer → pointer analysis → concrete re-execution.

use determinacy::{AnalysisConfig, DetHarness, Fact, FactKind, FactValue};
use mujs_interp::{Interp, InterpOptions};
use mujs_ir::ir::StmtKind;
use mujs_ir::Program;
use mujs_specialize::{specialize, SpecConfig};

fn analyze(src: &str) -> (DetHarness, determinacy::AnalysisOutcome) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let out = h.analyze(AnalysisConfig::default());
    (h, out)
}

fn run_program(prog: &Program) -> Vec<String> {
    let mut p = prog.clone();
    let mut interp = Interp::new(&mut p, InterpOptions::default());
    interp.run().expect("program runs");
    interp.output.clone()
}

/// Facts rendered `J <line> K <ctx> = <value>` for a source line.
fn rendered_facts_at_line(
    h: &DetHarness,
    out: &determinacy::AnalysisOutcome,
    kind: FactKind,
    line: u32,
) -> Vec<String> {
    let mut v: Vec<String> = out
        .facts
        .iter()
        .filter(|(k, p, _, _)| *k == kind && h.source.line_col(h.program.span_of(*p)).line == line)
        .filter_map(|(k, p, c, _)| {
            out.facts
                .describe(k, p, c, &h.program, &h.source, &out.ctxs)
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn figure2_key_facts_in_paper_notation() {
    // Line numbers in this literal are chosen to be stable.
    let src = "\
(function() {\n\
  function checkf(p) {\n\
    if (p.f < 32)\n\
      setg(p, 42);\n\
  }\n\
  function setg(r, v) {\n\
    r.g = v;\n\
  }\n\
  var x = { f: 23 },\n\
      y = { f: Math.random() * 100 };\n\
  checkf(x);\n\
  checkf(y);\n\
  (y.f > 50 ? checkf : setg)(x, 72);\n\
  var z = { f: x.g - 16, h: true };\n\
  checkf(z);\n\
})();\n";
    let (h, out) = analyze(src);
    assert_eq!(out.status, determinacy::AnalysisStatus::Completed);

    // J p.f < 32 K 11→3 = true: under the first checkf call the condition
    // is determinately true; under the later calls it is not determinate.
    // Rendered as `J <line> K <call chain> = v`; the chain starts at the
    // IIFE invocation on line 1.
    let cond_facts = rendered_facts_at_line(&h, &out, FactKind::Cond, 3);
    assert!(
        cond_facts.contains(&"J 3 K 1→11 = true".to_owned()),
        "missing J 3 K 1→11 = true in {cond_facts:?}"
    );
    assert!(
        cond_facts.contains(&"J 3 K 1→12 = ?".to_owned()),
        "checkf(y)'s condition must be indeterminate: {cond_facts:?}"
    );
    assert!(
        cond_facts.contains(&"J 3 K 1→15 = ?".to_owned()),
        "checkf(z)'s condition must be indeterminate: {cond_facts:?}"
    );
    // The paper's J r.g K 18→5→10 = 42: the setg write under the nested
    // context through checkf(y) is determinate 42 even though y.g is
    // marked ? after the merge. Our chain renders as 1→12→4.
    let define_line7 = rendered_facts_at_line(&h, &out, FactKind::Define, 7);
    assert!(
        define_line7.contains(&"J 7 K 1→12→4 = 42".to_owned()),
        "nested qualified fact missing: {define_line7:?}"
    );
    // The indeterminate call on line 13 flushed the heap.
    assert!(out.stats.heap_flushes >= 1);
    // Line 15's checkf(z): condition indeterminate-false ⇒ counterfactual.
    assert!(out.stats.counterfactuals >= 1);
}

#[test]
fn figure3_specialization_recovers_precision_and_semantics() {
    let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] = function getter() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] = function setter(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
"#;
    let (h, mut out) = analyze(src);
    // The paper's key facts: prop is determinate per loop-iteration
    // context, and the concatenated names are "getWidth"/"getHeight".
    let keys: Vec<String> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::PropKey)
        .filter_map(|(_, _, _, f)| f.value().and_then(|v| v.as_str()).map(str::to_owned))
        .collect();
    for expected in ["getWidth", "setWidth", "getHeight", "setHeight"] {
        assert!(
            keys.iter().any(|k| k == expected),
            "missing determinate key {expected}: {keys:?}"
        );
    }
    // Loop trip count 2 is determinate (props.length is determinate).
    assert!(out
        .facts
        .iter_trips()
        .any(|(_, _, t)| t == determinacy::TripFact::Exact(2)));

    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    assert!(spec.report.loops_unrolled >= 1);
    assert!(spec.report.keys_staticized >= 4);

    // Precision: in the specialized program no call site mixes getters
    // and setters.
    let pta = mujs_pta::solve(&spec.program, &mujs_pta::PtaConfig::default());
    let getters: Vec<_> = spec
        .program
        .funcs
        .iter()
        .filter(|f| {
            f.name
                .is_some_and(|n| spec.program.interner.resolve(n) == "getter")
        })
        .map(|f| f.id)
        .collect();
    let setters: Vec<_> = spec
        .program
        .funcs
        .iter()
        .filter(|f| {
            f.name
                .is_some_and(|n| spec.program.interner.resolve(n) == "setter")
        })
        .map(|f| f.id)
        .collect();
    let mixed = pta
        .call_graph()
        .values()
        .any(|s| getters.iter().any(|g| s.contains(g)) && setters.iter().any(|x| s.contains(x)));
    assert!(!mixed, "specialized PTA must separate getters from setters");

    // Semantics preserved: the alert box still reads [40x30].
    assert_eq!(run_program(&spec.program), vec!["alert: [40x30]"]);
}

#[test]
fn figure4_eval_facts_and_elimination() {
    let src = r#"
ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("shown"); };
function showIvyViaJs(locationId) {
  var _f = undefined;
  var _fconv = "ivymap['" + locationId + "']";
  try {
    _f = eval(_fconv);
    if (_f != undefined) { _f(); }
  } catch (e) {}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
"#;
    let (h, mut out) = analyze(src);
    // Both qualified facts from the paper.
    let eval_args: Vec<(String, Option<String>)> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::EvalArg)
        .map(|(k, p, c, f)| {
            (
                out.facts
                    .describe(k, p, c, &h.program, &h.source, &out.ctxs)
                    .unwrap_or_default(),
                f.value().and_then(FactValue::as_str).map(str::to_owned),
            )
        })
        .collect();
    assert_eq!(eval_args.len(), 2, "{eval_args:?}");
    let strings: Vec<Option<String>> = eval_args.iter().map(|(_, s)| s.clone()).collect();
    assert!(strings.contains(&Some("ivymap['pc.sy.banner.tcck.']".to_owned())));
    assert!(strings.contains(&Some("ivymap['pc.sy.banner.duilian.']".to_owned())));

    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    assert_eq!(spec.report.evals_eliminated, 2);
    assert_eq!(run_program(&spec.program), vec!["shown"]);
    // The clones contain no Eval statements.
    for f in &spec.program.funcs {
        if f.specialized_from.is_some() {
            Program::walk_block(&f.body, &mut |s| {
                assert!(!matches!(s.kind, StmtKind::Eval { .. }));
            });
        }
    }
}

#[test]
fn figure1_call_site_monomorphism() {
    let src = r#"
function $(selector) {
  if (typeof selector === "string") { return { kind: "css" }; }
  else { if (typeof selector === "function") { return { kind: "ready" }; }
  else { return [selector]; } }
}
var a = $("div");
var b = $(function() {});
console.log(a.kind, b.kind);
"#;
    let (h, mut out) = analyze(src);
    assert_eq!(out.output, vec!["css ready"]);
    // Every typeof condition is determinate under its call-site context.
    let conds: Vec<&Fact> = out
        .facts
        .iter()
        .filter(|(k, _, _, _)| *k == FactKind::Cond)
        .map(|(_, _, _, f)| f)
        .collect();
    assert!(!conds.is_empty());
    assert!(conds.iter().all(|f| f.is_det()));

    let spec = specialize(
        &h.program,
        &out.facts,
        &mut out.ctxs,
        &SpecConfig::default(),
    );
    assert!(spec.report.clones >= 2);
    assert!(spec.report.branches_pruned >= 3);
    assert_eq!(run_program(&spec.program), vec!["css ready"]);
}
