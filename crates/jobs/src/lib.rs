//! # mujs-jobs
//!
//! Parallel batch-analysis job scheduling for the determinacy analysis.
//! The paper's evaluation (§5) is embarrassingly parallel across
//! benchmark versions and seeds; this crate supplies the subsystem that
//! actually schedules those runs concurrently, on top of the PR 1 run
//! supervisor (panic isolation, cooperative deadlines/cancellation,
//! memory budgets):
//!
//! * [`JobSpec`] / [`Manifest`] — the JSON batch description: source +
//!   [`AnalysisConfig`][determinacy::AnalysisConfig] + seeds + per-job
//!   budgets;
//! * [`JobPool`] — a `std::thread` worker pool with a shared injector
//!   queue, one supervised run per job, a batch-wide
//!   [`CancelToken`][determinacy::CancelToken], and a streaming
//!   [`JobEvent`] channel;
//! * [`run_manifest`] / [`BatchOutcome`] — per-job
//!   [`MultiRunOutcome`][determinacy::multirun::MultiRunOutcome]s plus
//!   failures, combined in manifest order so the merged facts and the
//!   exported JSON report are **byte-identical regardless of worker
//!   count**;
//! * [`analyze_many_pooled`] — the pool-backed variant of the core
//!   `analyze_many_hooked` seed fan-out;
//! * the `detjobs` binary — manifest/directory/suite in, streamed
//!   progress lines out, deterministic JSON report written at the end.
//!
//! ## Determinism guarantee
//!
//! Three mechanisms compose to make batch output scheduling-independent:
//! results land in slots indexed by submission order (never by completion
//! order); per-job seed combination happens in seed order on the worker;
//! and the fact export is totally ordered. Worker count changes
//! wall-clock time and nothing else.
//!
//! ## Threading model
//!
//! Analysis graphs intern strings with `Rc<str>`, so jobs build their
//! whole graph (parse → lower → run → combine) inside one worker thread
//! and transfer it back exactly once through synchronized pool slots; no
//! `Rc` is ever shared across threads.

pub mod admission;
pub mod batch;
#[cfg(feature = "fault-inject")]
pub mod chaos;
pub mod checkpoint;
pub mod pool;
pub mod retry;
pub mod spec;

pub use admission::{default_pta_threads, AdmissionController};
pub use batch::{
    analyze_many_pooled, run_manifest, run_manifest_with, BatchOptions, BatchOutcome, JobOutcome,
    JobRecord, JobStatus,
};
pub use checkpoint::{job_key, Checkpoint};
pub use pool::{JobCtx, JobEvent, JobPool, JobRun, JobVerdict};
pub use retry::{Disposition, RetryPolicy};
pub use spec::{JobSpec, Manifest};
