//! The worker pool: a fixed set of `std::thread` workers draining a shared
//! injector queue of jobs, with batch-wide cooperative cancellation, a
//! streaming progress-event channel, deterministic per-job retries, and a
//! watchdog that unwedges jobs which miss their cooperative deadlines.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results are stored into a slot vector indexed by
//!    submission order, so the caller always sees jobs in the order it
//!    submitted them — completion order (and therefore worker count) is
//!    invisible to everything downstream. Retries rerun the *same* pure
//!    job body, so a job that succeeds on attempt 3 contributes exactly
//!    the bytes it would have contributed on attempt 1.
//! 2. **Isolation.** Every attempt runs under `catch_unwind`; a panicking
//!    job becomes [`JobVerdict::Panicked`] (after its retry budget is
//!    spent) and the pool keeps draining.
//! 3. **Cancellation.** The pool shares one [`CancelToken`] with every
//!    job; each attempt additionally gets a private
//!    [`child`][CancelToken::child] token so the watchdog can stop one
//!    wedged job without touching its siblings.
//! 4. **Watchdog.** A monitor thread watches jobs that
//!    [`arm_watchdog`][JobCtx::arm_watchdog] a wall-clock budget; a job
//!    that exceeds it has demonstrably missed its *cooperative* deadline,
//!    so the monitor cancels the job's private token and the attempt
//!    resolves as [`JobVerdict::Wedged`] while the pool keeps draining.
//!    (A job that also stops polling cannot be stopped safely; the
//!    watchdog bounds the common failure — deadline accounting bugs and
//!    stages with no deadline enforcement — not hostile spin loops.)
//!
//! Workers are spawned with [`mujs_syntax::PARSER_STACK_BYTES`] of stack,
//! so everything a job does — parsing, lowering, counterfactual execution,
//! `eval`-string reparsing — runs under the stack budget [`MAX_NESTING`]
//! \[`mujs_syntax::MAX_NESTING`\] is sized for.

use crate::retry::{Disposition, RetryPolicy};
use determinacy::CancelToken;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A progress event streamed while a batch runs. Events arrive in real
/// (completion) order; only the final result vector is ordered by
/// submission index.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A worker picked the job up (fires once per attempt).
    Started {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// Index of the worker running it.
        worker: usize,
        /// 1-indexed attempt number.
        attempt: u32,
    },
    /// The job reported intermediate progress (e.g. "seed 3/8 done").
    Progress {
        /// Submission index of the job.
        job: usize,
        /// What happened.
        detail: String,
    },
    /// The job ran to completion (its *outcome* may still record per-run
    /// stops such as `Deadline` or mid-flight `Cancelled`).
    Finished {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
    },
    /// An attempt failed transiently and the job will run again.
    Retrying {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// The attempt that just failed (1-indexed).
        attempt: u32,
        /// Why it failed.
        error: String,
    },
    /// The job failed permanently: it panicked with no retry budget left,
    /// or its result was classified [`Disposition::Fatal`]. The reason is
    /// always carried so campaign-scale triage never sees a bare
    /// failed bit.
    Failed {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// The panic payload or failure classification.
        error: String,
    },
    /// The watchdog caught the job exceeding its armed wall-clock budget
    /// and cancelled it.
    Wedged {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// The budget the job exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The admission controller granted the job a reduced memory budget
    /// instead of rejecting it.
    Degraded {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
        /// The reduced heap-cell budget the job runs under.
        granted_cells: u64,
    },
    /// Batch cancellation struck before the job started; it never ran.
    Cancelled {
        /// Submission index of the job.
        job: usize,
        /// Human-readable job label.
        label: String,
    },
}

/// How one job ended, in the pool's eyes.
#[derive(Debug)]
pub enum JobVerdict<T> {
    /// The job function returned (possibly after retries).
    Done(T),
    /// The job function panicked on its final attempt; the payload
    /// survives for the report.
    Panicked(String),
    /// The batch was cancelled before this job started.
    Cancelled,
    /// The job exceeded its armed watchdog budget — its cooperative
    /// deadline enforcement demonstrably failed — and was cancelled by
    /// the monitor. Its partial result is discarded: a run that ignored
    /// its budget is not trusted to have honored anything else.
    Wedged,
}

impl<T> JobVerdict<T> {
    /// The result, if the job completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobVerdict::Done(t) => Some(t),
            _ => None,
        }
    }
}

/// A resolved job: its verdict plus how many attempts it used.
#[derive(Debug)]
pub struct JobRun<T> {
    /// How the job ended.
    pub verdict: JobVerdict<T>,
    /// Attempts used (0 for jobs cancelled before they started).
    pub attempts: u32,
}

/// The event funnel shared by workers and the watchdog monitor. Send
/// errors are deliberately ignored: a dropped listener must never stall
/// or fail the batch (pinned by the receiver-teardown test).
struct EventSink {
    tx: Option<Sender<JobEvent>>,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<crate::chaos::SchedulerFaultPlan>>,
    #[cfg(feature = "fault-inject")]
    seq: std::sync::atomic::AtomicU64,
}

impl EventSink {
    fn new(tx: Option<Sender<JobEvent>>) -> Self {
        EventSink {
            tx,
            #[cfg(feature = "fault-inject")]
            faults: None,
            #[cfg(feature = "fault-inject")]
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn emit(&self, e: JobEvent) {
        #[cfg(feature = "fault-inject")]
        if let Some(f) = &self.faults {
            use crate::chaos::EventFate;
            let n = self.seq.fetch_add(1, Ordering::Relaxed);
            match f.event_fate(n) {
                EventFate::Drop => return,
                EventFate::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
                EventFate::Deliver => {}
            }
        }
        if let Some(tx) = &self.tx {
            let _ = tx.send(e);
        }
    }
}

/// One armed watchdog entry: the wall-clock point past which the running
/// job counts as wedged, and the private token to fire when it does.
struct WatchdogSlot {
    job: usize,
    label: String,
    deadline: Instant,
    budget_ms: u64,
    token: CancelToken,
    fired: bool,
}

/// Per-worker watchdog registry (a worker runs at most one attempt at a
/// time, so one slot per worker suffices).
struct Watchdog {
    slots: Vec<Mutex<Option<WatchdogSlot>>>,
}

impl Watchdog {
    fn new(workers: usize) -> Self {
        Watchdog {
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Scans all slots once, firing any that are past deadline.
    fn scan(&self, events: &EventSink) {
        let now = Instant::now();
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap();
            if let Some(s) = guard.as_mut() {
                if !s.fired && now >= s.deadline {
                    s.fired = true;
                    s.token.cancel();
                    events.emit(JobEvent::Wedged {
                        job: s.job,
                        label: s.label.clone(),
                        budget_ms: s.budget_ms,
                    });
                }
            }
        }
    }

    /// Disarms the worker's slot, reporting whether it fired.
    fn disarm(&self, worker: usize) -> bool {
        self.slots[worker]
            .lock()
            .unwrap()
            .take()
            .is_some_and(|s| s.fired)
    }
}

/// Context handed to a running job: its identity, the cancel token for
/// this attempt, and a handle for streaming progress events.
pub struct JobCtx {
    /// Submission index of this job.
    pub job: usize,
    /// Index of the worker running it.
    pub worker: usize,
    /// 1-indexed attempt number (1 on the first run, 2 on the first
    /// retry, …). Jobs can use it to log, but must not let it change
    /// their *result* — retried output must be byte-identical.
    pub attempt: u32,
    /// This attempt's cancellation token: a private child of the
    /// batch-wide token, so it observes batch cancellation and can also
    /// be fired individually by the watchdog. Jobs should thread it into
    /// their run supervision hooks (`RunHooks::with_cancel`) so mid-flight
    /// runs stop at the next poll.
    pub cancel: CancelToken,
    label: String,
    events: Arc<EventSink>,
    watchdog: Arc<Watchdog>,
}

impl std::fmt::Debug for JobCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCtx")
            .field("job", &self.job)
            .field("worker", &self.worker)
            .field("attempt", &self.attempt)
            .finish()
    }
}

impl JobCtx {
    /// Whether batch (or per-job watchdog) cancellation has been
    /// requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Streams a [`JobEvent::Progress`] line (no-op without a listener).
    pub fn progress(&self, detail: impl Into<String>) {
        self.events.emit(JobEvent::Progress {
            job: self.job,
            detail: detail.into(),
        });
    }

    /// Arms the watchdog for this attempt: if the job is still running
    /// `budget_ms` from now, the monitor fires this attempt's cancel
    /// token and the job resolves as [`JobVerdict::Wedged`]. Call once,
    /// early — typically right after computing the job's cooperative
    /// deadline, with the budget set to that deadline plus a grace
    /// period.
    pub fn arm_watchdog(&self, budget_ms: u64) {
        *self.watchdog.slots[self.worker].lock().unwrap() = Some(WatchdogSlot {
            job: self.job,
            label: self.label.clone(),
            deadline: Instant::now() + Duration::from_millis(budget_ms),
            budget_ms,
            token: self.cancel.clone(),
            fired: false,
        });
    }

    /// Streams an arbitrary event (batch layer only — e.g. admission
    /// degradation notices).
    pub(crate) fn emit(&self, e: JobEvent) {
        self.events.emit(e);
    }
}

/// How often the watchdog monitor rescans armed slots.
const WATCHDOG_SCAN_MS: u64 = 10;

/// A batch-analysis worker pool.
///
/// # Examples
///
/// ```
/// use mujs_jobs::JobPool;
/// let pool = JobPool::new(4);
/// let jobs = (0..10)
///     .map(|i| (format!("square-{i}"), move |_ctx: &mujs_jobs::JobCtx| i * i))
///     .collect();
/// let results = pool.run(jobs);
/// // Submission order, whatever the completion order was:
/// assert_eq!(results.len(), 10);
/// assert!(matches!(results[3], mujs_jobs::JobVerdict::Done(9)));
/// ```
#[derive(Debug)]
pub struct JobPool {
    workers: usize,
    cancel: CancelToken,
    events: Option<Sender<JobEvent>>,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<crate::chaos::SchedulerFaultPlan>>,
}

impl JobPool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
            cancel: CancelToken::new(),
            events: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Shares an external cancellation token (e.g. one also wired to a
    /// Ctrl-C handler) instead of the pool's own.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Streams [`JobEvent`]s to `tx` while batches run.
    pub fn with_events(mut self, tx: Sender<JobEvent>) -> Self {
        self.events = Some(tx);
        self
    }

    /// Installs a deterministic scheduler-level fault plan (chaos testing
    /// only): kills attempts, drops/delays events, truncates checkpoints
    /// according to the plan's seed.
    #[cfg(feature = "fault-inject")]
    pub fn with_scheduler_faults(mut self, plan: Arc<crate::chaos::SchedulerFaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A clone of the batch cancellation token; cancelling it stops the
    /// whole batch (in-flight runs at their next poll, queued jobs before
    /// they start).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests whole-batch cancellation.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Runs every `(label, job)` pair to a verdict and returns the
    /// verdicts **in submission order** — the single-attempt path with no
    /// result classification (see [`JobPool::run_classified`] for
    /// retries).
    pub fn run<T, F>(&self, jobs: Vec<(String, F)>) -> Vec<JobVerdict<T>>
    where
        T: Send,
        F: Fn(&JobCtx) -> T + Send,
    {
        self.run_classified(jobs, &RetryPolicy::default(), |_| Disposition::Keep)
            .into_iter()
            .map(|r| r.verdict)
            .collect()
    }

    /// Runs every `(label, job)` pair under `policy`, classifying each
    /// completed attempt with `classify`, and returns resolved
    /// [`JobRun`]s **in submission order**.
    ///
    /// * A panicking attempt (or one classified
    ///   [`Disposition::Retry`]) reruns after the policy's deterministic
    ///   backoff while attempts remain; retried jobs that eventually
    ///   succeed are indistinguishable in the results from jobs that
    ///   succeeded on the first try, except for
    ///   [`JobRun::attempts`].
    /// * Attempts that overrun a watchdog budget armed via
    ///   [`JobCtx::arm_watchdog`] resolve as [`JobVerdict::Wedged`].
    /// * Under `policy.fail_fast`, the first permanent failure (panic
    ///   with no retries left, exhausted retries, wedge, or
    ///   [`Disposition::Fatal`]) cancels the batch token: in-flight jobs
    ///   stop at their next poll, queued jobs resolve
    ///   [`JobVerdict::Cancelled`].
    ///
    /// Blocks until all jobs are resolved.
    pub fn run_classified<T, F, C>(
        &self,
        jobs: Vec<(String, F)>,
        policy: &RetryPolicy,
        classify: C,
    ) -> Vec<JobRun<T>>
    where
        T: Send,
        F: Fn(&JobCtx) -> T + Send,
        C: Fn(&T) -> Disposition + Sync,
    {
        let n = jobs.len();
        let queue: Mutex<VecDeque<(usize, String, F)>> = Mutex::new(
            jobs.into_iter()
                .enumerate()
                .map(|(i, (label, f))| (i, label, f))
                .collect(),
        );
        let results: Mutex<Vec<Option<JobRun<T>>>> = Mutex::new((0..n).map(|_| None).collect());
        let worker_count = self.workers.min(n.max(1));
        let events = Arc::new({
            #[allow(unused_mut)]
            let mut sink = EventSink::new(self.events.clone());
            #[cfg(feature = "fault-inject")]
            {
                sink.faults = self.faults.clone();
            }
            sink
        });
        let watchdog = Arc::new(Watchdog::new(worker_count));
        let monitor_done = AtomicBool::new(false);
        let classify = &classify;
        std::thread::scope(|s| {
            // Watchdog monitor: rescans armed slots until all workers are
            // done, then exits so the scope can close.
            let monitor = {
                let watchdog = watchdog.clone();
                let events = events.clone();
                let done = &monitor_done;
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        watchdog.scan(&events);
                        // Parked, not slept: the batch unparks this thread
                        // when the last worker finishes, so a short batch is
                        // not held hostage to the scan interval.
                        std::thread::park_timeout(Duration::from_millis(WATCHDOG_SCAN_MS));
                    }
                    // Final scan so nothing armed right at the end is missed.
                    watchdog.scan(&events);
                })
            };
            let handles: Vec<_> = (0..worker_count)
                .map(|worker| {
                    let queue = &queue;
                    let results = &results;
                    let cancel = self.cancel.clone();
                    let events = events.clone();
                    let watchdog = watchdog.clone();
                    #[cfg(feature = "fault-inject")]
                    let faults = self.faults.clone();
                    let builder = std::thread::Builder::new()
                        .name(format!("mujs-job-{worker}"))
                        // Jobs parse and execute recursively; size the stack
                        // for the raised MAX_NESTING guard.
                        .stack_size(mujs_syntax::PARSER_STACK_BYTES);
                    builder
                        .spawn_scoped(s, move || loop {
                            let Some((job, label, f)) = queue.lock().unwrap().pop_front() else {
                                return;
                            };
                            let resolved = if cancel.is_cancelled() {
                                events.emit(JobEvent::Cancelled {
                                    job,
                                    label: label.clone(),
                                });
                                JobRun {
                                    verdict: JobVerdict::Cancelled,
                                    attempts: 0,
                                }
                            } else {
                                run_attempts(
                                    job,
                                    &label,
                                    &f,
                                    worker,
                                    &cancel,
                                    &events,
                                    &watchdog,
                                    policy,
                                    classify,
                                    #[cfg(feature = "fault-inject")]
                                    faults.as_deref(),
                                )
                            };
                            results.lock().unwrap()[job] = Some(resolved);
                        })
                        .expect("spawn pool worker")
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            monitor_done.store(true, Ordering::Relaxed);
            monitor.thread().unpark();
            let _ = monitor.join();
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|v| v.expect("every job resolved"))
            .collect()
    }
}

/// The per-job attempt loop: run, classify, retry with deterministic
/// backoff, and resolve to a final verdict.
#[allow(clippy::too_many_arguments)]
fn run_attempts<T, F, C>(
    job: usize,
    label: &str,
    f: &F,
    worker: usize,
    batch_cancel: &CancelToken,
    events: &Arc<EventSink>,
    watchdog: &Arc<Watchdog>,
    policy: &RetryPolicy,
    classify: &C,
    #[cfg(feature = "fault-inject")] faults: Option<&crate::chaos::SchedulerFaultPlan>,
) -> JobRun<T>
where
    F: Fn(&JobCtx) -> T,
    C: Fn(&T) -> Disposition,
{
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        if batch_cancel.is_cancelled() {
            events.emit(JobEvent::Cancelled {
                job,
                label: label.to_owned(),
            });
            return JobRun {
                verdict: JobVerdict::Cancelled,
                attempts: attempt - 1,
            };
        }
        events.emit(JobEvent::Started {
            job,
            label: label.to_owned(),
            worker,
            attempt,
        });
        let ctx = JobCtx {
            job,
            worker,
            attempt,
            cancel: batch_cancel.child(),
            label: label.to_owned(),
            events: events.clone(),
            watchdog: watchdog.clone(),
        };
        #[cfg(feature = "fault-inject")]
        let injected_kill = faults.is_some_and(|p| p.kill_job(job, attempt));
        #[cfg(not(feature = "fault-inject"))]
        let injected_kill = false;
        let outcome: Result<T, String> = if injected_kill {
            Err("chaos: worker killed mid-job (injected)".to_owned())
        } else {
            catch_unwind(AssertUnwindSafe(|| f(&ctx))).map_err(panic_text)
        };
        let wedged = watchdog.disarm(worker);
        match outcome {
            Err(error) => {
                if policy.may_retry(attempt) {
                    events.emit(JobEvent::Retrying {
                        job,
                        label: label.to_owned(),
                        attempt,
                        error,
                    });
                    backoff(policy, job, attempt);
                    continue;
                }
                events.emit(JobEvent::Failed {
                    job,
                    label: label.to_owned(),
                    error,
                });
                fail_fast(policy, batch_cancel);
                return JobRun {
                    verdict: JobVerdict::Panicked(panic_after_retries(attempt, label)),
                    attempts: attempt,
                };
            }
            Ok(_) if wedged => {
                // Monitor already emitted JobEvent::Wedged.
                fail_fast(policy, batch_cancel);
                return JobRun {
                    verdict: JobVerdict::Wedged,
                    attempts: attempt,
                };
            }
            Ok(t) => match classify(&t) {
                Disposition::Keep => {
                    events.emit(JobEvent::Finished {
                        job,
                        label: label.to_owned(),
                    });
                    return JobRun {
                        verdict: JobVerdict::Done(t),
                        attempts: attempt,
                    };
                }
                Disposition::Retry(error) => {
                    if policy.may_retry(attempt) {
                        events.emit(JobEvent::Retrying {
                            job,
                            label: label.to_owned(),
                            attempt,
                            error,
                        });
                        backoff(policy, job, attempt);
                        continue;
                    }
                    // Retries exhausted: the result (with its recorded
                    // failures) stands; the batch may stop here.
                    events.emit(JobEvent::Failed {
                        job,
                        label: label.to_owned(),
                        error: format!("retries exhausted after {attempt} attempts: {error}"),
                    });
                    fail_fast(policy, batch_cancel);
                    return JobRun {
                        verdict: JobVerdict::Done(t),
                        attempts: attempt,
                    };
                }
                Disposition::Fatal(error) => {
                    events.emit(JobEvent::Failed {
                        job,
                        label: label.to_owned(),
                        error,
                    });
                    fail_fast(policy, batch_cancel);
                    return JobRun {
                        verdict: JobVerdict::Done(t),
                        attempts: attempt,
                    };
                }
            },
        }
    }
}

fn backoff(policy: &RetryPolicy, job: usize, attempt: u32) {
    let ms = policy.backoff_ms(job, attempt);
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

fn fail_fast(policy: &RetryPolicy, batch_cancel: &CancelToken) {
    if policy.fail_fast {
        batch_cancel.cancel();
    }
}

fn panic_after_retries(attempts: u32, label: &str) -> String {
    if attempts > 1 {
        format!("job `{label}` panicked on all {attempts} attempts")
    } else {
        format!("job `{label}` panicked")
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fully-owned object graph transferred wholesale between threads.
///
/// The analysis pipeline interns strings with `Rc<str>`, so harnesses,
/// fact databases, and multi-run outcomes are not `Send` even though they
/// contain no thread-shared state. Jobs build those graphs *entirely on
/// the worker thread* and hand them back through the pool exactly once;
/// `Mutex`/`join` synchronization orders the handoff, so the non-atomic
/// refcounts are never touched concurrently.
///
/// # Safety invariant (on the constructor's caller)
///
/// Every `Rc` reachable from the wrapped value must have *all* of its
/// clones inside the wrapped value itself — nothing reachable may share a
/// refcount with data that stays on the producing thread or is visible to
/// any other thread. Values freshly parsed/analyzed inside one job satisfy
/// this by construction.
pub(crate) struct IsolatedGraph<T>(T);

unsafe impl<T> Send for IsolatedGraph<T> {}

impl<T> IsolatedGraph<T> {
    /// Wraps a graph for transfer. See the type-level safety invariant.
    pub(crate) fn new(value: T) -> Self {
        IsolatedGraph(value)
    }

    /// Borrows the wrapped graph on the producing thread (classification
    /// happens worker-side, before the handoff).
    pub(crate) fn get(&self) -> &T {
        &self.0
    }

    /// Unwraps on the receiving thread.
    pub(crate) fn into_inner(self) -> T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::mpsc::channel;

    type BoxedJob<T> = Box<dyn Fn(&JobCtx) -> T + Send>;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = JobPool::new(8);
        // Reverse sleeps so completion order inverts submission order.
        let jobs: Vec<(String, _)> = (0..16usize)
            .map(|i| {
                (format!("j{i}"), move |_ctx: &JobCtx| {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i * 10
                })
            })
            .collect();
        let out = pool.run(jobs);
        for (i, v) in out.iter().enumerate() {
            assert!(matches!(v, JobVerdict::Done(x) if *x == i * 10));
        }
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        let pool = JobPool::new(2);
        let jobs: Vec<(String, BoxedJob<usize>)> = vec![
            ("ok-0".into(), Box::new(|_| 1)),
            ("boom".into(), Box::new(|_| panic!("job exploded"))),
            ("ok-2".into(), Box::new(|_| 3)),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(1)));
        assert!(matches!(&out[1], JobVerdict::Panicked(_)));
        assert!(matches!(out[2], JobVerdict::Done(3)));
    }

    #[test]
    fn cancellation_skips_queued_jobs() {
        let pool = JobPool::new(1);
        let token = pool.cancel_token();
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            (
                "canceller".into(),
                Box::new(move |_| {
                    token.cancel();
                    7
                }),
            ),
            ("never-runs".into(), Box::new(|_| 8)),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(7)));
        assert!(matches!(out[1], JobVerdict::Cancelled));
    }

    #[test]
    fn events_stream_start_progress_finish() {
        let (tx, rx) = channel();
        let pool = JobPool::new(1).with_events(tx);
        let jobs: Vec<(String, _)> = vec![("one".to_owned(), |ctx: &JobCtx| {
            ctx.progress("halfway");
            42
        })];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Done(42)));
        let kinds: Vec<String> = rx
            .try_iter()
            .map(|e| match e {
                JobEvent::Started { .. } => "started".into(),
                JobEvent::Progress { detail, .. } => format!("progress:{detail}"),
                JobEvent::Finished { .. } => "finished".into(),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["started", "progress:halfway", "finished"]);
    }

    #[test]
    fn a_transient_panic_is_retried_to_success() {
        let pool = JobPool::new(2);
        let calls = AtomicU32::new(0);
        let jobs: Vec<(String, _)> = vec![("flaky".to_owned(), |_ctx: &JobCtx| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient fault");
            }
            99u32
        })];
        let out = pool.run_classified(jobs, &RetryPolicy::attempts(3), |_| Disposition::Keep);
        assert!(matches!(out[0].verdict, JobVerdict::Done(99)));
        assert_eq!(out[0].attempts, 2);
    }

    #[test]
    fn retries_exhaust_into_a_panicked_verdict() {
        let (tx, rx) = channel();
        let pool = JobPool::new(1).with_events(tx);
        let jobs: Vec<(String, BoxedJob<u32>)> =
            vec![("always-dies".into(), Box::new(|_| panic!("permanent")))];
        let out = pool.run_classified(jobs, &RetryPolicy::attempts(3), |_| Disposition::Keep);
        assert!(matches!(&out[0].verdict, JobVerdict::Panicked(_)));
        assert_eq!(out[0].attempts, 3);
        let retries = rx
            .try_iter()
            .filter(|e| matches!(e, JobEvent::Retrying { .. }))
            .count();
        assert_eq!(retries, 2, "attempts 1 and 2 retry, attempt 3 fails");
    }

    #[test]
    fn classifier_driven_retry_reruns_the_job() {
        let pool = JobPool::new(1);
        let calls = AtomicU32::new(0);
        let jobs: Vec<(String, _)> = vec![("classified".to_owned(), |_ctx: &JobCtx| {
            calls.fetch_add(1, Ordering::SeqCst) + 1
        })];
        let out = pool.run_classified(jobs, &RetryPolicy::attempts(5), |&n: &u32| {
            if n < 3 {
                Disposition::Retry(format!("attempt {n} too small"))
            } else {
                Disposition::Keep
            }
        });
        assert!(matches!(out[0].verdict, JobVerdict::Done(3)));
        assert_eq!(out[0].attempts, 3);
    }

    #[test]
    fn fail_fast_cancels_the_rest_of_the_batch() {
        let pool = JobPool::new(1);
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            ("fatal".into(), Box::new(|_| 0)),
            ("never-runs".into(), Box::new(|_| 1)),
        ];
        let policy = RetryPolicy {
            fail_fast: true,
            ..RetryPolicy::attempts(1)
        };
        let out = pool.run_classified(jobs, &policy, |&n: &u32| {
            if n == 0 {
                Disposition::Fatal("bad input".into())
            } else {
                Disposition::Keep
            }
        });
        assert!(matches!(out[0].verdict, JobVerdict::Done(0)));
        assert!(matches!(out[1].verdict, JobVerdict::Cancelled));
    }

    #[test]
    fn the_watchdog_wedges_a_job_that_overstays_its_budget() {
        let (tx, rx) = channel();
        let pool = JobPool::new(2).with_events(tx);
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            (
                "overstayer".into(),
                Box::new(|ctx| {
                    ctx.arm_watchdog(30);
                    // Poll cooperatively like a real run; without the
                    // watchdog this would spin for a very long time.
                    while !ctx.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    0
                }),
            ),
            ("fine".into(), Box::new(|_| 7)),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Wedged));
        assert!(matches!(out[1], JobVerdict::Done(7)));
        assert!(rx.try_iter().any(|e| matches!(
            e,
            JobEvent::Wedged {
                job: 0,
                budget_ms: 30,
                ..
            }
        )));
    }

    #[test]
    fn watchdog_cancellation_does_not_leak_into_siblings() {
        let pool = JobPool::new(1);
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            (
                "wedges".into(),
                Box::new(|ctx| {
                    ctx.arm_watchdog(20);
                    while !ctx.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    0
                }),
            ),
            (
                "healthy-after".into(),
                Box::new(|ctx| {
                    assert!(!ctx.is_cancelled(), "sibling token must be fresh");
                    5
                }),
            ),
        ];
        let out = pool.run(jobs);
        assert!(matches!(out[0], JobVerdict::Wedged));
        assert!(matches!(out[1], JobVerdict::Done(5)));
    }

    #[test]
    fn dropping_the_event_receiver_does_not_stall_the_pool() {
        let (tx, rx) = channel();
        let pool = JobPool::new(2).with_events(tx);
        drop(rx); // listener gone before the batch even starts
        let jobs: Vec<(String, _)> = (0..8usize)
            .map(|i| {
                (format!("j{i}"), move |ctx: &JobCtx| {
                    ctx.progress("still emitting into the void");
                    i
                })
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 8);
        for (i, v) in out.iter().enumerate() {
            assert!(matches!(v, JobVerdict::Done(x) if *x == i));
        }
    }
}
