//! The standard library: `Math`, `String`/`Array`/`Object`/`Function`
//! prototype methods, global utilities, `Error`, and indirect `eval`.
//!
//! The instrumented machine in the `determinacy` crate provides its own
//! *models* of these functions (§4 of the paper: "for some of them, we
//! provide hand-written models that conservatively approximate their
//! effects on determinacy information"); pure string/number helpers are
//! shared via [`crate::stdlib`].

use crate::coerce::{self};
use crate::machine::{Interp, RunError};
use crate::stdlib;
use crate::values::{ObjClass, ObjId, Slot, Value};
use mujs_ir::FuncKind;
use std::rc::Rc;

/// Installs every global binding on a fresh machine.
pub fn install_stdlib(interp: &mut Interp<'_>) {
    let g = interp.global();
    for p in [
        interp.protos.object,
        interp.protos.function,
        interp.protos.array,
        interp.protos.string,
        interp.protos.number,
        interp.protos.boolean,
        interp.protos.error,
    ] {
        interp.obj_mut(p).builtin = true;
    }
    interp.obj_mut(g).builtin = true;

    // window / globalThis self-references.
    interp.set_raw(g, "window", Value::Object(g));
    interp.set_raw(g, "globalThis", Value::Object(g));
    interp.set_raw(g, "undefined", Value::Undefined);
    interp.set_raw(g, "NaN", Value::Num(f64::NAN));
    interp.set_raw(g, "Infinity", Value::Num(f64::INFINITY));

    // ----- Math ---------------------------------------------------------
    let math = interp.alloc(ObjClass::Plain, Some(interp.protos.object));
    interp.obj_mut(math).builtin = true;
    interp.set_raw(g, "Math", Value::Object(math));
    interp.set_raw(math, "PI", Value::Num(std::f64::consts::PI));
    interp.set_raw(math, "E", Value::Num(std::f64::consts::E));
    let defs: &[(&'static str, crate::machine::NativeFn)] = &[
        ("random", |it, _, _| Ok(Value::Num(it.random()))),
        ("floor", |_, _, a| num1(a, f64::floor)),
        ("ceil", |_, _, a| num1(a, f64::ceil)),
        ("round", |_, _, a| num1(a, f64::round)),
        ("abs", |_, _, a| num1(a, f64::abs)),
        ("sqrt", |_, _, a| num1(a, f64::sqrt)),
        ("pow", |_, _, a| num2(a, f64::powf)),
        ("max", |_, _, a| num_fold(a, f64::NEG_INFINITY, f64::max)),
        ("min", |_, _, a| num_fold(a, f64::INFINITY, f64::min)),
    ];
    for (name, f) in defs {
        let n = interp.register_native(name, *f);
        interp.set_raw(math, name, Value::Object(n));
    }

    // ----- Date ---------------------------------------------------------
    let date = interp.register_native("Date", |it, this, _| {
        // `new Date()`/`Date()`: an object carrying the current tick.
        let t = it.now();
        if let Value::Object(o) = &this {
            it.set_raw(*o, "_time", Value::Num(t));
        }
        Ok(this)
    });
    let now = interp.register_native("now", |it, _, _| Ok(Value::Num(it.now())));
    interp.set_raw(date, "now", Value::Object(now));
    interp.set_raw(g, "Date", Value::Object(date));

    // ----- console ------------------------------------------------------
    let console = interp.alloc(ObjClass::Plain, Some(interp.protos.object));
    interp.obj_mut(console).builtin = true;
    let log = interp.register_native("log", |it, _, a| {
        let parts: Vec<String> = a.iter().map(|v| it.display(v)).collect();
        it.output.push(parts.join(" "));
        Ok(Value::Undefined)
    });
    interp.set_raw(console, "log", Value::Object(log));
    interp.set_raw(console, "error", Value::Object(log));
    interp.set_raw(console, "warn", Value::Object(log));
    interp.set_raw(g, "console", Value::Object(console));

    // Analysis test hooks, concretely inert: `__indet` is the identity
    // (the instrumented machine marks its result indeterminate) and
    // `__opaque` returns `undefined` (the instrumented machine treats it
    // as an unmodeled native: flush + indeterminate).
    let indet = interp.register_native("__indet", |_, _, a| {
        Ok(a.first().cloned().unwrap_or(Value::Undefined))
    });
    interp.set_raw(g, "__indet", Value::Object(indet));
    let opaque = interp.register_native("__opaque", |_, _, _| Ok(Value::Undefined));
    interp.set_raw(g, "__opaque", Value::Object(opaque));

    // `alert` exists even without a DOM (browsers always have it); the DOM
    // binding re-installs an identical implementation.
    let alert = interp.register_native("alert", |it, _, a| {
        let msg = match a.first() {
            Some(v) => it.display(v),
            None => String::new(),
        };
        it.output.push(format!("alert: {msg}"));
        Ok(Value::Undefined)
    });
    interp.set_raw(g, "alert", Value::Object(alert));

    // ----- global utilities ----------------------------------------------
    let defs: &[(&'static str, crate::machine::NativeFn)] = &[
        ("parseInt", |_, _, a| {
            let s = match a.first() {
                Some(Value::Str(s)) => s.to_string(),
                Some(v) => coerce::to_string(v)
                    .map(|s| s.to_string())
                    .unwrap_or_default(),
                None => String::new(),
            };
            let radix = match a.get(1) {
                Some(v) => coerce::to_number(v).unwrap_or(10.0) as u32,
                None => 10,
            };
            Ok(Value::Num(stdlib::parse_int(&s, radix)))
        }),
        ("parseFloat", |_, _, a| {
            let s = match a.first() {
                Some(Value::Str(s)) => s.to_string(),
                Some(v) => coerce::to_string(v)
                    .map(|s| s.to_string())
                    .unwrap_or_default(),
                None => String::new(),
            };
            Ok(Value::Num(stdlib::parse_float(&s)))
        }),
        ("isNaN", |_, _, a| {
            let n = a
                .first()
                .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
                .unwrap_or(f64::NAN);
            Ok(Value::Bool(n.is_nan()))
        }),
        ("isFinite", |_, _, a| {
            let n = a
                .first()
                .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
                .unwrap_or(f64::NAN);
            Ok(Value::Bool(n.is_finite()))
        }),
    ];
    for (name, f) in defs {
        let n = interp.register_native(name, *f);
        interp.set_raw(g, name, Value::Object(n));
    }

    // ----- constructors ---------------------------------------------------
    let object_ctor = interp.register_native("Object", |it, _, a| match a.first() {
        Some(Value::Object(o)) => Ok(Value::Object(*o)),
        _ => {
            let o = it.alloc(ObjClass::Plain, Some(it.protos.object));
            Ok(Value::Object(o))
        }
    });
    interp.set_raw(object_ctor, "prototype", {
        Value::Object(interp.protos.object)
    });
    interp.set_raw(g, "Object", Value::Object(object_ctor));
    interp.specials.object_ctor = Some(object_ctor);

    let array_ctor = interp.register_native("Array", |it, _, a| {
        let arr = it.alloc(ObjClass::Array, Some(it.protos.array));
        if a.len() == 1 {
            if let Value::Num(n) = a[0] {
                it.set_raw(arr, "length", Value::Num(n.trunc()));
                return Ok(Value::Object(arr));
            }
        }
        it.set_raw(arr, "length", Value::Num(a.len() as f64));
        for (i, v) in a.iter().enumerate() {
            it.set_raw(arr, &i.to_string(), v.clone());
        }
        Ok(Value::Object(arr))
    });
    interp.set_raw(array_ctor, "prototype", Value::Object(interp.protos.array));
    interp.set_raw(g, "Array", Value::Object(array_ctor));
    interp.specials.array_ctor = Some(array_ctor);

    let string_ctor = interp.register_native("String", |it, _, a| {
        let s = match a.first() {
            Some(v) => it.value_to_string(v)?,
            None => Rc::from(""),
        };
        Ok(Value::Str(s))
    });
    interp.set_raw(
        string_ctor,
        "prototype",
        Value::Object(interp.protos.string),
    );
    interp.set_raw(g, "String", Value::Object(string_ctor));

    let number_ctor = interp.register_native("Number", |_, _, a| {
        let n = match a.first() {
            Some(v) => coerce::to_number(v).unwrap_or(f64::NAN),
            None => 0.0,
        };
        Ok(Value::Num(n))
    });
    interp.set_raw(
        number_ctor,
        "prototype",
        Value::Object(interp.protos.number),
    );
    interp.set_raw(g, "Number", Value::Object(number_ctor));

    let boolean_ctor = interp.register_native("Boolean", |_, _, a| {
        Ok(Value::Bool(
            a.first().map(coerce::to_boolean).unwrap_or(false),
        ))
    });
    interp.set_raw(
        boolean_ctor,
        "prototype",
        Value::Object(interp.protos.boolean),
    );
    interp.set_raw(g, "Boolean", Value::Object(boolean_ctor));

    let error_ctor = interp.register_native("Error", |it, this, a| {
        let msg = match a.first() {
            Some(v) => it.value_to_string(v)?,
            None => Rc::from(""),
        };
        if let Value::Object(o) = &this {
            it.set_raw(*o, "message", Value::Str(msg));
            it.set_raw(*o, "name", Value::Str(Rc::from("Error")));
        }
        Ok(Value::Undefined)
    });
    interp.set_raw(error_ctor, "prototype", Value::Object(interp.protos.error));
    interp.set_raw(g, "Error", Value::Object(error_ctor));
    interp.specials.error_ctor = Some(error_ctor);
    interp.set_raw(interp.protos.error, "name", Value::Str(Rc::from("Error")));
    interp.set_raw(interp.protos.error, "message", Value::Str(Rc::from("")));

    // ----- indirect eval ---------------------------------------------------
    let eval_fn = interp.register_native("eval", |it, _, a| {
        let Some(Value::Str(src)) = a.first() else {
            return Ok(a.first().cloned().unwrap_or(Value::Undefined));
        };
        let parsed = match mujs_syntax::parse(src) {
            Ok(p) => p,
            Err(e) => return Err(it.throw_error("SyntaxError", &e.to_string())),
        };
        // Indirect eval runs in the global scope.
        let entry = it.prog.entry().expect("program has an entry");
        let chunk = mujs_ir::lower_chunk(it.prog, &parsed, FuncKind::EvalChunk, Some(entry));
        #[cfg(debug_assertions)]
        mujs_analysis::assert_valid(it.prog);
        let g = it.global();
        let f = it.prog.func_rc(chunk);
        let mut frame = crate::machine::Frame {
            func: chunk,
            scope: None,
            activation: None,
            temps: vec![Value::Undefined; f.n_temps as usize],
            this_val: Value::Object(g),
            ctx: crate::context::CtxId::ROOT,
            occurrences: vec![0; it.prog.stmt_count_of(chunk) as usize],
        };
        it.run_eval_chunk(&mut frame, chunk, crate::context::CtxId::ROOT)
    });
    interp.set_raw(g, "eval", Value::Object(eval_fn));
    interp.specials.eval_fn = Some(eval_fn);

    install_object_proto(interp);
    install_function_proto(interp);
    install_array_proto(interp);
    install_string_proto(interp);
    install_number_proto(interp);
}

impl Interp<'_> {
    /// `ToString` that renders objects as `"[object Object]"` (explicit
    /// stringification contexts like `String(x)` and `Array.join` allow
    /// this even though implicit coercion of objects is an error).
    pub fn value_to_string(&mut self, v: &Value) -> Result<Rc<str>, RunError> {
        match v {
            Value::Object(id) => match &self.obj(*id).class {
                ObjClass::Array => {
                    let s = self.display(v);
                    Ok(Rc::from(s.as_str()))
                }
                c if c.is_callable() => Ok(Rc::from("function")),
                _ => Ok(Rc::from("[object Object]")),
            },
            _ => Ok(coerce::to_string(v).expect("non-object")),
        }
    }
}

fn num1(args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value, RunError> {
    let n = args
        .first()
        .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
        .unwrap_or(f64::NAN);
    Ok(Value::Num(f(n)))
}

fn num2(args: &[Value], f: impl Fn(f64, f64) -> f64) -> Result<Value, RunError> {
    let a = args
        .first()
        .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
        .unwrap_or(f64::NAN);
    let b = args
        .get(1)
        .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
        .unwrap_or(f64::NAN);
    Ok(Value::Num(f(a, b)))
}

fn num_fold(args: &[Value], init: f64, f: impl Fn(f64, f64) -> f64) -> Result<Value, RunError> {
    let mut acc = init;
    for v in args {
        let n = coerce::to_number(v).unwrap_or(f64::NAN);
        if n.is_nan() {
            return Ok(Value::Num(f64::NAN));
        }
        acc = f(acc, n);
    }
    Ok(Value::Num(acc))
}

fn this_string(it: &mut Interp<'_>, this: &Value) -> Result<Rc<str>, RunError> {
    match this {
        Value::Str(s) => Ok(s.clone()),
        other => it.value_to_string(other),
    }
}

fn arg_string(it: &mut Interp<'_>, args: &[Value], i: usize) -> Result<Rc<str>, RunError> {
    match args.get(i) {
        Some(v) => it.value_to_string(v),
        None => Ok(Rc::from("undefined")),
    }
}

fn arg_num(args: &[Value], i: usize, default: f64) -> f64 {
    args.get(i)
        .map(|v| coerce::to_number(v).unwrap_or(f64::NAN))
        .unwrap_or(default)
}

fn install_object_proto(it: &mut Interp<'_>) {
    let proto = it.protos.object;
    let defs: &[(&'static str, crate::machine::NativeFn)] = &[
        ("hasOwnProperty", |it, this, a| {
            let Value::Object(o) = this else {
                return Ok(Value::Bool(false));
            };
            let key = arg_string(it, a, 0)?;
            let key = it.prog.interner.intern_rc(&key);
            Ok(Value::Bool(it.obj(o).props.contains(key)))
        }),
        ("toString", |_, _, _| {
            Ok(Value::Str(Rc::from("[object Object]")))
        }),
    ];
    for (name, f) in defs {
        let n = it.register_native(name, *f);
        it.set_raw(proto, name, Value::Object(n));
    }
}

fn install_function_proto(it: &mut Interp<'_>) {
    let proto = it.protos.function;
    let call = it.register_native("call", |it, this, a| {
        let bound_this = a.first().cloned().unwrap_or(Value::Undefined);
        let rest = if a.is_empty() { &[] } else { &a[1..] };
        it.call_value(&this, bound_this, rest, crate::context::CtxId::ROOT)
    });
    it.set_raw(proto, "call", Value::Object(call));
    let apply = it.register_native("apply", |it, this, a| {
        let bound_this = a.first().cloned().unwrap_or(Value::Undefined);
        let mut argv = Vec::new();
        if let Some(Value::Object(arr)) = a.get(1) {
            let len = match it.get_raw(*arr, "length") {
                Some(Value::Num(n)) => n as usize,
                _ => 0,
            };
            for i in 0..len {
                argv.push(it.get_raw(*arr, &i.to_string()).unwrap_or(Value::Undefined));
            }
        }
        it.call_value(&this, bound_this, &argv, crate::context::CtxId::ROOT)
    });
    it.set_raw(proto, "apply", Value::Object(apply));
}

fn array_len(it: &Interp<'_>, arr: ObjId) -> usize {
    match it.get_raw(arr, "length") {
        Some(Value::Num(n)) if n >= 0.0 => n as usize,
        _ => 0,
    }
}

fn install_array_proto(it: &mut Interp<'_>) {
    let proto = it.protos.array;
    let defs: &[(&'static str, crate::machine::NativeFn)] = &[
        ("push", |it, this, a| {
            let Value::Object(arr) = this else {
                return Ok(Value::Num(0.0));
            };
            let mut len = array_len(it, arr);
            for v in a {
                it.set_raw(arr, &len.to_string(), v.clone());
                len += 1;
            }
            it.set_raw(arr, "length", Value::Num(len as f64));
            Ok(Value::Num(len as f64))
        }),
        ("pop", |it, this, _| {
            let Value::Object(arr) = this else {
                return Ok(Value::Undefined);
            };
            let len = array_len(it, arr);
            if len == 0 {
                return Ok(Value::Undefined);
            }
            let key = it.prog.interner.intern(&(len - 1).to_string());
            let v = it
                .obj_mut(arr)
                .props
                .remove(key)
                .map(|s| s.value)
                .unwrap_or(Value::Undefined);
            it.set_raw(arr, "length", Value::Num(len as f64 - 1.0));
            Ok(v)
        }),
        ("join", |it, this, a| {
            let Value::Object(arr) = this else {
                return Ok(Value::Str(Rc::from("")));
            };
            let sep = match a.first() {
                Some(v) => it.value_to_string(v)?.to_string(),
                None => ",".to_owned(),
            };
            let len = array_len(it, arr);
            let mut parts = Vec::with_capacity(len);
            for i in 0..len {
                let v = it.get_raw(arr, &i.to_string()).unwrap_or(Value::Undefined);
                parts.push(match v {
                    Value::Undefined | Value::Null => String::new(),
                    v => it.value_to_string(&v)?.to_string(),
                });
            }
            Ok(Value::Str(Rc::from(parts.join(&sep).as_str())))
        }),
        ("indexOf", |it, this, a| {
            let Value::Object(arr) = this else {
                return Ok(Value::Num(-1.0));
            };
            let needle = a.first().cloned().unwrap_or(Value::Undefined);
            let len = array_len(it, arr);
            for i in 0..len {
                let v = it.get_raw(arr, &i.to_string()).unwrap_or(Value::Undefined);
                if coerce::strict_eq(&v, &needle) {
                    return Ok(Value::Num(i as f64));
                }
            }
            Ok(Value::Num(-1.0))
        }),
        ("slice", |it, this, a| {
            let Value::Object(arr) = this else {
                return Ok(Value::Undefined);
            };
            let len = array_len(it, arr) as f64;
            let start = norm_index(arg_num(a, 0, 0.0), len);
            let end = norm_index(arg_num(a, 1, len), len);
            let out = it.alloc(ObjClass::Array, Some(it.protos.array));
            let mut n = 0usize;
            let mut i = start;
            while i < end {
                if let Some(v) = it.get_raw(arr, &(i as usize).to_string()) {
                    it.set_raw(out, &n.to_string(), v);
                }
                n += 1;
                i += 1.0;
            }
            it.set_raw(out, "length", Value::Num(n as f64));
            Ok(Value::Object(out))
        }),
        ("concat", |it, this, a| {
            let out = it.alloc(ObjClass::Array, Some(it.protos.array));
            let mut n = 0usize;
            let push_all = |it: &mut Interp<'_>, v: &Value, n: &mut usize| match v {
                Value::Object(src) if it.obj(*src).class == ObjClass::Array => {
                    let len = array_len(it, *src);
                    for i in 0..len {
                        let e = it.get_raw(*src, &i.to_string()).unwrap_or(Value::Undefined);
                        it.set_raw(out, &n.to_string(), e);
                        *n += 1;
                    }
                }
                other => {
                    it.set_raw(out, &n.to_string(), other.clone());
                    *n += 1;
                }
            };
            push_all(it, &this, &mut n);
            for v in a {
                push_all(it, v, &mut n);
            }
            it.set_raw(out, "length", Value::Num(n as f64));
            Ok(Value::Object(out))
        }),
        ("shift", |it, this, _| {
            let Value::Object(arr) = this else {
                return Ok(Value::Undefined);
            };
            let len = array_len(it, arr);
            if len == 0 {
                return Ok(Value::Undefined);
            }
            let first = it.get_raw(arr, "0").unwrap_or(Value::Undefined);
            for i in 1..len {
                let v = it.get_raw(arr, &i.to_string()).unwrap_or(Value::Undefined);
                it.set_raw(arr, &(i - 1).to_string(), v);
            }
            let last = it.prog.interner.intern(&(len - 1).to_string());
            it.obj_mut(arr).props.remove(last);
            it.set_raw(arr, "length", Value::Num(len as f64 - 1.0));
            Ok(first)
        }),
        ("toString", |it, this, _| {
            let s = it.display(&this);
            Ok(Value::Str(Rc::from(s.as_str())))
        }),
    ];
    for (name, f) in defs {
        let n = it.register_native(name, *f);
        it.set_raw(proto, name, Value::Object(n));
    }
}

fn norm_index(i: f64, len: f64) -> f64 {
    if i.is_nan() {
        return 0.0;
    }
    if i < 0.0 {
        (len + i).max(0.0)
    } else {
        i.min(len)
    }
}

fn install_string_proto(it: &mut Interp<'_>) {
    let proto = it.protos.string;
    let defs: &[(&'static str, crate::machine::NativeFn)] = &[
        ("charAt", |it, this, a| {
            let s = this_string(it, &this)?;
            let i = arg_num(a, 0, 0.0);
            Ok(Value::Str(Rc::from(stdlib::char_at(&s, i).as_str())))
        }),
        ("charCodeAt", |it, this, a| {
            let s = this_string(it, &this)?;
            let i = arg_num(a, 0, 0.0);
            Ok(Value::Num(stdlib::char_code_at(&s, i)))
        }),
        ("indexOf", |it, this, a| {
            let s = this_string(it, &this)?;
            let needle = arg_string(it, a, 0)?;
            Ok(Value::Num(stdlib::index_of(&s, &needle)))
        }),
        ("lastIndexOf", |it, this, a| {
            let s = this_string(it, &this)?;
            let needle = arg_string(it, a, 0)?;
            Ok(Value::Num(stdlib::last_index_of(&s, &needle)))
        }),
        ("substr", |it, this, a| {
            let s = this_string(it, &this)?;
            let start = arg_num(a, 0, 0.0);
            let len = arg_num(a, 1, f64::INFINITY);
            Ok(Value::Str(Rc::from(
                stdlib::substr(&s, start, len).as_str(),
            )))
        }),
        ("substring", |it, this, a| {
            let s = this_string(it, &this)?;
            let start = arg_num(a, 0, 0.0);
            let end = arg_num(a, 1, f64::INFINITY);
            Ok(Value::Str(Rc::from(
                stdlib::substring(&s, start, end).as_str(),
            )))
        }),
        ("slice", |it, this, a| {
            let s = this_string(it, &this)?;
            let start = arg_num(a, 0, 0.0);
            let end = arg_num(a, 1, f64::INFINITY);
            Ok(Value::Str(Rc::from(
                stdlib::str_slice(&s, start, end).as_str(),
            )))
        }),
        ("toUpperCase", |it, this, _| {
            let s = this_string(it, &this)?;
            Ok(Value::Str(Rc::from(s.to_uppercase().as_str())))
        }),
        ("toLowerCase", |it, this, _| {
            let s = this_string(it, &this)?;
            Ok(Value::Str(Rc::from(s.to_lowercase().as_str())))
        }),
        ("trim", |it, this, _| {
            let s = this_string(it, &this)?;
            Ok(Value::Str(Rc::from(s.trim())))
        }),
        ("concat", |it, this, a| {
            let mut s = this_string(it, &this)?.to_string();
            for v in a {
                s.push_str(&it.value_to_string(v)?);
            }
            Ok(Value::Str(Rc::from(s.as_str())))
        }),
        ("split", |it, this, a| {
            let s = this_string(it, &this)?;
            let parts = match a.first() {
                Some(Value::Str(sep)) => stdlib::split(&s, sep),
                _ => vec![s.to_string()],
            };
            let arr = it.alloc(ObjClass::Array, Some(it.protos.array));
            it.set_raw(arr, "length", Value::Num(parts.len() as f64));
            for (i, p) in parts.iter().enumerate() {
                it.set_raw(arr, &i.to_string(), Value::Str(Rc::from(p.as_str())));
            }
            Ok(Value::Object(arr))
        }),
        ("replace", |it, this, a| {
            let s = this_string(it, &this)?;
            let pat = arg_string(it, a, 0)?;
            let rep = arg_string(it, a, 1)?;
            Ok(Value::Str(Rc::from(
                stdlib::replace_first(&s, &pat, &rep).as_str(),
            )))
        }),
        ("toString", |it, this, _| {
            let s = this_string(it, &this)?;
            Ok(Value::Str(s))
        }),
    ];
    for (name, f) in defs {
        let n = it.register_native(name, *f);
        it.set_raw(proto, name, Value::Object(n));
    }
}

fn install_number_proto(it: &mut Interp<'_>) {
    let proto = it.protos.number;
    let to_string = it.register_native("toString", |it, this, _| {
        let s = it.value_to_string(&this)?;
        Ok(Value::Str(s))
    });
    it.set_raw(proto, "toString", Value::Object(to_string));
    it.set_raw(it.protos.boolean, "toString", Value::Object(to_string));
}

/// Looks up a property slot on an object for tests.
pub fn own_slot(it: &Interp<'_>, obj: ObjId, key: &str) -> Option<Slot<()>> {
    let key = it.prog.interner.get(key)?;
    it.obj(obj).props.get(key).cloned()
}
