//! # determinacy
//!
//! Dynamic determinacy analysis — a from-scratch Rust reproduction of
//! *"Dynamic Determinacy Analysis"* (Schäfer, Sridharan, Dolby, Tip,
//! PLDI 2013).
//!
//! The analysis observes a *single* execution of a JavaScript program under
//! an instrumented semantics and infers **determinacy facts** — statements
//! `J e K ctx = v` asserting that an expression has the same value at a
//! program point (qualified by a full calling context) in *every*
//! execution. Key ingredients, all implemented here:
//!
//! * instrumented values `v!` / `v?` and the rules of Figure 9
//!   ([`machine`], [`exec`]);
//! * O(1) heap flushes via an epoch counter (§4), with open/closed
//!   records;
//! * **counterfactual execution** of branches guarded by
//!   indeterminate-false conditions, with undo logs and the nesting
//!   cut-off `k` (rules ĈNTR / ĈNTRABORT);
//! * hand-written native models and a DOM model with the optional
//!   (unsound) `DetDOM` assumption of §5.1 ([`natives`], [`dom_models`]);
//! * a fact database with full-call-stack contexts and per-activation
//!   occurrence indices — the paper's `24₀→15` notation ([`facts`]);
//! * an executable soundness harness for Theorem 1 ([`modeling`]);
//! * a fault-tolerant run supervisor — panic isolation, cooperative
//!   deadlines/cancellation, heap-cell budgets, and (behind the
//!   `fault-inject` feature) deterministic fault injection
//!   ([`supervisor`]).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), mujs_syntax::SyntaxError> {
//! use determinacy::driver::analyze_src;
//! let out = analyze_src(
//!     "var x = { f: 23 }, y = { f: Math.random() * 100 };",
//! )?;
//! // x.f is determinate, y.f is not; the database reflects both.
//! assert!(out.facts.det_count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod cachekey;
pub mod config;
pub mod det;
pub mod dom_models;
pub mod driver;
pub mod exec;
pub mod facts;
pub mod inject;
pub mod machine;
pub mod modeling;
pub mod multirun;
pub mod natives;
pub mod shortcut;
pub mod supervisor;

pub use config::{AnalysisConfig, AnalysisStats, AnalysisStatus};
pub use det::{DValue, Det, FactValue, SlotAnn};
pub use driver::{analyze_src, AnalysisOutcome, DetHarness};
pub use facts::{Fact, FactDb, FactKind, TripFact};
pub use inject::{injectable_facts, InjectablePairs};
pub use machine::{DErr, DFlow, DMachine, DObservation};
pub use shortcut::{determinate_regions, shortcut_summaries, PortableSummaries, ShortcutOutcome};
#[cfg(feature = "fault-inject")]
pub use supervisor::FaultPlan;
pub use supervisor::{
    supervised_analyze, supervised_analyze_dom, CancelToken, RunFailure, RunHooks,
};
