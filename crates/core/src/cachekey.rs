//! Content-address hashing shared by every cache in the workspace.
//!
//! Two subsystems key work by *content* rather than by name: the batch
//! checkpoint (`mujs-jobs`, one key per settled job) and the analysis
//! service's stage cache (`mujs-serve`, one key per pipeline stage).
//! Both must agree on one hashing implementation — a checkpoint written
//! by one build and read by another, or a disk-persisted stage entry,
//! survives only if the digest function never drifts. This module is that
//! single implementation: FNV-1a over 64 bits, chained over
//! length-delimited chunks.
//!
//! FNV-1a is not cryptographic; these keys defend against *staleness*
//! (an input changed, so the key changes), not against an adversary
//! manufacturing collisions. Every consumer treats a key hit as "the
//! inputs were byte-identical with overwhelming probability", and every
//! stored artifact is deterministic given its inputs, so a collision
//! could at worst resurrect a well-formed row for different inputs —
//! detectable, and astronomically unlikely at the workspace's key
//! volumes.
//!
//! The digest values are **pinned by tests**: changing the algorithm (or
//! the chunk-delimiting scheme) silently invalidates every persisted
//! checkpoint and cache entry, so the stability test below fails loudly
//! instead.

/// The FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into the running FNV-1a state `h`.
#[must_use]
pub fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV1A64_PRIME);
    }
    h
}

/// A chained content-key builder over heterogeneous fields.
///
/// Fields are length-delimited (each chunk is preceded by its byte length
/// folded into the state), so `("ab", "c")` and `("a", "bc")` produce
/// different keys — plain concatenation would not.
///
/// # Examples
///
/// ```
/// use determinacy::cachekey::KeyHasher;
/// let a = KeyHasher::new().str("src").u64(7).finish();
/// let b = KeyHasher::new().str("src").u64(8).finish();
/// assert_ne!(a, b);
/// assert_eq!(a.len(), 16, "keys render as 16 hex digits");
/// ```
#[derive(Debug, Clone)]
pub struct KeyHasher {
    h: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        KeyHasher { h: FNV1A64_OFFSET }
    }

    /// Folds a length-delimited byte chunk.
    #[must_use]
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        self.h = fnv1a64(self.h, &(bytes.len() as u64).to_le_bytes());
        self.h = fnv1a64(self.h, bytes);
        self
    }

    /// Folds a length-delimited string chunk.
    #[must_use]
    pub fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes())
    }

    /// Folds a `u64` (fixed-width little-endian, no length prefix).
    #[must_use]
    pub fn u64(mut self, n: u64) -> Self {
        self.h = fnv1a64(self.h, &n.to_le_bytes());
        self
    }

    /// Folds an optional `u64`; `None` hashes as `u64::MAX` with a
    /// distinguishing tag so `Some(u64::MAX)` and `None` differ.
    #[must_use]
    pub fn opt_u64(self, n: Option<u64>) -> Self {
        match n {
            Some(v) => self.u64(1).u64(v),
            None => self.u64(0),
        }
    }

    /// The raw 64-bit digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.h
    }

    /// The digest rendered as the canonical 16-digit lowercase hex key.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{:016x}", self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The digests below are load-bearing: `mujs-jobs` checkpoints and
    /// `mujs-serve` cache entries persist keys produced by this module,
    /// so any change to the algorithm must be deliberate (bump the
    /// consumers' file-format versions) rather than accidental.
    #[test]
    fn digests_are_stable() {
        // Bare FNV-1a vectors.
        assert_eq!(fnv1a64(FNV1A64_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(FNV1A64_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(FNV1A64_OFFSET, b"foobar"), 0x85944171f73967e8);
        // Chained builder vectors (length-delimited chunks).
        assert_eq!(KeyHasher::new().finish(), "cbf29ce484222325");
        assert_eq!(KeyHasher::new().str("").finish(), "a8c7f832281a39c5");
        assert_eq!(
            KeyHasher::new().str("var x = 1;").u64(42).finish(),
            "077922be2fcbf85b"
        );
        assert_eq!(
            KeyHasher::new().opt_u64(None).finish(),
            KeyHasher::new().u64(0).finish()
        );
    }

    #[test]
    fn chunking_is_length_delimited() {
        let ab_c = KeyHasher::new().str("ab").str("c").finish();
        let a_bc = KeyHasher::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
        let some_max = KeyHasher::new().opt_u64(Some(u64::MAX)).finish();
        let none = KeyHasher::new().opt_u64(None).finish();
        assert_ne!(some_max, none);
    }
}
