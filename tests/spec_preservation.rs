//! Semantic preservation of the specializer: on the input the facts were
//! collected from, the specialized program is observationally equivalent
//! to the original. (Facts are sound, so pruned branches are the ones
//! every execution takes, unrolled loops have exact trip counts, inlined
//! evals have the argument they were inlined from, and redirected calls
//! target behaviorally identical clones.)

use determinacy::{AnalysisConfig, DetHarness};
use mujs_gen::{generate, GenConfig};
use mujs_interp::{Interp, InterpOptions};
use mujs_specialize::{specialize, SpecConfig};
use proptest::prelude::*;

fn run_concrete(prog: &mujs_ir::Program, seed: u64) -> (Vec<String>, bool) {
    let mut p = prog.clone();
    let mut interp = Interp::new(
        &mut p,
        InterpOptions {
            seed,
            ..Default::default()
        },
    );
    let ok = interp.run().is_ok();
    (interp.output.clone(), ok)
}

fn check_preservation(src: &str, seed: u64, cfg: &SpecConfig) {
    let mut h = DetHarness::from_src(src).expect("parses");
    let mut out = h.analyze(AnalysisConfig {
        seed,
        flush_cap: None,
        ..Default::default()
    });
    let spec = specialize(&h.program, &out.facts, &mut out.ctxs, cfg);
    let (orig_out, orig_ok) = run_concrete(&h.program, seed);
    let (spec_out, spec_ok) = run_concrete(&spec.program, seed);
    assert_eq!(orig_ok, spec_ok, "completion status diverged:\n{src}");
    assert_eq!(
        orig_out, spec_out,
        "specialization changed behavior (report {:?}):\n{src}",
        spec.report
    );
}

#[test]
fn preservation_over_seed_sweep() {
    let gen_cfg = GenConfig::default();
    let spec_cfg = SpecConfig::default();
    for seed in 0..50u64 {
        let src = generate(seed ^ 0x0DD5, &gen_cfg);
        check_preservation(&src, seed.wrapping_mul(2654435761), &spec_cfg);
    }
}

#[test]
fn preservation_with_heavy_indeterminacy() {
    let gen_cfg = GenConfig {
        top_stmts: 14,
        indet_pct: 50,
        ..Default::default()
    };
    let spec_cfg = SpecConfig::default();
    for seed in 0..35u64 {
        let src = generate(seed ^ 0xCAFE, &gen_cfg);
        check_preservation(&src, seed.wrapping_mul(97) ^ 0x33, &spec_cfg);
    }
}

#[test]
fn preservation_per_transformation() {
    // Each rewrite in isolation preserves behavior.
    let gen_cfg = GenConfig {
        top_stmts: 12,
        indet_pct: 30,
        ..Default::default()
    };
    let configs = [
        SpecConfig {
            staticize_keys: false,
            unroll_loops: false,
            eliminate_eval: false,
            clone_functions: false,
            ..Default::default()
        },
        SpecConfig {
            prune_branches: false,
            unroll_loops: false,
            eliminate_eval: false,
            clone_functions: false,
            ..Default::default()
        },
        SpecConfig {
            prune_branches: false,
            staticize_keys: false,
            eliminate_eval: false,
            clone_functions: false,
            ..Default::default()
        },
        SpecConfig {
            prune_branches: false,
            staticize_keys: false,
            unroll_loops: false,
            clone_functions: false,
            ..Default::default()
        },
        SpecConfig {
            prune_branches: false,
            staticize_keys: false,
            unroll_loops: false,
            eliminate_eval: false,
            ..Default::default()
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        for seed in 0..12u64 {
            let src = generate(seed ^ (i as u64) << 8, &gen_cfg);
            check_preservation(&src, seed.wrapping_mul(13), cfg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_specialization_preserves_behavior(gen_seed in any::<u64>(), run_seed in any::<u64>()) {
        let cfg = GenConfig {
            top_stmts: 10,
            indet_pct: 30,
            ..Default::default()
        };
        let src = generate(gen_seed, &cfg);
        check_preservation(&src, run_seed, &SpecConfig::default());
    }
}
