//! Job specifications and batch manifests.
//!
//! A [`Manifest`] is the JSON interchange form of a batch: a list of
//! [`JobSpec`]s, each naming a program source, the seeds to fan out over,
//! and optional per-job analysis configuration and budgets. Manifests are
//! serialized through the workspace's serde shims, so they round-trip
//! offline.
//!
//! ```json
//! {
//!   "jobs": [
//!     { "name": "page-1", "src": "var x = 1;", "seeds": [1, 2, 3] },
//!     { "name": "page-2", "src": "f();", "deadline_ms": 2000, "mem_cells": 100000 }
//!   ]
//! }
//! ```
//!
//! `seeds` and `config` may be omitted (defaults apply); when `config` is
//! present it must be a complete [`AnalysisConfig`] object. The
//! `deadline_ms` / `mem_cells` shorthands override the corresponding
//! config budgets, which the machine enforces cooperatively at its poll
//! points exactly as under the PR 1 supervisor.

use determinacy::AnalysisConfig;
use serde::{Deserialize, Serialize};

/// One batch-analysis job: a source program plus how to analyze it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job name (report key and progress label).
    pub name: String,
    /// The JavaScript source to analyze.
    pub src: String,
    /// Seeds to fan out over; `null`/omitted means the default seed.
    pub seeds: Option<Vec<u64>>,
    /// Full analysis configuration; `null`/omitted means
    /// [`AnalysisConfig::default`].
    pub config: Option<AnalysisConfig>,
    /// Per-job wall-clock budget override (milliseconds).
    pub deadline_ms: Option<u64>,
    /// Per-job live heap-cell budget override.
    pub mem_cells: Option<u64>,
}

impl JobSpec {
    /// A job with default seeds and configuration.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            src: src.into(),
            seeds: None,
            config: None,
            deadline_ms: None,
            mem_cells: None,
        }
    }

    /// The seeds this job fans out over (the config's seed when
    /// unspecified).
    pub fn effective_seeds(&self) -> Vec<u64> {
        match &self.seeds {
            Some(s) if !s.is_empty() => s.clone(),
            _ => vec![self.effective_config().seed],
        }
    }

    /// The analysis configuration with the per-job budget overrides
    /// applied.
    pub fn effective_config(&self) -> AnalysisConfig {
        let mut c = self.config.clone().unwrap_or_default();
        if self.deadline_ms.is_some() {
            c.deadline_ms = self.deadline_ms;
        }
        if self.mem_cells.is_some() {
            c.mem_cell_budget = self.mem_cells;
        }
        c
    }
}

/// A batch of jobs. Job order is significant: it fixes the combination
/// and report order, which is what makes batch output independent of
/// worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// The jobs, in report order.
    pub jobs: Vec<JobSpec>,
}

impl Manifest {
    /// A manifest over the given jobs.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Manifest { jobs }
    }

    /// A manifest with one default job per `(name, src)` pair.
    pub fn from_named_sources(sources: Vec<(String, String)>) -> Self {
        Manifest {
            jobs: sources
                .into_iter()
                .map(|(name, src)| JobSpec::new(name, src))
                .collect(),
        }
    }

    /// Parses and validates a JSON manifest.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, an empty job list, or
    /// duplicate/empty job names.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let m: Manifest = serde_json::from_str(s).map_err(|e| format!("manifest JSON: {e:?}"))?;
        m.validate()?;
        Ok(m)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for these types).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Builds a manifest from every `*.js` file in `dir`, sorted by file
    /// name (so the manifest — and therefore the report — is independent
    /// of directory iteration order).
    ///
    /// # Errors
    ///
    /// I/O errors reading the directory or a file, or a validation error
    /// when the directory holds no `.js` files.
    pub fn from_dir(dir: &std::path::Path) -> Result<Self, String> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("read dir {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "js"))
            .collect();
        paths.sort();
        let mut jobs = Vec::new();
        for p in paths {
            let src =
                std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            jobs.push(JobSpec::new(name, src));
        }
        let m = Manifest { jobs };
        m.validate()
            .map_err(|e| format!("{e} (in {})", dir.display()))?;
        Ok(m)
    }

    /// A manifest over a built-in corpus suite: `"jquery"` (the four
    /// jQuery-like versions), `"evalbench"` (the 24 runnable eval
    /// benchmarks), or `"all"` (both). Suite jobs analyze the raw sources
    /// against an empty default document — they exercise batch scheduling
    /// and determinism, not the Table 1 DOM/event fidelity (that is what
    /// the `table1` binary's pooled pipeline is for).
    pub fn suite(name: &str) -> Option<Self> {
        let mut sources = Vec::new();
        match name {
            "jquery" => sources.extend(mujs_corpus::jquery_like::named_sources()),
            "evalbench" => sources.extend(mujs_corpus::evalbench::named_sources()),
            "all" => {
                sources.extend(mujs_corpus::jquery_like::named_sources());
                sources.extend(mujs_corpus::evalbench::named_sources());
            }
            _ => return None,
        }
        Some(Manifest::from_named_sources(sources))
    }

    /// Checks batch invariants: at least one job, every name non-empty
    /// and unique.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("manifest has no jobs".to_owned());
        }
        let mut seen = std::collections::HashSet::new();
        for j in &self.jobs {
            if j.name.is_empty() {
                return Err("job with empty name".to_owned());
            }
            if !seen.insert(j.name.as_str()) {
                return Err(format!("duplicate job name `{}`", j.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest::new(vec![
            JobSpec {
                seeds: Some(vec![1, 2, 3]),
                deadline_ms: Some(5000),
                ..JobSpec::new("a", "var x = 1;")
            },
            JobSpec::new("b", "var y = 2;"),
        ]);
        let m2 = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m2.jobs.len(), 2);
        assert_eq!(m2.jobs[0].effective_seeds(), vec![1, 2, 3]);
        assert_eq!(m2.jobs[0].effective_config().deadline_ms, Some(5000));
        assert_eq!(
            m2.jobs[1].effective_seeds(),
            vec![AnalysisConfig::default().seed]
        );
    }

    #[test]
    fn validation_rejects_duplicates_and_empties() {
        assert!(Manifest::new(vec![]).validate().is_err());
        let dup = Manifest::new(vec![JobSpec::new("x", "1;"), JobSpec::new("x", "2;")]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn suites_cover_the_corpus() {
        assert_eq!(Manifest::suite("jquery").unwrap().jobs.len(), 4);
        assert_eq!(Manifest::suite("evalbench").unwrap().jobs.len(), 24);
        assert_eq!(Manifest::suite("all").unwrap().jobs.len(), 28);
        assert!(Manifest::suite("nope").is_none());
        Manifest::suite("all").unwrap().validate().unwrap();
    }

    #[test]
    fn budget_overrides_land_in_the_config() {
        let j = JobSpec {
            mem_cells: Some(1234),
            ..JobSpec::new("m", "var z = 3;")
        };
        assert_eq!(j.effective_config().mem_cell_budget, Some(1234));
        assert_eq!(j.effective_config().deadline_ms, None);
    }
}
