//! Textual dump of the IR, for debugging, golden tests, and inspecting
//! specializer output.

use crate::ir::*;
use std::fmt::Write as _;

/// Renders every function of a program.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for f in &prog.funcs {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

/// Renders a single function.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let ast = mujs_syntax::parse("var x = 1;")?;
/// let prog = mujs_ir::lower::lower_program(&ast);
/// let text = mujs_ir::pretty::print_function(prog.func(prog.entry().unwrap()));
/// assert!(text.contains("x = %0"));
/// # Ok(())
/// # }
/// ```
pub fn print_function(f: &Function) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 1,
    };
    let name = f.name.as_deref().unwrap_or("<anon>");
    let params: Vec<&str> = f.params.iter().map(|s| &**s).collect();
    let _ = writeln!(
        p.out,
        "{} {name}({}) {{ // kind={:?} temps={}",
        f.id,
        params.join(", "),
        f.kind,
        f.n_temps
    );
    if !f.decls.vars.is_empty() {
        let vars: Vec<&str> = f.decls.vars.iter().map(|s| &**s).collect();
        let _ = writeln!(p.out, "  var {};", vars.join(", "));
    }
    for (n, fid) in &f.decls.funcs {
        let _ = writeln!(p.out, "  hoist {n} = closure {fid};");
    }
    p.block(&f.body);
    p.out.push_str("}\n");
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn block(&mut self, b: &Block) {
        for s in b {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let id = s.id;
        match &s.kind {
            StmtKind::Const { dst, lit } => {
                self.line(&format!("{id}: {dst} = {}", fmt_lit(lit)))
            }
            StmtKind::Copy { dst, src } => self.line(&format!("{id}: {dst} = {src}")),
            StmtKind::Closure { dst, func } => {
                self.line(&format!("{id}: {dst} = closure {func}"))
            }
            StmtKind::NewObject { dst, is_array } => self.line(&format!(
                "{id}: {dst} = {}",
                if *is_array { "[]" } else { "{}" }
            )),
            StmtKind::GetProp { dst, obj, key } => {
                self.line(&format!("{id}: {dst} = {obj}{key}"))
            }
            StmtKind::SetProp { obj, key, val } => {
                self.line(&format!("{id}: {obj}{key} = {val}"))
            }
            StmtKind::DeleteProp { dst, obj, key } => {
                self.line(&format!("{id}: {dst} = delete {obj}{key}"))
            }
            StmtKind::BinOp { dst, op, lhs, rhs } => {
                self.line(&format!("{id}: {dst} = {lhs} {} {rhs}", op.as_str()))
            }
            StmtKind::UnOp { dst, op, src } => {
                self.line(&format!("{id}: {dst} = {} {src}", op.as_str()))
            }
            StmtKind::Call {
                dst,
                callee,
                this_arg,
                args,
            } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                let this = match this_arg {
                    Some(t) => format!(" this={t}"),
                    None => String::new(),
                };
                self.line(&format!(
                    "{id}: {dst} = call {callee}({}){this}",
                    args.join(", ")
                ));
            }
            StmtKind::New { dst, callee, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                self.line(&format!("{id}: {dst} = new {callee}({})", args.join(", ")));
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.line(&format!("{id}: if {cond} {{"));
                self.indent += 1;
                self.block(then_blk);
                self.indent -= 1;
                if else_blk.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.block(else_blk);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::Loop {
                cond_blk,
                cond,
                body,
                update,
                check_cond_first,
            } => {
                self.line(&format!(
                    "{id}: loop{} {{",
                    if *check_cond_first { "" } else { " (do-while)" }
                ));
                self.indent += 1;
                self.line("cond:");
                self.indent += 1;
                self.block(cond_blk);
                self.line(&format!("test {cond}"));
                self.indent -= 1;
                self.line("body:");
                self.indent += 1;
                self.block(body);
                self.indent -= 1;
                if !update.is_empty() {
                    self.line("update:");
                    self.indent += 1;
                    self.block(update);
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Breakable { body } => {
                self.line(&format!("{id}: breakable {{"));
                self.indent += 1;
                self.block(body);
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                self.line(&format!("{id}: try {{"));
                self.indent += 1;
                self.block(block);
                self.indent -= 1;
                if let Some((name, b)) = catch {
                    self.line(&format!("}} catch ({name}) {{"));
                    self.indent += 1;
                    self.block(b);
                    self.indent -= 1;
                }
                if let Some(b) = finally {
                    self.line("} finally {");
                    self.indent += 1;
                    self.block(b);
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Return { arg } => match arg {
                Some(a) => self.line(&format!("{id}: return {a}")),
                None => self.line(&format!("{id}: return")),
            },
            StmtKind::Break => self.line(&format!("{id}: break")),
            StmtKind::Continue => self.line(&format!("{id}: continue")),
            StmtKind::Throw { arg } => self.line(&format!("{id}: throw {arg}")),
            StmtKind::LoadThis { dst } => self.line(&format!("{id}: {dst} = this")),
            StmtKind::TypeofName { dst, name } => {
                self.line(&format!("{id}: {dst} = typeof-name {name}"))
            }
            StmtKind::HasProp { dst, key, obj } => {
                self.line(&format!("{id}: {dst} = {key} in {obj}"))
            }
            StmtKind::InstanceOf { dst, val, ctor } => {
                self.line(&format!("{id}: {dst} = {val} instanceof {ctor}"))
            }
            StmtKind::EnumProps { dst, obj } => {
                self.line(&format!("{id}: {dst} = enum-props {obj}"))
            }
            StmtKind::Eval { dst, arg } => self.line(&format!("{id}: {dst} = eval {arg}")),
        }
    }
}

fn fmt_lit(l: &mujs_syntax::ast::Lit) -> String {
    use mujs_syntax::ast::Lit;
    match l {
        Lit::Num(n) => mujs_syntax::pretty::num_to_str(*n),
        Lit::Str(s) => mujs_syntax::pretty::quote_str(s),
        Lit::Bool(b) => b.to_string(),
        Lit::Null => "null".to_owned(),
        Lit::Undefined => "undefined".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use mujs_syntax::parse;

    #[test]
    fn dump_contains_all_functions() {
        let prog = lower_program(&parse("function f() {} function g() {}").unwrap());
        let text = print_program(&prog);
        assert!(text.contains("f0"));
        assert!(text.contains(" f("));
        assert!(text.contains(" g("));
    }

    #[test]
    fn dump_renders_control_flow() {
        let prog =
            lower_program(&parse("while (c) { if (d) { break; } }").unwrap());
        let text = print_program(&prog);
        assert!(text.contains("loop"));
        assert!(text.contains("if "));
        assert!(text.contains("break"));
    }
}
