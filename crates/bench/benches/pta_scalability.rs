//! Table 1's timing dimension: pointer-analysis work on the jQuery-like
//! corpus, baseline vs determinacy-specialized, and delta solver vs the
//! naive reference solver. Reports wall time per solve; a summary line
//! per program prints propagations/sec so throughput is visible without
//! digging into criterion's estimates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use determinacy::AnalysisConfig;
use mujs_pta::PtaConfig;
use mujs_specialize::SpecConfig;
use std::time::Instant;

fn programs() -> Vec<(&'static str, mujs_ir::Program, mujs_ir::Program)> {
    let mut out = Vec::new();
    for v in [
        mujs_corpus::jquery_like::v1_0(),
        mujs_corpus::jquery_like::v1_2(),
    ] {
        let mut h = determinacy::DetHarness::from_src(&v.src).expect("parses");
        let mut a = h.analyze_dom(AnalysisConfig::default(), v.doc.clone(), &v.plan);
        let spec =
            mujs_specialize::specialize(&h.program, &a.facts, &mut a.ctxs, &SpecConfig::default());
        out.push((v.version, h.program.clone(), spec.program));
    }
    out
}

/// One-shot throughput probe: propagations/sec for a single solve.
fn throughput(
    p: &mujs_ir::Program,
    cfg: &PtaConfig,
    solve: fn(&mujs_ir::Program, &PtaConfig) -> mujs_pta::PtaResult,
) -> (u64, f64) {
    let t = Instant::now();
    let r = solve(p, cfg);
    let secs = t.elapsed().as_secs_f64();
    (
        r.stats.propagations,
        r.stats.propagations as f64 / secs.max(1e-9),
    )
}

fn bench(c: &mut Criterion) {
    let progs = programs();
    let cfg = PtaConfig {
        budget: 50_000_000,
        ..Default::default()
    };
    for (version, baseline, _) in &progs {
        let (work, delta_ps) = throughput(baseline, &cfg, mujs_pta::solve);
        let (_, ref_ps) = throughput(baseline, &cfg, mujs_pta::solve_reference);
        eprintln!(
            "pta_scalability {version}: work={work} delta={:.1}M props/s reference={:.1}M props/s ({:.2}x)",
            delta_ps / 1e6,
            ref_ps / 1e6,
            delta_ps / ref_ps.max(1e-9),
        );
    }
    let mut g = c.benchmark_group("pta_scalability");
    g.sample_size(10);
    for (version, baseline, spec) in &progs {
        g.bench_with_input(BenchmarkId::new("baseline", version), baseline, |b, p| {
            b.iter(|| mujs_pta::solve(p, &cfg).stats.propagations)
        });
        g.bench_with_input(BenchmarkId::new("reference", version), baseline, |b, p| {
            b.iter(|| mujs_pta::solve_reference(p, &cfg).stats.propagations)
        });
        g.bench_with_input(BenchmarkId::new("spec", version), spec, |b, p| {
            b.iter(|| mujs_pta::solve(p, &cfg).stats.propagations)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
