//! Derive macros for the offline serde shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, parsing the raw token stream
//! directly (syn/quote are not available offline):
//!
//! * structs with named fields,
//! * enums with unit, struct, and tuple variants (externally tagged).
//!
//! Unsupported shapes (generics, tuple structs) produce a compile error
//! naming the limitation. Field types containing commas are handled by
//! tracking angle-bracket depth, so `HashMap<K, V>` fields parse; type
//! parameters on the *container* are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Named fields.
    Struct(Vec<String>),
    /// Number of positional fields.
    Tuple(usize),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match (&item, which) {
                (Item::Struct { name, fields }, Which::Serialize) => struct_serialize(name, fields),
                (Item::Struct { name, fields }, Which::Deserialize) => {
                    struct_deserialize(name, fields)
                }
                (Item::Enum { name, variants }, Which::Serialize) => enum_serialize(name, variants),
                (Item::Enum { name, variants }, Which::Deserialize) => {
                    enum_deserialize(name, variants)
                }
            };
            code.parse().expect("derive output parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => {
            return Err(format!(
                "serde shim derive supports only brace-bodied items, got {other:?}"
            ))
        }
    };
    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        // Skip the type: everything up to a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < body.len() && !matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn count_tuple_fields(inner: &[TokenTree]) -> usize {
    if inner.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut n = 1;
    for t in inner {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => n += 1,
            _ => {}
        }
    }
    n
}

// ---------------------------------------------------------------- codegen

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::json::Value {{\n\
             ::serde::json::Value::Object(::std::vec![{entries}])\n\
           }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(obj, {f:?})?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::json::Value)\n\
             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             let obj = v.as_object().ok_or_else(|| \
               ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
             let _ = obj;\n\
             ::std::result::Result::Ok({name} {{ {entries} }})\n\
           }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::json::Value::Str(\
                     ::std::string::String::from({vn:?})),"
                ),
                VariantKind::Struct(fields) => {
                    let binds = fields.join(", ");
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::json::Value::Object(\
                         ::std::vec![(::std::string::String::from({vn:?}), \
                         ::serde::json::Value::Object(::std::vec![{entries}]))]),"
                    )
                }
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(x0) => ::serde::json::Value::Object(::std::vec![(\
                     ::std::string::String::from({vn:?}), \
                     ::serde::Serialize::to_value(x0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                    let items: String = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::json::Value::Object(::std::vec![(\
                         ::std::string::String::from({vn:?}), \
                         ::serde::json::Value::Array(::std::vec![{items}]))]),",
                        binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::json::Value {{\n\
             match self {{ {arms} }}\n\
           }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Struct(fields) => {
                    let entries: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(obj, {f:?})?,"))
                        .collect();
                    Some(format!(
                        "{vn:?} => {{\n\
                           let obj = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?;\n\
                           ::std::result::Result::Ok({name}::{vn} {{ {entries} }})\n\
                         }}"
                    ))
                }
                VariantKind::Tuple(1) => Some(format!(
                    "{vn:?} => ::std::result::Result::Ok(\
                     {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                 &arr[{k}])?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vn:?} => {{\n\
                           let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?;\n\
                           if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                           ::std::result::Result::Ok({name}::{vn}({items}))\n\
                         }}"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::json::Value)\n\
             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             match v {{\n\
               ::serde::json::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                   ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
               }},\n\
               ::serde::json::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                   {tagged_arms}\n\
                   other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
                 }}\n\
               }}\n\
               _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected string or single-key object for {name}\")),\n\
             }}\n\
           }}\n\
         }}"
    )
}
