//! Recursive-descent parser for the muJS JavaScript subset.
//!
//! Expression parsing uses precedence climbing. Automatic semicolon
//! insertion is implemented in its pragmatic form: a missing `;` is accepted
//! when the next token is preceded by a line terminator, is `}`, or is the
//! end of input. The restricted productions (`return`, `throw`, `break`,
//! `continue`, postfix `++`/`--`) honor line terminators as in ES5.

use crate::ast::*;
use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword as Kw, Punct, Token, TokenKind};
use std::rc::Rc;

/// Parses a complete program.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mujs_syntax::SyntaxError> {
/// let program = mujs_syntax::parse("function f(x) { return x + 1; } f(41);")?;
/// assert_eq!(program.body.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut body = Vec::new();
    while !p.at_eof() {
        body.push(p.statement()?);
    }
    Ok(Program { body })
}

/// Parses a single expression (used by tests and by the `eval` machinery for
/// expression-position strings).
///
/// # Errors
///
/// Returns a [`SyntaxError`] if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum recursion-guard depth the parser allows. Inputs nested deeper
/// fail cleanly with [`SyntaxErrorKind::NestingTooDeep`] instead of risking
/// a stack overflow. One level of source nesting can consume up to two
/// guard entries (assignment chain + unary chain), so the guaranteed
/// source nesting depth is [`MAX_NESTING`]` / 2`.
///
/// The value is sized for a thread with [`PARSER_STACK_BYTES`] of stack
/// (the worst-case recursive-descent chain costs ~13 KiB per guard entry
/// in debug builds, leaving margin) — not for the 2 MiB default thread
/// stack. Callers handing the parser untrusted, potentially deep input
/// must go through [`parse_spawned`] or [`with_parser_stack`] (as
/// `DetHarness::from_src` and the `mujs-jobs` worker pool do); plain
/// [`parse`] on a default stack is only guaranteed for shallow input.
pub const MAX_NESTING: u32 = 1280;

/// Stack size for threads that run the recursive-descent chain on inputs
/// nested up to [`MAX_NESTING`]: eight times the old 2 MiB sizing, matching
/// the eightfold raise of the nesting guard.
pub const PARSER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Runs `f` on a freshly spawned thread with [`PARSER_STACK_BYTES`] of
/// stack and returns its result; panics in `f` resume on the caller.
///
/// The result type is intentionally *not* required to be `Send`: parser
/// and lowering output is threaded with `Rc<str>` interning, and this
/// helper exists precisely to build such a graph on a big stack and hand
/// it back. That transfer is sound because the graph is constructed
/// entirely on the spawned thread from the `Send` captures of `f`, every
/// `Rc` clone lives inside the returned value, and `join` synchronizes the
/// handoff — the graph is moved between threads, never shared. `f` must
/// not stash clones of the result's `Rc`s anywhere that outlives the call
/// (the parser and lowerer keep no such state).
pub fn with_parser_stack<T, F>(f: F) -> T
where
    F: FnOnce() -> T + Send,
{
    // Wholesale-transferred graph; see the invariant above.
    struct Graph<T>(T);
    unsafe impl<T> Send for Graph<T> {}
    std::thread::scope(|s| {
        let handle = std::thread::Builder::new()
            .name("mujs-parser".to_owned())
            .stack_size(PARSER_STACK_BYTES)
            .spawn_scoped(s, || Graph(f()))
            .expect("spawn parser thread");
        match handle.join() {
            Ok(g) => g.0,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// [`parse`] on a dedicated thread with [`PARSER_STACK_BYTES`] of stack,
/// so inputs nested up to the [`MAX_NESTING`] guard parse (or fail with a
/// clean [`SyntaxErrorKind::NestingTooDeep`]) without any risk of
/// overflowing a small caller stack.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
pub fn parse_spawned(src: &str) -> Result<Program, SyntaxError> {
    with_parser_stack(|| parse(src))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, off: usize) -> &Token {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: Punct) -> bool {
        self.peek().kind == TokenKind::Punct(p)
    }

    fn at_keyword(&self, k: Kw) -> bool {
        self.peek().kind == TokenKind::Keyword(k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Kw) -> bool {
        if self.at_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn unexpected(&self, expected: &str) -> SyntaxError {
        SyntaxError {
            kind: SyntaxErrorKind::UnexpectedToken {
                expected: expected.to_owned(),
                found: self.peek().kind.to_string(),
            },
            span: self.peek().span,
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, SyntaxError> {
        if self.at_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn expect_eof(&self) -> Result<(), SyntaxError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn ident(&mut self) -> Result<(Rc<str>, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name: Rc<str> = Rc::from(name.as_str());
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    /// Consumes a statement-terminating semicolon, applying automatic
    /// semicolon insertion.
    fn semicolon(&mut self) -> Result<(), SyntaxError> {
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        if self.at_punct(Punct::RBrace) || self.at_eof() || self.peek().newline_before {
            return Ok(());
        }
        Err(self.unexpected("`;`"))
    }

    /// Enters one level of recursive nesting; fails past [`MAX_NESTING`].
    fn enter_nested(&mut self) -> Result<(), SyntaxError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(SyntaxError {
                kind: SyntaxErrorKind::NestingTooDeep,
                span: self.peek().span,
            });
        }
        Ok(())
    }

    // ---------------------------------------------------------------- stmts

    fn statement(&mut self) -> Result<Stmt, SyntaxError> {
        self.enter_nested()?;
        let r = self.statement_unguarded();
        self.depth -= 1;
        r
    }

    fn statement_unguarded(&mut self) -> Result<Stmt, SyntaxError> {
        let start = self.peek().span;
        match &self.peek().kind {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let mut body = Vec::new();
                while !self.at_punct(Punct::RBrace) {
                    if self.at_eof() {
                        return Err(self.unexpected("`}`"));
                    }
                    body.push(self.statement()?);
                }
                let end = self.bump().span;
                Ok(Stmt::new(StmtKind::Block(body), start.to(end)))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, start))
            }
            TokenKind::Keyword(Kw::Var) => {
                self.bump();
                let decls = self.var_declarators()?;
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Var(decls), start))
            }
            TokenKind::Keyword(Kw::Function) => {
                let f = self.function(true)?;
                Ok(Stmt::new(StmtKind::FunctionDecl(Rc::new(f)), start))
            }
            TokenKind::Keyword(Kw::If) => self.if_statement(start),
            TokenKind::Keyword(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.statement()?;
                let span = start.to(body.span);
                Ok(Stmt::new(StmtKind::While(cond, Box::new(body)), span))
            }
            TokenKind::Keyword(Kw::Do) => {
                self.bump();
                let body = self.statement()?;
                if !self.eat_keyword(Kw::While) {
                    return Err(self.unexpected("`while`"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                let end = self.expect_punct(Punct::RParen)?;
                self.semicolon()?;
                Ok(Stmt::new(
                    StmtKind::DoWhile(Box::new(body), cond),
                    start.to(end),
                ))
            }
            TokenKind::Keyword(Kw::For) => self.for_statement(start),
            TokenKind::Keyword(Kw::Return) => {
                self.bump();
                let arg = if self.at_punct(Punct::Semi)
                    || self.at_punct(Punct::RBrace)
                    || self.at_eof()
                    || self.peek().newline_before
                {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Return(arg), start))
            }
            TokenKind::Keyword(Kw::Break) => {
                self.bump();
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Break, start))
            }
            TokenKind::Keyword(Kw::Continue) => {
                self.bump();
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Continue, start))
            }
            TokenKind::Keyword(Kw::Throw) => {
                self.bump();
                if self.peek().newline_before {
                    return Err(self.unexpected("expression on the same line as `throw`"));
                }
                let arg = self.expr()?;
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Throw(arg), start))
            }
            TokenKind::Keyword(Kw::Try) => self.try_statement(start),
            TokenKind::Keyword(Kw::Switch) => self.switch_statement(start),
            _ => {
                let e = self.expr()?;
                let span = start.to(e.span);
                self.semicolon()?;
                Ok(Stmt::new(StmtKind::Expr(e), span))
            }
        }
    }

    fn var_declarators(&mut self) -> Result<Declarators, SyntaxError> {
        let mut decls = Vec::new();
        loop {
            let (name, _) = self.ident()?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            decls.push((name, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    fn if_statement(&mut self, start: Span) -> Result<Stmt, SyntaxError> {
        self.bump(); // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then = self.statement()?;
        let (els, end) = if self.eat_keyword(Kw::Else) {
            let e = self.statement()?;
            let sp = e.span;
            (Some(Box::new(e)), sp)
        } else {
            (None, then.span)
        };
        Ok(Stmt::new(
            StmtKind::If(cond, Box::new(then), els),
            start.to(end),
        ))
    }

    fn for_statement(&mut self, start: Span) -> Result<Stmt, SyntaxError> {
        self.bump(); // for
        self.expect_punct(Punct::LParen)?;

        // Distinguish `for (var x in e)` / `for (x in e)` from `for (;;)`.
        if self.at_keyword(Kw::Var) {
            // Peek for `var ident in`.
            if matches!(self.peek_at(1).kind, TokenKind::Ident(_))
                && self.peek_at(2).kind == TokenKind::Keyword(Kw::In)
            {
                self.bump(); // var
                let (var, _) = self.ident()?;
                self.bump(); // in
                let obj = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.statement()?;
                let span = start.to(body.span);
                return Ok(Stmt::new(
                    StmtKind::ForIn {
                        decl: true,
                        var,
                        obj,
                        body: Box::new(body),
                    },
                    span,
                ));
            }
            self.bump(); // var
            let decls = self.var_declarators()?;
            self.expect_punct(Punct::Semi)?;
            return self.for_rest(start, Some(ForInit::Var(decls)));
        }

        if matches!(self.peek().kind, TokenKind::Ident(_))
            && self.peek_at(1).kind == TokenKind::Keyword(Kw::In)
        {
            let (var, _) = self.ident()?;
            self.bump(); // in
            let obj = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            let body = self.statement()?;
            let span = start.to(body.span);
            return Ok(Stmt::new(
                StmtKind::ForIn {
                    decl: false,
                    var,
                    obj,
                    body: Box::new(body),
                },
                span,
            ));
        }

        let init = if self.at_punct(Punct::Semi) {
            None
        } else {
            Some(ForInit::Expr(self.expr_no_in()?))
        };
        self.expect_punct(Punct::Semi)?;
        self.for_rest(start, init)
    }

    fn for_rest(&mut self, start: Span, init: Option<ForInit>) -> Result<Stmt, SyntaxError> {
        let test = if self.at_punct(Punct::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::Semi)?;
        let update = if self.at_punct(Punct::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.statement()?;
        let span = start.to(body.span);
        Ok(Stmt::new(
            StmtKind::For {
                init,
                test,
                update,
                body: Box::new(body),
            },
            span,
        ))
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, SyntaxError> {
        self.expect_punct(Punct::LBrace)?;
        let mut body = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            body.push(self.statement()?);
        }
        self.bump();
        Ok(body)
    }

    fn try_statement(&mut self, start: Span) -> Result<Stmt, SyntaxError> {
        self.bump(); // try
        let block = self.block_body()?;
        let catch = if self.eat_keyword(Kw::Catch) {
            self.expect_punct(Punct::LParen)?;
            let (name, _) = self.ident()?;
            self.expect_punct(Punct::RParen)?;
            Some((name, self.block_body()?))
        } else {
            None
        };
        let finally = if self.eat_keyword(Kw::Finally) {
            Some(self.block_body()?)
        } else {
            None
        };
        if catch.is_none() && finally.is_none() {
            return Err(self.unexpected("`catch` or `finally`"));
        }
        Ok(Stmt::new(
            StmtKind::Try {
                block,
                catch,
                finally,
            },
            start,
        ))
    }

    fn switch_statement(&mut self, start: Span) -> Result<Stmt, SyntaxError> {
        self.bump(); // switch
        self.expect_punct(Punct::LParen)?;
        let disc = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            let test = if self.eat_keyword(Kw::Case) {
                let t = self.expr()?;
                self.expect_punct(Punct::Colon)?;
                Some(t)
            } else if self.eat_keyword(Kw::Default) {
                self.expect_punct(Punct::Colon)?;
                None
            } else {
                return Err(self.unexpected("`case`, `default`, or `}`"));
            };
            let mut body = Vec::new();
            while !self.at_punct(Punct::RBrace)
                && !self.at_keyword(Kw::Case)
                && !self.at_keyword(Kw::Default)
            {
                body.push(self.statement()?);
            }
            cases.push(SwitchCase { test, body });
        }
        let end = self.bump().span;
        Ok(Stmt::new(StmtKind::Switch(disc, cases), start.to(end)))
    }

    fn function(&mut self, require_name: bool) -> Result<Function, SyntaxError> {
        let start = self.bump().span; // function
        let name = if matches!(self.peek().kind, TokenKind::Ident(_)) {
            Some(self.ident()?.0)
        } else if require_name {
            return Err(self.unexpected("function name"));
        } else {
            None
        };
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            loop {
                params.push(self.ident()?.0);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut body = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            body.push(self.statement()?);
        }
        let end = self.bump().span;
        Ok(Function {
            name,
            params,
            body,
            span: start.to(end),
        })
    }

    // ---------------------------------------------------------------- exprs

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.expr_impl(true)
    }

    /// Expression with the `in` operator excluded at the top level, for
    /// `for (e in ...)` disambiguation.
    fn expr_no_in(&mut self) -> Result<Expr, SyntaxError> {
        self.expr_impl(false)
    }

    fn expr_impl(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        let first = self.assign_expr_impl(allow_in)?;
        if !self.at_punct(Punct::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            items.push(self.assign_expr_impl(allow_in)?);
        }
        let span = items[0].span.to(items.last().expect("nonempty").span);
        Ok(Expr::new(ExprKind::Seq(items), span))
    }

    fn assign_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.assign_expr_impl(true)
    }

    fn assign_expr_impl(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        self.enter_nested()?;
        let r = self.assign_expr_unguarded(allow_in);
        self.depth -= 1;
        r
    }

    fn assign_expr_unguarded(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        let lhs = self.cond_expr(allow_in)?;
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Assign) => None,
            TokenKind::Punct(Punct::PlusAssign) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentAssign) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::AmpAssign) => Some(AssignOp::BitAnd),
            TokenKind::Punct(Punct::PipeAssign) => Some(AssignOp::BitOr),
            TokenKind::Punct(Punct::CaretAssign) => Some(AssignOp::BitXor),
            TokenKind::Punct(Punct::ShlAssign) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrAssign) => Some(AssignOp::Shr),
            TokenKind::Punct(Punct::UShrAssign) => Some(AssignOp::UShr),
            _ => return Ok(lhs),
        };
        if !is_assign_target(&lhs) {
            return Err(SyntaxError {
                kind: SyntaxErrorKind::InvalidAssignmentTarget,
                span: lhs.span,
            });
        }
        self.bump();
        let rhs = self.assign_expr_impl(allow_in)?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn cond_expr(&mut self, allow_in: bool) -> Result<Expr, SyntaxError> {
        let cond = self.binary_expr(0, allow_in)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let then = self.assign_expr()?;
        self.expect_punct(Punct::Colon)?;
        let els = self.assign_expr_impl(allow_in)?;
        let span = cond.span.to(els.span);
        Ok(Expr::new(
            ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
            span,
        ))
    }

    fn binary_expr(&mut self, min_prec: u8, allow_in: bool) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let Some((prec, kind)) = self.peek_binary_op(allow_in) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1, allow_in)?;
            let span = lhs.span.to(rhs.span);
            lhs = match kind {
                BinaryKind::Plain(op) => {
                    Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span)
                }
                BinaryKind::Logical(op) => {
                    Expr::new(ExprKind::Logical(op, Box::new(lhs), Box::new(rhs)), span)
                }
            };
        }
    }

    fn peek_binary_op(&self, allow_in: bool) -> Option<(u8, BinaryKind)> {
        use BinaryKind::*;
        let (prec, kind) = match self.peek().kind {
            TokenKind::Punct(Punct::OrOr) => (1, Logical(LogOp::Or)),
            TokenKind::Punct(Punct::AndAnd) => (2, Logical(LogOp::And)),
            TokenKind::Punct(Punct::Pipe) => (3, Plain(BinOp::BitOr)),
            TokenKind::Punct(Punct::Caret) => (4, Plain(BinOp::BitXor)),
            TokenKind::Punct(Punct::Amp) => (5, Plain(BinOp::BitAnd)),
            TokenKind::Punct(Punct::EqEq) => (6, Plain(BinOp::Eq)),
            TokenKind::Punct(Punct::NotEq) => (6, Plain(BinOp::NotEq)),
            TokenKind::Punct(Punct::EqEqEq) => (6, Plain(BinOp::StrictEq)),
            TokenKind::Punct(Punct::NotEqEq) => (6, Plain(BinOp::StrictNotEq)),
            TokenKind::Punct(Punct::Lt) => (7, Plain(BinOp::Lt)),
            TokenKind::Punct(Punct::Gt) => (7, Plain(BinOp::Gt)),
            TokenKind::Punct(Punct::LtEq) => (7, Plain(BinOp::LtEq)),
            TokenKind::Punct(Punct::GtEq) => (7, Plain(BinOp::GtEq)),
            TokenKind::Keyword(Kw::In) if allow_in => (7, Plain(BinOp::In)),
            TokenKind::Keyword(Kw::Instanceof) => (7, Plain(BinOp::Instanceof)),
            TokenKind::Punct(Punct::Shl) => (8, Plain(BinOp::Shl)),
            TokenKind::Punct(Punct::Shr) => (8, Plain(BinOp::Shr)),
            TokenKind::Punct(Punct::UShr) => (8, Plain(BinOp::UShr)),
            TokenKind::Punct(Punct::Plus) => (9, Plain(BinOp::Add)),
            TokenKind::Punct(Punct::Minus) => (9, Plain(BinOp::Sub)),
            TokenKind::Punct(Punct::Star) => (10, Plain(BinOp::Mul)),
            TokenKind::Punct(Punct::Slash) => (10, Plain(BinOp::Div)),
            TokenKind::Punct(Punct::Percent) => (10, Plain(BinOp::Rem)),
            _ => return None,
        };
        Some((prec, kind))
    }

    fn unary_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.enter_nested()?;
        let r = self.unary_expr_unguarded();
        self.depth -= 1;
        r
    }

    fn unary_expr_unguarded(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.peek().span;
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Pos),
            TokenKind::Punct(Punct::Not) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Keyword(Kw::Typeof) => Some(UnOp::Typeof),
            TokenKind::Keyword(Kw::Void) => Some(UnOp::Void),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary_expr()?;
            let span = start.to(arg.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(arg)), span));
        }
        if self.at_keyword(Kw::Delete) {
            self.bump();
            let arg = self.unary_expr()?;
            let span = start.to(arg.span);
            return match arg.kind {
                ExprKind::Member(obj, key) => Ok(Expr::new(ExprKind::Delete(obj, key), span)),
                _ => Err(SyntaxError {
                    kind: SyntaxErrorKind::Unsupported("`delete` of a non-member expression"),
                    span,
                }),
            };
        }
        if self.at_punct(Punct::PlusPlus) || self.at_punct(Punct::MinusMinus) {
            let is_inc = self.at_punct(Punct::PlusPlus);
            self.bump();
            let arg = self.unary_expr()?;
            if !is_assign_target(&arg) {
                return Err(SyntaxError {
                    kind: SyntaxErrorKind::InvalidAssignmentTarget,
                    span: arg.span,
                });
            }
            let span = start.to(arg.span);
            return Ok(Expr::new(
                ExprKind::Update(true, is_inc, Box::new(arg)),
                span,
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, SyntaxError> {
        let e = self.call_expr()?;
        if (self.at_punct(Punct::PlusPlus) || self.at_punct(Punct::MinusMinus))
            && !self.peek().newline_before
        {
            let is_inc = self.at_punct(Punct::PlusPlus);
            if !is_assign_target(&e) {
                return Err(SyntaxError {
                    kind: SyntaxErrorKind::InvalidAssignmentTarget,
                    span: e.span,
                });
            }
            let end = self.bump().span;
            let span = e.span.to(end);
            return Ok(Expr::new(
                ExprKind::Update(false, is_inc, Box::new(e)),
                span,
            ));
        }
        Ok(e)
    }

    fn call_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = if self.at_keyword(Kw::New) {
            self.new_expr()?
        } else {
            self.primary_expr()?
        };
        loop {
            if self.at_punct(Punct::Dot) {
                self.bump();
                let (name, end) = self.member_name()?;
                let span = e.span.to(end);
                e = Expr::new(ExprKind::Member(Box::new(e), MemberKey::Static(name)), span);
            } else if self.at_punct(Punct::LBracket) {
                self.bump();
                let idx = self.expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = e.span.to(end);
                e = Expr::new(
                    ExprKind::Member(Box::new(e), MemberKey::Computed(Box::new(idx))),
                    span,
                );
            } else if self.at_punct(Punct::LParen) {
                let (args, end) = self.arguments()?;
                let span = e.span.to(end);
                e = Expr::new(ExprKind::Call(Box::new(e), args), span);
            } else {
                return Ok(e);
            }
        }
    }

    /// Parses `new F(...)`, where `F` may itself be a member chain (but not
    /// a call).
    fn new_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.enter_nested()?;
        let r = self.new_expr_unguarded();
        self.depth -= 1;
        r
    }

    fn new_expr_unguarded(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.bump().span; // new
        let mut callee = if self.at_keyword(Kw::New) {
            self.new_expr()?
        } else {
            self.primary_expr()?
        };
        loop {
            if self.at_punct(Punct::Dot) {
                self.bump();
                let (name, end) = self.member_name()?;
                let span = callee.span.to(end);
                callee = Expr::new(
                    ExprKind::Member(Box::new(callee), MemberKey::Static(name)),
                    span,
                );
            } else if self.at_punct(Punct::LBracket) {
                self.bump();
                let idx = self.expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = callee.span.to(end);
                callee = Expr::new(
                    ExprKind::Member(Box::new(callee), MemberKey::Computed(Box::new(idx))),
                    span,
                );
            } else {
                break;
            }
        }
        let (args, end) = if self.at_punct(Punct::LParen) {
            self.arguments()?
        } else {
            (Vec::new(), callee.span)
        };
        let span = start.to(end);
        Ok(Expr::new(ExprKind::New(Box::new(callee), args), span))
    }

    /// A property name after `.`: an identifier or (permissively) a keyword.
    fn member_name(&mut self) -> Result<(Rc<str>, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name: Rc<str> = Rc::from(name.as_str());
                let span = self.bump().span;
                Ok((name, span))
            }
            TokenKind::Keyword(k) => {
                let name: Rc<str> = Rc::from(k.as_str());
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected("property name")),
        }
    }

    fn arguments(&mut self) -> Result<(Vec<Expr>, Span), SyntaxError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if !self.at_punct(Punct::RParen) {
            loop {
                args.push(self.assign_expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        let end = self.expect_punct(Punct::RParen)?;
        Ok((args, end))
    }

    fn primary_expr(&mut self) -> Result<Expr, SyntaxError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Num(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Num(n)), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Lit(Lit::Str(Rc::from(s.as_str()))),
                    span,
                ))
            }
            TokenKind::Keyword(Kw::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Bool(true)), span))
            }
            TokenKind::Keyword(Kw::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Bool(false)), span))
            }
            TokenKind::Keyword(Kw::Null) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Null), span))
            }
            TokenKind::Keyword(Kw::Undefined) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Undefined), span))
            }
            TokenKind::Keyword(Kw::This) => {
                self.bump();
                Ok(Expr::new(ExprKind::This, span))
            }
            TokenKind::Keyword(Kw::Function) => {
                let f = self.function(false)?;
                let fspan = f.span;
                Ok(Expr::new(ExprKind::Function(Rc::new(f)), fspan))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(Rc::from(name.as_str())), span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                if !self.at_punct(Punct::RBracket) {
                    loop {
                        items.push(self.assign_expr()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                        if self.at_punct(Punct::RBracket) {
                            break; // trailing comma
                        }
                    }
                }
                let end = self.expect_punct(Punct::RBracket)?;
                Ok(Expr::new(ExprKind::Array(items), span.to(end)))
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let mut props = Vec::new();
                if !self.at_punct(Punct::RBrace) {
                    loop {
                        let key = self.object_key()?;
                        self.expect_punct(Punct::Colon)?;
                        let value = self.assign_expr()?;
                        props.push((key, value));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                        if self.at_punct(Punct::RBrace) {
                            break; // trailing comma
                        }
                    }
                }
                let end = self.expect_punct(Punct::RBrace)?;
                Ok(Expr::new(ExprKind::Object(props), span.to(end)))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn object_key(&mut self) -> Result<Rc<str>, SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let k = Rc::from(name.as_str());
                self.bump();
                Ok(k)
            }
            TokenKind::Keyword(kw) => {
                let k = Rc::from(kw.as_str());
                self.bump();
                Ok(k)
            }
            TokenKind::Str(s) => {
                let k = Rc::from(s.as_str());
                self.bump();
                Ok(k)
            }
            TokenKind::Num(n) => {
                let k = Rc::from(crate::pretty::num_to_str(*n).as_str());
                self.bump();
                Ok(k)
            }
            _ => Err(self.unexpected("property key")),
        }
    }
}

enum BinaryKind {
    Plain(BinOp),
    Logical(LogOp),
}

/// `var` declarator list: `(name, initializer)` pairs.
type Declarators = Vec<(Rc<str>, Option<Expr>)>;

fn is_assign_target(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Ident(_) | ExprKind::Member(..))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Stmt {
        let p = parse(src).unwrap();
        assert_eq!(p.body.len(), 1, "expected one statement in {src:?}");
        p.body.into_iter().next().unwrap()
    }

    #[test]
    fn parses_var_with_init() {
        let s = parse_one("var x = 1 + 2;");
        match s.kind {
            StmtKind::Var(decls) => {
                assert_eq!(decls.len(), 1);
                assert_eq!(&*decls[0].0, "x");
                assert!(decls[0].1.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn logical_ops_are_logical_nodes() {
        let e = parse_expr("a && b || c").unwrap();
        assert!(matches!(e.kind, ExprKind::Logical(LogOp::Or, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = c").unwrap();
        match e.kind {
            ExprKind::Assign(None, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Assign(None, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn member_chains_and_calls() {
        let e = parse_expr("a.b[c](d).e").unwrap();
        // ((a.b[c])(d)).e
        match e.kind {
            ExprKind::Member(inner, MemberKey::Static(name)) => {
                assert_eq!(&*name, "e");
                assert!(matches!(inner.kind, ExprKind::Call(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn new_with_member_callee() {
        let e = parse_expr("new a.B(1)").unwrap();
        match e.kind {
            ExprKind::New(callee, args) => {
                assert!(matches!(callee.kind, ExprKind::Member(..)));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn conditional_expression() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        match e.kind {
            ExprKind::Cond(_, _, els) => {
                assert!(matches!(els.kind, ExprKind::Cond(..)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn for_in_variants() {
        assert!(matches!(
            parse_one("for (var k in o) {}").kind,
            StmtKind::ForIn { decl: true, .. }
        ));
        assert!(matches!(
            parse_one("for (k in o) {}").kind,
            StmtKind::ForIn { decl: false, .. }
        ));
    }

    #[test]
    fn classic_for_with_all_clauses() {
        match parse_one("for (var i = 0; i < 10; i++) f(i);").kind {
            StmtKind::For {
                init: Some(ForInit::Var(_)),
                test: Some(_),
                update: Some(_),
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn asi_before_rbrace_and_newline() {
        let p = parse("function f() { return 1 }\nvar x = 2\nvar y = 3").unwrap();
        assert_eq!(p.body.len(), 3);
    }

    #[test]
    fn restricted_return() {
        let p = parse("function f() { return\n1; }").unwrap();
        match &p.body[0].kind {
            StmtKind::FunctionDecl(f) => {
                assert!(matches!(f.body[0].kind, StmtKind::Return(None)));
                assert!(matches!(f.body[1].kind, StmtKind::Expr(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn try_catch_finally() {
        match parse_one("try { f(); } catch (e) { g(e); } finally { h(); }").kind {
            StmtKind::Try {
                catch: Some(_),
                finally: Some(_),
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn switch_with_default() {
        match parse_one("switch (x) { case 1: a(); break; default: b(); }").kind {
            StmtKind::Switch(_, cases) => {
                assert_eq!(cases.len(), 2);
                assert!(cases[0].test.is_some());
                assert!(cases[1].test.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn object_literal_key_forms() {
        let e = parse_expr("{ a: 1, \"b c\": 2, 3: 4, default: 5 }").unwrap();
        match e.kind {
            ExprKind::Object(props) => {
                let keys: Vec<&str> = props.iter().map(|(k, _)| &**k).collect();
                assert_eq!(keys, vec!["a", "b c", "3", "default"]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn delete_member() {
        let e = parse_expr("delete o.p").unwrap();
        assert!(matches!(e.kind, ExprKind::Delete(_, MemberKey::Static(_))));
        assert!(parse_expr("delete x").is_err());
    }

    #[test]
    fn update_targets_validated() {
        assert!(parse_expr("x++").is_ok());
        assert!(parse_expr("o.p++").is_ok());
        assert!(parse_expr("5++").is_err());
    }

    #[test]
    fn typeof_in_condition() {
        let e = parse_expr("typeof selector === \"string\"").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::StrictEq, _, _)));
    }

    #[test]
    fn keyword_member_names_allowed() {
        assert!(parse_expr("o.delete").is_ok());
        assert!(parse_expr("o.in").is_ok());
    }

    #[test]
    fn no_in_inside_for_init() {
        // `in` must not be parsed in the init clause...
        let s = parse_one("for (x = a; x < b; x++) {}");
        assert!(matches!(s.kind, StmtKind::For { .. }));
        // ...but parenthesized expressions inside are fine elsewhere.
        assert!(parse_expr("\"k\" in o").is_ok());
    }

    #[test]
    fn comma_expression() {
        let e = parse_expr("(a, b, c)").unwrap();
        match e.kind {
            ExprKind::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_reports_expected() {
        let err = parse("var = 3;").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn figure1_parses() {
        let src = r#"
function $(selector) {
  if (typeof selector === "string") {
    if (isHTML(selector)) { parseHTML(selector); }
    else { cssQuery(selector); }
  } else if (typeof selector === "function") {
    onReady(selector);
  } else {
    return [selector];
  }
}
"#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn figure3_parses() {
        let src = r#"
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() {
  return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
  return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
  Rectangle.prototype["get" + prop.cap()] = function() { return this[prop]; };
  Rectangle.prototype["set" + prop.cap()] = function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
"#;
        assert!(parse(src).is_ok());
    }
}
