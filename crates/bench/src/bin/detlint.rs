//! `detlint` — the IR structural linter as a command-line tool.
//!
//! Parses and lowers JavaScript sources, runs the `mujs-analysis`
//! validator over the lowered program, and reports every invariant
//! violation (exit 1 if any source fails to parse or validate). With
//! `--dataflow` it additionally runs the intraprocedural constant
//! propagation and reports how many statically determinate facts each
//! program yields.
//!
//! ```console
//! $ cargo run -p mujs-bench --bin detlint -- examples/js
//! $ cargo run -p mujs-bench --bin detlint -- --corpus all --dataflow
//! ```

use mujs_analysis::{analyze_program, validate_program};
use std::path::{Path, PathBuf};

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: detlint [--corpus table1|evalbench|all] [--dataflow] [PATH ...]\n\
         \x20  PATH: a .js file or a directory scanned for .js files"
    );
    std::process::exit(2);
}

fn js_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {}: {e}", path.display())))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            js_files(&e, out);
        }
    } else if path.extension().is_some_and(|x| x == "js") {
        out.push(path.to_owned());
    }
}

struct Report {
    checked: usize,
    failed: usize,
}

fn lint(name: &str, src: &str, dataflow: bool, report: &mut Report) {
    report.checked += 1;
    let lowered = mujs_syntax::with_parser_stack(|| {
        mujs_syntax::parse(src).map(|ast| mujs_ir::lower_program(&ast))
    });
    let prog = match lowered {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{name}: parse error: {e}");
            report.failed += 1;
            return;
        }
    };
    let violations = validate_program(&prog);
    if violations.is_empty() {
        let facts = if dataflow {
            let f = analyze_program(&prog);
            format!(
                " ({} static facts: {} keys, {} callees, {} conds)",
                f.len(),
                f.prop_keys.len(),
                f.callees.len(),
                f.conds.len()
            )
        } else {
            String::new()
        };
        println!("{name}: ok — {} functions{facts}", prog.funcs.len());
    } else {
        report.failed += 1;
        eprintln!("{name}: {} violation(s)", violations.len());
        for v in &violations {
            eprintln!("  {}", v.describe(&prog));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus: Option<String> = None;
    let mut dataflow = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corpus" => {
                i += 1;
                corpus = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--corpus needs a value")),
                );
            }
            "--dataflow" => dataflow = true,
            "--help" | "-h" => usage(""),
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }
    if corpus.is_none() && paths.is_empty() {
        usage("nothing to lint");
    }

    let mut report = Report {
        checked: 0,
        failed: 0,
    };
    match corpus.as_deref() {
        None => {}
        Some(which @ ("table1" | "all")) => {
            for v in mujs_corpus::jquery_like::all_versions() {
                lint(
                    &format!("table1/{}", v.version),
                    &v.src,
                    dataflow,
                    &mut report,
                );
            }
            if which == "all" {
                for b in mujs_corpus::evalbench::all() {
                    lint(
                        &format!("evalbench/{}", b.name),
                        &b.src,
                        dataflow,
                        &mut report,
                    );
                }
            }
        }
        Some("evalbench") => {
            for b in mujs_corpus::evalbench::all() {
                lint(
                    &format!("evalbench/{}", b.name),
                    &b.src,
                    dataflow,
                    &mut report,
                );
            }
        }
        Some(other) => usage(&format!("unknown corpus `{other}`")),
    }
    let mut files = Vec::new();
    for p in &paths {
        if !p.exists() {
            usage(&format!("no such path: {}", p.display()));
        }
        js_files(p, &mut files);
    }
    for f in files {
        let src = std::fs::read_to_string(&f)
            .unwrap_or_else(|e| usage(&format!("cannot read {}: {e}", f.display())));
        lint(&f.display().to_string(), &src, dataflow, &mut report);
    }

    eprintln!(
        "detlint: {} checked, {} failed",
        report.checked, report.failed
    );
    if report.failed > 0 {
        std::process::exit(1);
    }
}
